#!/usr/bin/env python3
"""Scenario: a sharded multi-enclave cluster served over a real TCP socket.

The paper's Fig 16a splits one machine's EPC across 2/4 tenant enclaves but
only measures them in isolation.  `repro.cluster` turns that split into a
serving layer: an asyncio front door routes live traffic across N
enclave-backed shards via a consistent-hash ring, batches per shard to
amortize the ECALL tax, and migrates hot key ranges when one shard
straggles.

This example boots a 4-shard cluster server on an ephemeral port (real
asyncio TCP, on a background thread), drives a zipfian workload through
the synchronous wire client — including a deliberately oversized frame the
server must reject — and prints the per-shard picture.

With ``--backend process`` each shard's enclave runs in its own OS worker
process behind a message pipe — same wire responses, same simulated
cycles, real process isolation.

Run:  python examples/cluster_client.py [--backend process]
"""

import sys

from repro.bench.report import format_ops
from repro.cluster import (
    BackgroundServer,
    ClusterClient,
    HotShardBalancer,
    build_cluster,
)
from repro.server import protocol
from repro.workloads.ycsb import YcsbWorkload

N_SHARDS = 4
N_KEYS = 4_000
N_OPS = 2_000
BATCH = 64


def main(backend: str = "inline") -> None:
    coordinator = build_cluster(N_SHARDS, n_keys=N_KEYS, scale=512,
                                batch_window=32, backend=backend)
    coordinator.attach_balancer(
        HotShardBalancer(coordinator, check_every=512)
    )
    workload = YcsbWorkload(n_keys=N_KEYS, read_ratio=0.9, value_size=16,
                            distribution="zipfian")
    coordinator.load(workload.load_items())
    stats = coordinator.stats()

    with BackgroundServer(coordinator) as background:
        host, port = background.server.address
        print(f"cluster of {N_SHARDS} enclave shards "
              f"({backend} backend) listening on {host}:{port}\n")

        # connect() performs the attested v2 handshake by default: the
        # gateway's quote binds its measurement to the transcript, then
        # every frame below travels AES-CTR encrypted and CMAC'd.
        with ClusterClient.connect(host, port) as client:
            info = client.session_info()
            print(f"attested session {info['session_id']:#x} "
                  f"({info['cipher']}), handshake cost "
                  f"{info['handshake_cycles'] / 1e6:.1f}M simulated cycles\n")

            # A couple of single requests, end to end over the wire.
            client.put(b"session:42", b"alice")
            print("GET session:42 ->",
                  client.get(b"session:42").value.decode())

            # The workload, pipelined in wire batches.
            requests = [
                protocol.get(op.key) if op.kind == "get"
                else protocol.put(op.key, op.value)
                for op in workload.operations(N_OPS)
            ]
            ok = 0
            for start in range(0, len(requests), BATCH):
                chunk = requests[start:start + BATCH]
                ok += sum(r.ok for r in client.request_batch(chunk))
            print(f"{ok}/{len(requests)} requests OK over "
                  f"{len(requests) // BATCH} wire frames")

            # A malformed delivery is rejected as a unit (none executed).
            client.send_frame(b"\xff\xff not a batch")
            rejection = protocol.decode_batch_responses(client.recv_frame())
            print("malformed frame ->",
                  "rejected as a unit" if protocol.is_batch_rejection(
                      rejection) else "BUG")
            wire = client.session_info()
            print(f"wire crypto total: {wire['wire_cycles'] / 1e6:.1f}M "
                  f"cycles over {wire['frames_sealed']} sealed frames")

    report = stats.report()
    coordinator.close()  # joins process-backend workers; inline no-op
    print(f"\n{'shard':>8} {'keys':>6} {'ops':>6} {'ecalls':>7} "
          f"{'hit ratio':>10}")
    for shard_id in sorted(report["shards"]):
        row = report["shards"][shard_id]
        print(f"{shard_id:>8} {row['keys']:>6} {row['window_ops']:>6} "
              f"{row['window_ecalls']:>7} {row['cache_hit_ratio']:>10.1%}")
    cluster = report["cluster"]
    print(f"\naggregate: {format_ops(cluster['aggregate_throughput'])} "
          f"ops/s across {cluster['n_shards']} shards "
          f"(parallel efficiency {cluster['parallel_efficiency']:.0%}, "
          f"{cluster['ecalls']} ECALLs for {cluster['window_ops']} ops)")


if __name__ == "__main__":
    chosen = "inline"
    if "--backend" in sys.argv[1:]:
        chosen = sys.argv[sys.argv.index("--backend") + 1]
    main(backend=chosen)
