#!/usr/bin/env python3
"""Scenario: a web session cache on an untrusted cloud host.

The workload the paper's introduction motivates: a memcached-style tier
whose operator (cloud provider, hypervisor, staff with physical access) is
not trusted, serving a skewed key population — a few celebrity sessions
take most of the traffic.

This script runs the same session workload against Aria and against
ShieldStore on identical (simulated) hardware and reports throughput, the
Secure Cache hit ratio, and each system's EPC footprint.

Run:  python examples/session_cache.py
"""

from repro.bench.harness import (
    build_aria,
    build_shieldstore,
    load_and_run,
    scaled_platform,
)
from repro.bench.report import format_ops
from repro.workloads.ycsb import YcsbWorkload

N_SESSIONS = 20_000   # active sessions
N_REQUESTS = 8_000    # measured requests
SESSION_BYTES = 128   # serialized session blob


def main() -> None:
    platform = scaled_platform(512)  # 1/512 of a 91 MB-EPC machine
    workload = YcsbWorkload(
        n_keys=N_SESSIONS,
        read_ratio=0.95,          # sessions are read-mostly
        value_size=SESSION_BYTES,
        distribution="zipfian",   # celebrity sessions dominate
        skew=0.99,
    )

    print(f"{N_SESSIONS} sessions of {SESSION_BYTES} B, 95% reads, "
          f"zipf(0.99), EPC {platform.epc_bytes // 1024} KB\n")

    results = {}
    for name, builder in (("aria", build_aria),
                          ("shieldstore", build_shieldstore)):
        store = builder(n_keys=N_SESSIONS, platform=platform)
        results[name] = (store, load_and_run(store, workload, N_REQUESTS,
                                             scheme=name))

    print(f"{'system':<12} {'throughput':>12} {'cycles/op':>10} "
          f"{'hit ratio':>10} {'EPC bytes':>10}")
    for name, (store, run) in results.items():
        hit = f"{run.hit_ratio:.1%}" if run.hit_ratio is not None else "-"
        epc = sum(store.epc_report().values())
        print(f"{name:<12} {format_ops(run.throughput) + '/s':>12} "
              f"{run.cycles_per_op:>10,.0f} {hit:>10} {epc:>10,}")

    aria_run = results["aria"][1]
    shield_run = results["shieldstore"][1]
    gain = aria_run.throughput / shield_run.throughput - 1.0
    print(f"\nAria serves this session tier {gain:+.0%} vs ShieldStore "
          "because hot sessions verify against EPC-cached counters instead "
          "of re-deriving a bucket Merkle root per request.")


if __name__ == "__main__":
    main()
