#!/usr/bin/env python3
"""Scenario: a malicious cloud operator attacks the store — and is caught.

Stages every attack from the paper's threat model against a live Aria
instance, modifying only untrusted memory (all an SGX adversary can touch):

1. bit-flip a record's ciphertext            -> MAC mismatch
2. replay a stale (record, MAC) pair         -> counter freshness violation
3. swap two index slot pointers (Fig 7)      -> AdField binding mismatch
4. unauthorized deletion (clear a slot)      -> per-bucket count mismatch
5. corrupt a Merkle-tree node                -> path verification failure
6. passive snooping                          -> sees only ciphertext

Run:  python examples/attack_demo.py
"""

from repro import AriaConfig, AriaStore
from repro.attacks import (
    replay_stale_record,
    snoop_learns_only_ciphertext,
    swap_slot_pointers,
    tamper_merkle_node,
    tamper_record_body,
    unauthorized_delete,
)
from repro.sgx.costs import SgxPlatform


def fresh_store() -> AriaStore:
    store = AriaStore(
        AriaConfig(index="hash", n_buckets=64, initial_counters=2048,
                   secure_cache_bytes=64 * 1024, pin_levels=1,
                   stop_swap_enabled=False),
        platform=SgxPlatform(epc_bytes=2 << 20),
    )
    for i in range(200):
        store.put(f"key-{i:04d}".encode(), f"value-{i}".encode())
    return store


def main() -> None:
    scenarios = [
        ("tamper record ciphertext",
         lambda s: tamper_record_body(s, b"key-0042")),
        ("replay stale record",
         lambda s: replay_stale_record(s, b"key-0042", b"value-X!")),
        ("swap slot pointers (Fig 7)",
         lambda s: swap_slot_pointers(s, b"key-0001", b"key-0002")),
        ("unauthorized deletion",
         lambda s: unauthorized_delete(s, b"key-0007")),
        ("corrupt Merkle node",
         lambda s: tamper_merkle_node(s, counter_id=1500)),
    ]

    print(f"{'attack':<30} {'detected':>8}   detection")
    print("-" * 78)
    all_detected = True
    for name, scenario in scenarios:
        outcome = scenario(fresh_store())
        all_detected &= outcome.detected
        detail = outcome.error.split(":")[0] if outcome.error else "-"
        print(f"{name:<30} {str(outcome.detected):>8}   {detail}")

    store = fresh_store()
    confidential = snoop_learns_only_ciphertext(store, b"key-0042",
                                                b"value-42")
    print(f"{'passive snooping':<30} {'n/a':>8}   "
          f"{'only ciphertext visible' if confidential else 'LEAK!'}")

    print("-" * 78)
    print("all attacks detected" if all_detected and confidential
          else "SOME ATTACKS SUCCEEDED — this is a bug")
    assert all_detected and confidential


if __name__ == "__main__":
    main()
