#!/usr/bin/env python3
"""Scenario: the enclave restarts — recover the store, catch the saboteur.

Enclave memory is volatile: a crash, upgrade, or host reboot wipes Aria's
trust anchors (Merkle roots, bitmaps, counts) while the encrypted KV data in
regular DRAM (or persisted untrusted storage) survives.  This example:

1. runs a store and seals its trusted state (SGX-style sealing),
2. "restarts": rebuilds the enclave from the sealed blob + surviving
   untrusted memory, and proves the data is intact and writable,
3. repeats with an attacker who tampered with the data during the
   downtime — and shows the restore-time audit catching it.

Run:  python examples/restart_recovery.py
"""

from repro import AriaConfig, AriaStore, IntegrityError, ReplayError
from repro.core.persistence import restore_store, seal_store
from repro.sgx.costs import SgxPlatform

PLATFORM = SgxPlatform(epc_bytes=4 << 20)


def build_and_fill() -> AriaStore:
    store = AriaStore(
        AriaConfig(index="hash", n_buckets=128, initial_counters=4096,
                   secure_cache_bytes=128 * 1024, pin_levels=2,
                   stop_swap_enabled=False),
        platform=PLATFORM,
    )
    for i in range(500):
        store.put(f"account-{i:04d}".encode(), f"balance={i * 10}".encode())
    return store


def main() -> None:
    # -- clean restart ---------------------------------------------------------
    store = build_and_fill()
    sealed = seal_store(store)
    print(f"sealed trusted state: {len(sealed):,} bytes "
          f"(vs {store.enclave.untrusted.allocated_bytes:,} bytes of "
          "untrusted data that survives on its own)")

    revived = restore_store(sealed, store.enclave.untrusted,
                            platform=PLATFORM)
    assert revived.get(b"account-0042") == b"balance=420"
    revived.put(b"account-0042", b"balance=999")
    revived.audit()
    print("clean restart: 500 accounts recovered, writable, audit passed")

    # -- restart after downtime tampering ---------------------------------------
    store = build_and_fill()
    sealed = seal_store(store)
    area = store.counters.areas[0]
    addr = area.tree.node_addr(0, 7)
    byte = store.enclave.untrusted.snoop(addr, 1)[0]
    store.enclave.untrusted.tamper(addr, bytes([byte ^ 0x80]))
    print("\nattacker flipped a Merkle-leaf bit while the enclave was down...")

    revived = restore_store(sealed, store.enclave.untrusted,
                            platform=PLATFORM)
    try:
        revived.audit()
    except (IntegrityError, ReplayError) as exc:
        print(f"restore-time audit caught it: {type(exc).__name__}: {exc}")
    else:
        raise SystemExit("tampering went undetected — this is a bug")

    # -- tampered blob -----------------------------------------------------------
    corrupted = bytearray(sealed)
    corrupted[50] ^= 0x01
    try:
        restore_store(bytes(corrupted), store.enclave.untrusted,
                      platform=PLATFORM)
    except IntegrityError:
        print("tampered sealed blob rejected before any state was trusted")


if __name__ == "__main__":
    main()
