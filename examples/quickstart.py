#!/usr/bin/env python3
"""Quickstart: a secure in-memory KV store in a simulated SGX enclave.

Creates an Aria store (hash-table index), performs basic operations, and
prints what the security machinery did: Secure Cache statistics, simulated
cycle costs, and the EPC budget every trusted structure consumed.

Run:  python examples/quickstart.py
"""

from repro import AriaConfig, AriaStore, KeyNotFoundError
from repro.sgx.costs import SgxPlatform


def main() -> None:
    # A small enclave platform so the numbers are easy to read.  Real SGX v1
    # machines expose ~91 MB of usable EPC; we give this demo 2 MB.
    config = AriaConfig(
        index="hash",
        n_buckets=1024,
        initial_counters=4096,
        secure_cache_bytes=256 * 1024,
        pin_levels=3,
    )
    store = AriaStore(config, platform=SgxPlatform(epc_bytes=2 << 20))

    # -- basic operations ----------------------------------------------------
    store.put(b"user:1001", b"Ada Lovelace")
    store.put(b"user:1002", b"Grace Hopper")
    store.put(b"user:1003", b"Katherine Johnson")

    print("get user:1001 ->", store.get(b"user:1001").decode())

    store.put(b"user:1001", b"Ada King, Countess of Lovelace")  # update
    print("after update  ->", store.get(b"user:1001").decode())

    store.delete(b"user:1002")
    try:
        store.get(b"user:1002")
    except KeyNotFoundError:
        print("user:1002 deleted: KeyNotFoundError raised, as expected")

    # Everything in untrusted memory is ciphertext: peek like an attacker.
    blob = store.enclave.untrusted.snoop(64, 64)
    assert b"Ada" not in blob
    print("untrusted memory holds no plaintext (spot check passed)")

    # -- what it cost --------------------------------------------------------
    meter = store.enclave.meter
    ops = meter.events["op_put"] + meter.events["op_get"] + \
        meter.events["op_delete"]
    print(f"\nsimulated cycles for {ops} ops: {meter.cycles:,.0f} "
          f"({meter.cycles / ops:,.0f} per op)")
    print("secure-cache stats:", store.cache_stats())

    print("\nEPC budget by consumer (bytes):")
    for consumer, used in store.epc_report().items():
        print(f"  {consumer:18s} {used:>10,}")

    report = store.memory_report()
    print(f"\nper-KV security metadata: {report['per_key_security_bytes']} B "
          "(16 B counter + 16 B MAC + 8 B RedPtr)")
    print(f"Merkle tree in untrusted memory: "
          f"{report['merkle_tree_bytes']:,} B")


if __name__ == "__main__":
    main()
