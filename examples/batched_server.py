#!/usr/bin/env python3
"""Scenario: serving remote clients — the enclave boundary as the bottleneck.

The paper keeps networking out of its measurements but spends Section II-A on why
each enclave entry costs ~10,000 cycles.  This example runs the same request
stream through the wire protocol at different batch sizes and shows the
ECALL tax being amortized away.

Run:  python examples/batched_server.py
"""

from repro.bench.harness import build_aria, scaled_platform
from repro.bench.report import format_ops
from repro.server import protocol
from repro.server.server import AriaClient, AriaServer
from repro.workloads.ycsb import YcsbWorkload

N_KEYS = 8_000
N_REQUESTS = 4_000


def main() -> None:
    workload = YcsbWorkload(n_keys=N_KEYS, read_ratio=0.95, value_size=16,
                            distribution="zipfian")
    requests = [
        protocol.get(op.key) if op.kind == "get"
        else protocol.put(op.key, op.value)
        for op in workload.operations(N_REQUESTS)
    ]

    print(f"{N_REQUESTS} requests, zipf(0.99) RD95, 16 B values\n")
    print(f"{'batch':>6} {'ECALLs':>7} {'throughput':>12} {'cycles/op':>10}")

    unbatched_cycles = None
    for batch_size in (1, 4, 16, 64):
        store = build_aria(n_keys=N_KEYS, platform=scaled_platform(512))
        store.load(workload.load_items())
        server = AriaServer(store)
        store.enclave.meter.reset()
        if batch_size == 1:
            for request in requests:
                server.handle(request.encode())
        else:
            AriaClient(server, batch_size=batch_size).pipeline(requests)
        cycles = store.enclave.meter.cycles / N_REQUESTS
        if unbatched_cycles is None:
            unbatched_cycles = cycles
        throughput = store.enclave.platform.cpu_hz / cycles
        ecalls = store.enclave.meter.events["ecall"]
        print(f"{batch_size:>6} {ecalls:>7} "
              f"{format_ops(throughput) + '/s':>12} {cycles:>10,.0f}")

    saved = unbatched_cycles - cycles
    print(f"\nbatching removed ~{saved:,.0f} cycles/op — almost exactly the "
          "ECALL cost the paper quotes for every enclave entry")


if __name__ == "__main__":
    main()
