#!/usr/bin/env python3
"""Scenario: an ordered secure index with range scans (Aria-T).

Hash tables cannot answer "all readings between 09:00 and 09:05".  Aria's
decoupled design (paper Section V-C) lets the same security machinery — counters,
Merkle tree, Secure Cache — sit under a B-tree, at the cost the paper
quantifies in Fig 10 (every probed record is verified *and decrypted*).

This script stores time-stamped sensor readings in Aria-T, runs point and
range queries, and then audits the whole tree.

Run:  python examples/ordered_index_scan.py
"""

from repro import AriaConfig, AriaStore
from repro.sgx.costs import SgxPlatform

N_READINGS = 2_000


def reading_key(minute: int) -> bytes:
    # Lexicographic order == chronological order.
    return b"sensor-7/t%08d" % minute


def main() -> None:
    store = AriaStore(
        AriaConfig(
            index="btree",
            btree_order=15,
            initial_counters=4096,
            secure_cache_bytes=256 * 1024,
            pin_levels=3,
        ),
        platform=SgxPlatform(epc_bytes=2 << 20),
    )

    for minute in range(N_READINGS):
        value = b"%08.3f" % (20.0 + (minute % 700) / 100.0)
        store.put(reading_key(minute), value)
    print(f"stored {len(store)} encrypted readings "
          f"(tree height {store.index.height})")

    # Point query.
    print("reading @ minute 1234:", store.get(reading_key(1234)).decode())

    # Range scan: five minutes of readings, in order, each verified.
    window = store.range_scan(reading_key(540), reading_key(545))
    print(f"\nreadings 540..544 ({len(window)} rows):")
    for key, value in window:
        print(f"  {key.decode()} -> {value.decode()}")

    # Integrity audit: verifies order, uniform depth, and the entry count
    # against the enclave's records — any unauthorized deletion or reorder
    # of the untrusted tree raises.
    store.index.audit()
    print("\nfull-tree audit passed: order, depth and counts verified")

    meter = store.enclave.meter
    gets = meter.events["op_get"]
    print(f"\nsimulated cycles/op across the session: "
          f"{meter.cycles / max(1, gets + meter.events['op_put']):,.0f}")
    print("(an order of magnitude above Aria-H, as the paper's Fig 10 "
          "shows: tree descents decrypt every probed record)")


if __name__ == "__main__":
    main()
