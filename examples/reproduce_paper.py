#!/usr/bin/env python3
"""Regenerate the paper's tables and figures from the command line.

Run:  python examples/reproduce_paper.py            # quick subset
      python examples/reproduce_paper.py fig9 fig14 # specific experiments
      python examples/reproduce_paper.py --all      # everything (minutes)

Each experiment prints a text table mirroring the corresponding figure of
"Aria: Tolerating Skewed Workloads in Secure In-memory Key-value Stores"
(ICDE 2021).  EXPERIMENTS.md records paper-vs-measured for each.
"""

import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS

QUICK_SUBSET = ["table1", "fig2", "fig12", "fig14", "fig16b"]


def main(argv: list) -> int:
    if "--all" in argv:
        names = list(ALL_EXPERIMENTS)
    elif argv:
        unknown = [name for name in argv if name not in ALL_EXPERIMENTS]
        if unknown:
            print(f"unknown experiment(s): {', '.join(unknown)}")
            print(f"available: {', '.join(ALL_EXPERIMENTS)}")
            return 1
        names = argv
    else:
        names = QUICK_SUBSET
        print(f"(quick subset: {', '.join(names)}; use --all for everything)")

    for name in names:
        started = time.time()
        result = ALL_EXPERIMENTS[name]()
        print()
        print(result.render())
        print(f"[{name} took {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
