"""Tenant key namespaces: fixed-length prefixes carving one key universe.

The multi-tenant front door (ARCHITECTURE §16) gives every principal a
disjoint slice of the cluster's key space by *prefixing*, not by separate
stores: a tenant's keys all begin with ::

    tenant prefix := b"t:" | blake2b(tenant_id, digest_size=8) | b":"

Every prefix has the same length (:data:`TENANT_PREFIX_LEN` bytes), so the
prefix set is **prefix-free**: no tenant's prefix is a prefix of another's,
and therefore no key of tenant A can ever begin with tenant B's prefix —
the disjointness property the hypothesis suite pins down.  Digest
collisions between distinct tenant ids are rejected at registration time
(:class:`repro.cluster.tenancy.TenantRegistry`), so within one cluster the
mapping tenant -> namespace is injective.

This module is deliberately tiny and dependency-free: the cluster front
door uses it to rewrite keys, and the *shard-side* store uses it to
attribute Secure Cache occupancy to the owning tenant — both ends must
agree on the byte format, so it lives below both.
"""

from __future__ import annotations

import hashlib
from typing import Optional

#: Leading marker of every tenant-prefixed key.
TENANT_MARKER = b"t:"
#: blake2b digest bytes identifying a tenant inside the prefix.
TENANT_DIGEST_BYTES = 8
#: Total prefix length: marker + digest + b":".  Fixed for every tenant,
#: which is what makes the namespace set prefix-free.
TENANT_PREFIX_LEN = len(TENANT_MARKER) + TENANT_DIGEST_BYTES + 1

_DIGEST_KEY = b"aria-tenant-ns"


def tenant_digest(tenant_id: str) -> bytes:
    """The 8-byte namespace digest of a tenant id (keyed, stable)."""
    return hashlib.blake2b(
        tenant_id.encode("utf-8"), key=_DIGEST_KEY,
        digest_size=TENANT_DIGEST_BYTES,
    ).digest()


def tenant_token(tenant_id: str) -> str:
    """The owner token the shard side sees: the digest, hex-encoded."""
    return tenant_digest(tenant_id).hex()


def tenant_prefix(tenant_id: str) -> bytes:
    """The fixed-length key prefix owning ``tenant_id``'s namespace."""
    return TENANT_MARKER + tenant_digest(tenant_id) + b":"


def prefixed_key(tenant_id: str, key: bytes) -> bytes:
    """``key`` relocated into ``tenant_id``'s namespace."""
    return tenant_prefix(tenant_id) + key


def owner_token_of(key: bytes) -> Optional[str]:
    """The owner token of a tenant-prefixed key, or ``None``.

    Purely syntactic — the shard side has no tenant list, only the digest
    embedded in the key, which is exactly enough to attribute cache
    occupancy and to look up a quota keyed by token.
    """
    if (
        len(key) >= TENANT_PREFIX_LEN
        and key.startswith(TENANT_MARKER)
        and key[TENANT_PREFIX_LEN - 1:TENANT_PREFIX_LEN] == b":"
    ):
        return key[len(TENANT_MARKER):TENANT_PREFIX_LEN - 1].hex()
    return None


def strip_prefix(key: bytes) -> bytes:
    """The tenant-relative key (identity for unprefixed keys)."""
    if owner_token_of(key) is not None:
        return key[TENANT_PREFIX_LEN:]
    return key
