"""On-wire KV record format and the sealing/opening codec (paper Section V-D).

A sealed record in untrusted memory has the layout::

    RedPtr (8) | k_len (2) | v_len (2) | ciphertext (k_len + v_len) | MAC (16)

The ciphertext is ``AES-CTR(key || value)`` under the per-KV counter.  The
MAC covers::

    RedPtr | counter value | k_len | v_len | ciphertext | AdField

where **AdField** is the address of the pointer slot that points at this
record (Section V-C's index protection).  Swapping two records' pointers in the
index relocates each record under a foreign AdField, so both MACs fail —
that is the Fig 7 attack and its defence.

The codec does real crypto (so attacks genuinely fail) and charges cycle
costs through the enclave.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.counters import CounterManager
from repro.errors import IntegrityError
from repro.sgx.enclave import Enclave

HEADER = struct.Struct("<QHH")  # RedPtr, k_len, v_len
MAC_SIZE = 16
_AD_BYTES = 8

MAX_KEY_LEN = 0xFFFF
MAX_VALUE_LEN = 0xFFFF


@dataclass(frozen=True)
class OpenedRecord:
    """A record after verification + decryption, plus its RedPtr."""

    red_ptr: int
    key: bytes
    value: bytes


def record_size(k_len: int, v_len: int) -> int:
    """Total serialized size for given key/value lengths."""
    return HEADER.size + k_len + v_len + MAC_SIZE


class RecordCodec:
    """Seals plaintext KV pairs into records and opens them verified."""

    def __init__(self, enclave: Enclave, counters: CounterManager):
        self._enclave = enclave
        self._counters = counters

    # -- sealing ----------------------------------------------------------------

    def seal(self, key: bytes, value: bytes, red_ptr: int, ad_field: int) -> bytes:
        """Encrypt and MAC a KV pair; increments its counter first (Section V-D).

        ``ad_field`` is the address of the slot that will point at this
        record once the caller installs it in the index.
        """
        if len(key) > MAX_KEY_LEN or len(value) > MAX_VALUE_LEN:
            raise ValueError("key/value too long for the record format")
        counter = self._counters.increment_counter(red_ptr)
        ciphertext = self._enclave.encrypt(counter, key + value)
        header = HEADER.pack(red_ptr, len(key), len(value))
        mac = self._enclave.mac(
            header + counter + ciphertext + ad_field.to_bytes(_AD_BYTES, "little")
        )
        return header + ciphertext + mac

    # -- opening -----------------------------------------------------------------

    def parse_header(self, blob: bytes) -> tuple[int, int, int]:
        """Split a record's header; returns (red_ptr, k_len, v_len)."""
        return HEADER.unpack_from(blob)

    def open(self, blob: bytes, ad_field: int) -> OpenedRecord:
        """Verify a sealed record (MAC + counter path) and decrypt it.

        Raises :class:`IntegrityError` if the record, its counter binding, or
        its index connection (AdField) was tampered with.
        """
        red_ptr, k_len, v_len = self.parse_header(blob)
        expected = record_size(k_len, v_len)
        if len(blob) < expected:
            raise IntegrityError("record truncated: untrusted data modified")
        body_end = HEADER.size + k_len + v_len
        ciphertext = blob[HEADER.size : body_end]
        stored_mac = blob[body_end : body_end + MAC_SIZE]
        counter = self._counters.read_counter(red_ptr)
        message = (
            blob[: HEADER.size]
            + counter
            + ciphertext
            + ad_field.to_bytes(_AD_BYTES, "little")
        )
        self._enclave.require_mac(message, stored_mac, "KV record")
        plaintext = self._enclave.decrypt(counter, ciphertext)
        return OpenedRecord(red_ptr=red_ptr, key=plaintext[:k_len],
                            value=plaintext[k_len:])

    def reseal_ad_field(self, blob: bytes, old_ad: int, new_ad: int) -> bytes:
        """Re-bind a record to a new pointer-slot address.

        Used when an index operation relocates the slot pointing at a record
        (chain splice on delete, B-tree node split): the record is verified
        under the old AdField, then its MAC is recomputed for the new one.
        The ciphertext and counter are untouched.
        """
        opened_red_ptr, k_len, v_len = self.parse_header(blob)
        body_end = HEADER.size + k_len + v_len
        ciphertext = blob[HEADER.size : body_end]
        stored_mac = blob[body_end : body_end + MAC_SIZE]
        counter = self._counters.read_counter(opened_red_ptr)
        old_message = (
            blob[: HEADER.size] + counter + ciphertext
            + old_ad.to_bytes(_AD_BYTES, "little")
        )
        self._enclave.require_mac(old_message, stored_mac, "KV record (rebind)")
        new_mac = self._enclave.mac(
            blob[: HEADER.size] + counter + ciphertext
            + new_ad.to_bytes(_AD_BYTES, "little")
        )
        return blob[:body_end] + new_mac
