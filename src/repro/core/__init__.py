"""Aria core: configuration, counters, records, and the store facade."""

from repro.core.config import (
    AriaConfig,
    aria_base_config,
    plus_fifo_config,
    plus_heapalloc_config,
    plus_pin_config,
)
from repro.core.counters import CounterManager
from repro.core.persistence import (
    capture_store_state,
    restore_store,
    seal_store,
)
from repro.core.record import OpenedRecord, RecordCodec, record_size
from repro.core.store import AriaStore

__all__ = [
    "AriaConfig",
    "AriaStore",
    "CounterManager",
    "OpenedRecord",
    "RecordCodec",
    "aria_base_config",
    "capture_store_state",
    "plus_fifo_config",
    "plus_heapalloc_config",
    "plus_pin_config",
    "record_size",
    "restore_store",
    "seal_store",
]
