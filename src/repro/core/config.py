"""Configuration for an Aria store instance.

Every optimization the paper ablates (Fig 12) and every knob its sensitivity
studies sweep (Figs 13-16) is a field here, so one config object fully
describes a scheme variant:

* ``AriaBase``      -> ``AriaConfig(allocator="ocall", policy="lru", pin_levels=0)``
* ``+HeapAlloc``    -> ``allocator="heap"``  (still LRU, no pinning)
* ``+PIN``          -> ``pin_levels=3``      (LRU)
* ``+FIFO``         -> ``policy="fifo"``     (no pinning)
* ``Aria``          -> heap + FIFO + pinning (the defaults)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class AriaConfig:
    """Tunable parameters of an Aria store."""

    # Index scheme (Section V-C): "hash" (Aria-H), "btree" (Aria-T), or
    # "bplustree" (the Section VII future-work index, implemented here).
    index: str = "hash"
    n_buckets: int = 4096
    btree_order: int = 16

    # Merkle tree geometry (Section IV-D, Fig 15).
    merkle_arity: int = 8

    # Secure Cache (Section IV-B, IV-E).
    secure_cache_bytes: int = 4 * 1024 * 1024
    eviction_policy: str = "fifo"
    pin_levels: int = 3
    stop_swap_enabled: bool = True
    stop_swap_threshold: float = 0.70
    stop_swap_window: int = 4096
    stop_swap_patience: int = 1

    # Counter area / redirection layer (Section V-C).
    initial_counters: int = 1 << 16
    #: New counter areas created on exhaustion get this many counters.
    expansion_counters: int = 1 << 16
    #: Secure Cache bytes granted to each expansion area's tree.
    expansion_cache_bytes: int = 1 << 20

    # Allocation strategy (Section V-B / Fig 12): "heap" or "ocall".
    allocator: str = "heap"
    heap_chunk_bytes: int = 4 * 1024 * 1024

    # Crypto backend: "fast" (benchmarks) or "real" (AES from scratch).
    crypto_backend: str = "fast"

    # Ablation switches for the semantic-aware optimizations (Section IV-C).
    swap_encrypt: bool = False       # True: re-add SGX-paging-style encryption
    writeback_clean: bool = False    # True: re-add EWB-style forced write-back

    # Section VII mitigation sketch: dummy bucket walks per Get to blur
    # key-access frequencies (hash index only; 0 = off, as in the paper).
    dummy_bucket_reads: int = 0

    # Multi-tenant Secure Cache partitioning (ARCHITECTURE §16): owner
    # token (hex digest embedded in tenant-prefixed keys) -> guaranteed
    # fraction of each Secure Cache's entries.  None = unarmed; the store
    # then behaves bit-identically to a pre-tenancy build.  Plain dict of
    # str -> float so it crosses process/socket spawn specs unchanged.
    tenant_quotas: "dict | None" = None

    # Deterministic seeds.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.index not in ("hash", "btree", "bplustree"):
            raise ConfigurationError(f"unknown index scheme {self.index!r}")
        if self.allocator not in ("heap", "ocall"):
            raise ConfigurationError(f"unknown allocator {self.allocator!r}")
        if self.n_buckets < 1:
            raise ConfigurationError("n_buckets must be positive")
        if self.btree_order < 3:
            raise ConfigurationError("btree_order must be at least 3")
        if self.merkle_arity < 2:
            raise ConfigurationError("merkle_arity must be at least 2")
        if self.initial_counters < 1:
            raise ConfigurationError("initial_counters must be positive")
        if not 0.0 <= self.stop_swap_threshold <= 1.0:
            raise ConfigurationError("stop_swap_threshold must be in [0, 1]")
        if self.tenant_quotas is not None:
            if not self.tenant_quotas:
                raise ConfigurationError(
                    "tenant_quotas must be None or non-empty")
            for owner, fraction in self.tenant_quotas.items():
                if not 0.0 < float(fraction) <= 1.0:
                    raise ConfigurationError(
                        f"tenant quota {fraction!r} for {owner!r} not in "
                        "(0, 1]")
            if sum(self.tenant_quotas.values()) > 1.0 + 1e-9:
                raise ConfigurationError("tenant quotas sum above 1.0")


def aria_base_config(**overrides) -> AriaConfig:
    """AriaBase of Fig 12: no optimizations (OCALL malloc, LRU, no pinning)."""
    defaults = dict(allocator="ocall", eviction_policy="lru", pin_levels=0,
                    stop_swap_enabled=False)
    defaults.update(overrides)
    return AriaConfig(**defaults)


def plus_heapalloc_config(**overrides) -> AriaConfig:
    """+HeapAlloc of Fig 12: user-space allocator, still LRU, no pinning."""
    defaults = dict(allocator="heap", eviction_policy="lru", pin_levels=0,
                    stop_swap_enabled=False)
    defaults.update(overrides)
    return AriaConfig(**defaults)


def plus_pin_config(**overrides) -> AriaConfig:
    """+PIN of Fig 12: heap allocator + level pinning (LRU)."""
    defaults = dict(allocator="heap", eviction_policy="lru", pin_levels=3,
                    stop_swap_enabled=False)
    defaults.update(overrides)
    return AriaConfig(**defaults)


def plus_fifo_config(**overrides) -> AriaConfig:
    """+FIFO of Fig 12: heap allocator + FIFO (no pinning)."""
    defaults = dict(allocator="heap", eviction_policy="fifo", pin_levels=0,
                    stop_swap_enabled=False)
    defaults.update(overrides)
    return AriaConfig(**defaults)
