"""Enclave restart recovery: seal trusted state, restore over surviving
untrusted memory (extension — the paper does not cover restarts).

The problem: all of Aria's *trusted* state — Merkle roots, occupancy
bitmaps, free-ring cursors, per-bucket counts, allocator bitmaps — lives in
the EPC and is lost when the enclave restarts, while the KV data in
untrusted memory survives.  Without a recovery path the surviving data is
unverifiable (no root of trust) and must be discarded.

The solution mirrors real SGX deployments:

* :func:`seal_store` first flushes every Secure Cache so the untrusted tree
  is self-consistent, then captures the trusted state and seals it under
  the enclave's sealing key (:mod:`repro.sgx.sealing`).
* :func:`restore_store` builds a fresh enclave **around the surviving
  untrusted memory**, unseals the state, and reconstructs every component.
  Pinning re-verifies the Merkle path against the sealed roots, so any
  tampering with untrusted memory *during the downtime* is detected the
  moment it is touched.

What this does NOT give (faithfully): rollback protection.  An attacker who
snapshots the sealed blob *together with* all of untrusted memory can
restore that consistent pair wholesale; defeating that needs a monotonic
counter outside the attacker's control (SGX provides one; modeling it is
out of scope and demonstrated in ``tests/test_sealing.py``).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Optional

from repro.core.config import AriaConfig
from repro.core.counters import CounterManager
from repro.core.record import RecordCodec
from repro.core.store import AriaStore
from repro.crypto.keys import KeyMaterial
from repro.errors import IntegrityError
from repro.sgx.costs import SgxPlatform
from repro.sgx.enclave import Enclave
from repro.sgx.memory import UntrustedMemory
from repro.sgx.meter import MeterPause
from repro.sgx.sealing import derive_sealing_key, seal, unseal

_STATE_VERSION = 1


def capture_store_state(store: AriaStore) -> dict:
    """Flush caches and snapshot every piece of trusted state."""
    for area in store.counters.areas:
        area.cache.flush_to_untrusted()
    return {
        "version": _STATE_VERSION,
        "config": asdict(store.config),
        "areas": store.counters.capture_state(),
        "area_cache_bytes": [
            area.cache._capacity_bytes for area in store.counters.areas
        ],
        "allocator": store.allocator.capture_state(),
        "index": store.index.capture_state(),
    }


def seal_store(store: AriaStore) -> bytes:
    """Serialize + seal the store's trusted state for an enclave shutdown."""
    payload = json.dumps(capture_store_state(store)).encode()
    key = derive_sealing_key(store.enclave.keys)
    return seal(store.enclave.crypto, key, payload)


def restore_store(
    sealed_blob: bytes,
    untrusted: UntrustedMemory,
    *,
    seed: int = 0,
    platform: Optional[SgxPlatform] = None,
) -> AriaStore:
    """Rebuild an AriaStore from a sealed blob + surviving untrusted memory.

    ``seed`` is the enclave identity (a real enclave derives exactly one
    sealing key from hardware; the simulator's identity is the config seed,
    supplied by the operator out of band).  Raises
    :class:`IntegrityError` if the blob was tampered with or sealed by a
    different identity; Merkle verification catches tampering with the
    untrusted memory itself as it is touched during reconstruction.
    """
    platform = platform or SgxPlatform()
    keys = KeyMaterial.from_seed(seed)
    probe = Enclave(platform, keys=keys, untrusted=untrusted)
    payload = unseal(probe.crypto, derive_sealing_key(keys), sealed_blob)
    state = json.loads(payload)
    if state.get("version") != _STATE_VERSION:
        raise IntegrityError("sealed state version mismatch")

    config = AriaConfig(**state["config"])
    if config.seed != seed:
        raise IntegrityError("sealed state does not match this identity")
    enclave = Enclave(
        platform,
        keys=keys,
        crypto_backend=config.crypto_backend,
        untrusted=untrusted,
    )
    store = AriaStore.__new__(AriaStore)
    store.config = config
    store.enclave = enclave
    with MeterPause(enclave.meter):
        store.counters = CounterManager(
            enclave,
            initial_counters=config.initial_counters,
            arity=config.merkle_arity,
            cache_bytes=config.secure_cache_bytes,
            policy=config.eviction_policy,
            pin_levels=config.pin_levels,
            stop_swap_enabled=config.stop_swap_enabled,
            stop_swap_threshold=config.stop_swap_threshold,
            stop_swap_window=config.stop_swap_window,
            stop_swap_patience=config.stop_swap_patience,
            swap_encrypt=config.swap_encrypt,
            writeback_clean=config.writeback_clean,
            tenant_quotas=config.tenant_quotas,
            expansion_counters=config.expansion_counters,
            expansion_cache_bytes=config.expansion_cache_bytes,
            seed=config.seed,
            create_initial_area=False,
        )
        # Rebuilding the areas re-pins levels, verified against the sealed
        # roots: downtime tampering is caught right here.
        store.counters.restore_areas(state["areas"],
                                     state["area_cache_bytes"])
        store.codec = RecordCodec(enclave, store.counters)
        store.allocator = store._make_allocator()
        store.allocator.restore_state(state["allocator"])
        store.index = store._make_index()
        if state["index"]["kind"] != store.index.name:
            raise IntegrityError("sealed index kind mismatch")
        store.index.restore_state(state["index"])
    store._tenant_armed = config.tenant_quotas is not None
    return store
