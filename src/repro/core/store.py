"""AriaStore: the public facade of the secure KV store (paper Section V).

Wires together the enclave simulator, the user-space heap allocator, the
counter manager (redirection layer + Merkle trees + Secure Caches), the
record codec, and one of the two index schemes.  The Put/Get walkthroughs of
Section V-D happen across these components:

Put(key, value):
  1. index lookup finds the slot serving the operation,
  2. a RedPtr is created (or reused) and its counter verified by Secure
     Cache, then incremented,
  3. key||value is CTR-encrypted under the counter,
  4. a MAC is computed over (RedPtr, counter, ciphertext, AdField),
  5. the record goes to a heap-allocator block and the index is updated.

Get(key): index traversal -> counter fetch via RedPtr (Secure Cache
verifies) -> MAC check -> decrypt -> plaintext key comparison.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.alloc.heap import Allocator, HeapAllocator, OcallAllocator
from repro.core.config import AriaConfig
from repro.core.counters import CounterManager
from repro.core.record import RecordCodec
from repro.crypto.keys import KeyMaterial
from repro.index.bplustree import AriaBPlusTreeIndex
from repro.index.btree import AriaBTreeIndex
from repro.index.hashtable import AriaHashIndex
from repro.sgx.costs import SgxPlatform
from repro.sgx.enclave import Enclave
from repro.sgx.meter import MeterPause


class AriaStore:
    """A secure in-memory KV store with Secure Cache (the paper's Aria)."""

    def __init__(
        self,
        config: Optional[AriaConfig] = None,
        *,
        platform: Optional[SgxPlatform] = None,
        enclave: Optional[Enclave] = None,
    ):
        self.config = config or AriaConfig()
        self.enclave = enclave or Enclave(
            platform or SgxPlatform(),
            keys=KeyMaterial.from_seed(self.config.seed),
            crypto_backend=self.config.crypto_backend,
        )
        # Setup (tree initialization, pinning) is excluded from metering,
        # matching the paper's steady-state measurements.
        with MeterPause(self.enclave.meter):
            self.counters = CounterManager(
                self.enclave,
                initial_counters=self.config.initial_counters,
                arity=self.config.merkle_arity,
                cache_bytes=self.config.secure_cache_bytes,
                policy=self.config.eviction_policy,
                pin_levels=self.config.pin_levels,
                stop_swap_enabled=self.config.stop_swap_enabled,
                stop_swap_threshold=self.config.stop_swap_threshold,
                stop_swap_window=self.config.stop_swap_window,
                stop_swap_patience=self.config.stop_swap_patience,
                swap_encrypt=self.config.swap_encrypt,
                writeback_clean=self.config.writeback_clean,
                tenant_quotas=self.config.tenant_quotas,
                expansion_counters=self.config.expansion_counters,
                expansion_cache_bytes=self.config.expansion_cache_bytes,
                seed=self.config.seed,
            )
            self.codec = RecordCodec(self.enclave, self.counters)
            self.allocator = self._make_allocator()
            self.index = self._make_index()
        # Armed only when the config carries cache quotas; the unarmed op
        # path is untouched (no owner parsing, no extra calls).
        self._tenant_armed = self.config.tenant_quotas is not None

    def _make_allocator(self) -> Allocator:
        if self.config.allocator == "heap":
            return HeapAllocator(self.enclave,
                                 chunk_size=self.config.heap_chunk_bytes)
        return OcallAllocator(self.enclave)

    def _make_index(self):
        if self.config.index == "hash":
            return AriaHashIndex(
                self.enclave,
                self.codec,
                self.allocator,
                n_buckets=self.config.n_buckets,
                fetch_counter=self.counters.fetch,
                free_counter=self.counters.free,
                dummy_bucket_reads=self.config.dummy_bucket_reads,
            )
        if self.config.index == "bplustree":
            return AriaBPlusTreeIndex(
                self.enclave,
                self.codec,
                self.allocator,
                order=self.config.btree_order,
                fetch_counter=self.counters.fetch,
                free_counter=self.counters.free,
            )
        order = self.config.btree_order
        if order % 2 == 0:
            order -= 1  # the CLRS tree wants an odd max-key count
        return AriaBTreeIndex(
            self.enclave,
            self.codec,
            self.allocator,
            order=order,
            fetch_counter=self.counters.fetch,
            free_counter=self.counters.free,
        )

    # -- public KV API ----------------------------------------------------------

    def _set_owner_from_key(self, key: bytes) -> None:
        """Attribute this op's cache activity to the key's tenant owner.

        The owner token is purely syntactic (the digest embedded in a
        tenant-prefixed key, :func:`repro.core.tenant.owner_token_of`), so
        the shard needs no tenant roster — the front door already
        authenticated the principal and prefixed the key.
        """
        from repro.core.tenant import owner_token_of
        self.counters.set_tenant_owner(owner_token_of(key))

    def retarget_tenant_quotas(self, quotas: "dict | None") -> None:
        """Adopt a new tenant quota map live (§16's follow-on).

        Re-partitions every Secure Cache in place — cached entries and
        their ownership survive — and updates the config so sealed
        snapshots and spawn-spec rebuilds carry the new roster forward.
        ``None`` disarms partitioning entirely.
        """
        self.config.tenant_quotas = dict(quotas) if quotas else None
        self.counters.retarget_tenant_quotas(self.config.tenant_quotas)
        self._tenant_armed = self.config.tenant_quotas is not None

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update a KV pair (Section V-D Put walkthrough)."""
        if self._tenant_armed:
            self._set_owner_from_key(key)
        self.index.put(key, value)
        self.enclave.meter.count("op_put")

    def get(self, key: bytes) -> bytes:
        """Fetch and verify a KV pair (Section V-D Get walkthrough)."""
        if self._tenant_armed:
            self._set_owner_from_key(key)
        value = self.index.get(key)
        self.enclave.meter.count("op_get")
        return value

    def delete(self, key: bytes) -> None:
        """Remove a KV pair; its counter returns to the free ring."""
        if self._tenant_armed:
            self._set_owner_from_key(key)
        self.index.delete(key)
        self.enclave.meter.count("op_delete")

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, key: bytes) -> bool:
        from repro.errors import KeyNotFoundError

        try:
            self.index.get(key)
            return True
        except KeyNotFoundError:
            return False

    def keys(self) -> Iterator[bytes]:
        return self.index.keys()

    def range_scan(self, lo: bytes, hi: bytes):
        """Ordered range query — tree indexes only (Section III's motivation)."""
        if not isinstance(self.index, (AriaBTreeIndex, AriaBPlusTreeIndex)):
            raise TypeError("range_scan requires a tree index (btree or "
                            "bplustree)")
        return self.index.range_scan(lo, hi)

    def items(self) -> Iterator[tuple]:
        """Iterate all (key, value) pairs, each verified and decrypted."""
        for key in list(self.index.keys()):
            yield key, self.index.get(key)

    def values(self) -> Iterator[bytes]:
        for _, value in self.items():
            yield value

    def __iter__(self) -> Iterator[bytes]:
        return self.index.keys()

    # -- auditing -------------------------------------------------------------------

    def audit(self) -> None:
        """Full integrity check of everything in untrusted memory.

        Verifies (1) the index structure — chain/tree shape, per-bucket
        counts or uniform depth, every record's MAC and AdField binding —
        and (2) every Merkle-tree node of every counter area against the
        path to its EPC-resident anchor.  Raises IntegrityError/ReplayError/
        DeletionError on the first inconsistency; an fsck for the paranoid.
        """
        self.index.audit()
        for area in self.counters.areas:
            layout = area.tree.layout
            for leaf in range(layout.nodes_at_level(0)):
                area.cache.verify_leaf(leaf)

    # -- bulk load (unmetered, like the paper's setup phase) -----------------------

    def load(self, pairs) -> None:
        """Insert many pairs without charging cycles (experiment setup)."""
        with MeterPause(self.enclave.meter):
            for key, value in pairs:
                if self._tenant_armed:
                    self._set_owner_from_key(key)
                self.index.put(key, value)

    # -- reporting -------------------------------------------------------------------

    def cache_stats(self) -> dict:
        return self.counters.cache_stats()

    def epc_report(self) -> dict:
        """Per-consumer EPC occupation (Table I's usability column)."""
        return self.enclave.epc.usage_report()

    def memory_report(self) -> dict:
        """Security/index/allocator metadata footprint (Section VI-D4).

        Per-KV security metadata: a 16-byte counter, a 16-byte MAC and an
        8-byte RedPtr, plus the Merkle tree above the counters.
        """
        per_key_security = 16 + 16 + 8
        mt_bytes = sum(
            area.tree.layout.total_bytes() for area in self.counters.areas
        )
        return {
            "per_key_security_bytes": per_key_security,
            "merkle_tree_bytes": mt_bytes,
            "untrusted_bytes": self.enclave.untrusted.allocated_bytes,
            "epc_bytes": self.enclave.epc.used,
            "epc_by_consumer": self.enclave.epc.usage_report(),
        }

    def seed_rng(self) -> random.Random:
        return random.Random(self.config.seed)
