"""The redirection layer and counter-area management (paper Section V-C).

Aria decouples security metadata from the index: every KV pair owns a
**redirection pointer** (RedPtr) naming one encryption counter; the counters
are what the Merkle tree + Secure Cache protect.  This module manages the
counter space:

* A **circular buffer in untrusted memory** records the ids of free counters
  (free-list content is cheap, bulky and non-secret — perfect for untrusted
  memory), with its head/tail cursors in the EPC.
* A **bitmap in the EPC** records true occupancy.  A fetched "free" counter
  whose bitmap bit is already set means the untrusted buffer was attacked
  (:class:`repro.errors.CounterReuseError`).
* When a counter area is exhausted, a **new Merkle tree** is built over a
  fresh counter area (MT expansion, Section V-A) and ids continue in a new range.

RedPtr encoding: ``area_index * area_capacity_stride + local_counter_id``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.cache.secure_cache import SecureCache
from repro.errors import CapacityError, CounterReuseError, IntegrityError
from repro.merkle.layout import MerkleLayout
from repro.merkle.tree import MerkleTree
from repro.sgx.enclave import Enclave

_ID_BYTES = 8
#: Stride between area id ranges (supports areas up to 2^40 counters).
_AREA_STRIDE = 1 << 40


@dataclass
class _CounterArea:
    """One counter region: its Merkle tree, Secure Cache, and free bookkeeping."""

    tree: MerkleTree
    cache: SecureCache
    capacity: int
    ring_addr: int                 # untrusted circular buffer of free ids
    bitmap: bytearray              # EPC-resident occupancy bitmap
    head: int = 0                  # EPC-resident cursors
    tail: int = 0
    n_free: int = 0


class CounterManager:
    """Fetches, verifies, increments and frees encryption counters."""

    EPC_CONSUMER = "counter_bitmap"

    def __init__(
        self,
        enclave: Enclave,
        *,
        initial_counters: int,
        arity: int,
        cache_bytes: int,
        policy: str = "fifo",
        pin_levels: int = 3,
        stop_swap_enabled: bool = True,
        stop_swap_threshold: float = 0.70,
        stop_swap_window: int = 4096,
        stop_swap_patience: int = 1,
        swap_encrypt: bool = False,
        writeback_clean: bool = False,
        tenant_quotas: Optional[dict] = None,
        expansion_counters: Optional[int] = None,
        expansion_cache_bytes: Optional[int] = None,
        seed: int = 0,
        create_initial_area: bool = True,
    ):
        self._enclave = enclave
        self._arity = arity
        self._cache_kwargs = dict(
            policy=policy,
            pin_levels=pin_levels,
            stop_swap_enabled=stop_swap_enabled,
            stop_swap_threshold=stop_swap_threshold,
            stop_swap_window=stop_swap_window,
            stop_swap_patience=stop_swap_patience,
            swap_encrypt=swap_encrypt,
            writeback_clean=writeback_clean,
            tenant_quotas=tenant_quotas,
        )
        self._tenant_armed = tenant_quotas is not None
        self._expansion_counters = expansion_counters or initial_counters
        self._expansion_cache_bytes = expansion_cache_bytes or cache_bytes
        self._rng = random.Random(seed)
        self._areas: list[_CounterArea] = []
        self._initial_cache_bytes = cache_bytes
        if create_initial_area:
            self._add_area(initial_counters, cache_bytes)

    # -- area management ---------------------------------------------------------

    def _add_area(self, n_counters: int, cache_bytes: int) -> None:
        """Build a fresh counter area: new MT + Secure Cache + free ring."""
        layout = MerkleLayout(n_counters=n_counters, arity=self._arity)
        tree = MerkleTree(self._enclave, layout, rng=self._rng)
        cache = SecureCache(
            self._enclave, tree, capacity_bytes=cache_bytes, **self._cache_kwargs
        )
        ring_addr = self._enclave.untrusted.alloc(n_counters * _ID_BYTES)
        bitmap = bytearray((n_counters + 7) // 8)
        self._enclave.epc.reserve(self.EPC_CONSUMER, len(bitmap))
        area = _CounterArea(
            tree=tree,
            cache=cache,
            capacity=n_counters,
            ring_addr=ring_addr,
            bitmap=bitmap,
            n_free=n_counters,
        )
        # Seed the ring with every local id, in order.
        for local_id in range(n_counters):
            self._enclave.untrusted.write(
                ring_addr + local_id * _ID_BYTES,
                local_id.to_bytes(_ID_BYTES, "little"),
            )
        area.tail = 0  # next pop position
        area.head = 0  # next push position (ring full at start)
        self._areas.append(area)
        self._enclave.meter.count("mt_expansion")

    def _split(self, red_ptr: int) -> tuple[_CounterArea, int]:
        area_index, local_id = divmod(red_ptr, _AREA_STRIDE)
        if area_index >= len(self._areas):
            raise IntegrityError(f"RedPtr {red_ptr:#x} names a nonexistent area")
        area = self._areas[area_index]
        if local_id >= area.capacity:
            raise IntegrityError(f"RedPtr {red_ptr:#x} out of area range")
        return area, local_id

    @property
    def n_areas(self) -> int:
        return len(self._areas)

    @property
    def areas(self) -> list:
        """The underlying areas (read-only use: stats, attack fixtures)."""
        return self._areas

    # -- fetch / free --------------------------------------------------------------

    def fetch(self) -> int:
        """Pop a free counter id; expands with a new MT when exhausted."""
        area_index = None
        for i, area in enumerate(self._areas):
            if area.n_free:
                area_index = i
                break
        if area_index is None:
            self._add_area(self._expansion_counters, self._expansion_cache_bytes)
            area_index = len(self._areas) - 1
        area = self._areas[area_index]
        # Pop from the untrusted ring at the head cursor.
        self._enclave.epc_touch(8)  # head cursor
        local_id = int.from_bytes(
            self._enclave.read_untrusted(
                area.ring_addr + area.tail * _ID_BYTES, _ID_BYTES
            ),
            "little",
        )
        if local_id >= area.capacity:
            raise CounterReuseError(
                f"free ring returned invalid counter id {local_id}"
            )
        byte_index, bit = divmod(local_id, 8)
        self._enclave.epc_touch(1)  # bitmap check
        if area.bitmap[byte_index] & (1 << bit):
            raise CounterReuseError(
                f"free ring returned in-use counter {local_id}: attack detected"
            )
        area.bitmap[byte_index] |= 1 << bit
        area.tail = (area.tail + 1) % area.capacity
        area.n_free -= 1
        return area_index * _AREA_STRIDE + local_id

    def free(self, red_ptr: int) -> None:
        """Return a counter to its area's free ring."""
        area, local_id = self._split(red_ptr)
        byte_index, bit = divmod(local_id, 8)
        self._enclave.epc_touch(1)
        if not area.bitmap[byte_index] & (1 << bit):
            raise CounterReuseError(f"freeing counter {local_id} that is not in use")
        area.bitmap[byte_index] &= ~(1 << bit)
        if area.n_free >= area.capacity:
            raise CapacityError("counter free ring overflow")
        self._enclave.epc_touch(8)  # tail cursor
        self._enclave.write_untrusted(
            area.ring_addr + area.head * _ID_BYTES,
            local_id.to_bytes(_ID_BYTES, "little"),
        )
        area.head = (area.head + 1) % area.capacity
        area.n_free += 1

    def is_used(self, red_ptr: int) -> bool:
        area, local_id = self._split(red_ptr)
        byte_index, bit = divmod(local_id, 8)
        return bool(area.bitmap[byte_index] & (1 << bit))

    # -- counter access (verified through the Secure Cache) --------------------------

    def set_tenant_owner(self, owner: Optional[str]) -> None:
        """Attribute subsequent cache activity to a tenant owner token.

        The store calls this at the top of every op (only when tenancy is
        armed); every area's Secure Cache shares the same owner context.
        """
        for area in self._areas:
            area.cache.set_owner(owner)

    def retarget_tenant_quotas(self, quotas: Optional[dict]) -> None:
        """Re-partition every area's Secure Cache for a new quota map.

        Future areas (counter expansion, restore) inherit the new map too:
        ``_cache_kwargs`` is what every ``SecureCache`` construction reads.
        """
        self._cache_kwargs["tenant_quotas"] = quotas
        self._tenant_armed = quotas is not None
        for area in self._areas:
            area.cache.retarget_quotas(quotas)

    def read_counter(self, red_ptr: int) -> bytes:
        area, local_id = self._split(red_ptr)
        return area.cache.read_counter(local_id)

    def increment_counter(self, red_ptr: int) -> bytes:
        area, local_id = self._split(red_ptr)
        return area.cache.increment_counter(local_id)

    # -- reporting ----------------------------------------------------------------------

    def cache_stats(self) -> dict:
        """Aggregated Secure Cache statistics across areas."""
        totals: dict = {"hits": 0, "misses": 0, "evictions": 0,
                        "writebacks": 0, "clean_discards": 0}
        for area in self._areas:
            stats = area.cache.stats
            totals["hits"] += stats.hits
            totals["misses"] += stats.misses
            totals["evictions"] += stats.evictions
            totals["writebacks"] += stats.writebacks
            totals["clean_discards"] += stats.clean_discards
        accesses = totals["hits"] + totals["misses"]
        totals["hit_ratio"] = totals["hits"] / accesses if accesses else 0.0
        # Tenancy rows only when armed: an unarmed store's report stays
        # byte-identical to the pre-tenancy shape.
        tenant_rows = [
            row for row in
            (area.cache.tenant_stats() for area in self._areas)
            if row is not None
        ]
        if tenant_rows:
            occupancy: dict = {}
            for row in tenant_rows:
                for owner, count in row["occupancy"].items():
                    occupancy[owner] = occupancy.get(owner, 0) + count
            totals["tenant_evict_denials"] = sum(
                row["denials"] for row in tenant_rows)
            totals["tenant_occupancy"] = occupancy
        return totals

    # -- state capture / restore (enclave restart) -----------------------------

    def capture_state(self) -> list:
        """Trusted per-area state for sealing.

        Callers must flush the Secure Caches first
        (:meth:`repro.cache.secure_cache.SecureCache.flush_to_untrusted`)
        so the captured roots cover the current untrusted tree contents.
        """
        return [
            {
                "capacity": area.capacity,
                "arity": area.tree.layout.arity,
                "ring_addr": area.ring_addr,
                "bitmap": bytes(area.bitmap).hex(),
                "head": area.head,
                "tail": area.tail,
                "n_free": area.n_free,
                "level_bases": area.tree.level_bases,
                "root": area.tree.root_mac.hex(),
            }
            for area in self._areas
        ]

    def restore_areas(self, states: list, cache_bytes_per_area: list) -> None:
        """Rebuild every counter area from sealed state (replaces the fresh
        area the constructor made)."""
        self._areas = []
        for state, cache_bytes in zip(states, cache_bytes_per_area):
            layout = MerkleLayout(n_counters=state["capacity"],
                                  arity=state["arity"])
            tree = MerkleTree(
                self._enclave, layout,
                level_bases=state["level_bases"],
                root_mac=bytes.fromhex(state["root"]),
            )
            cache = SecureCache(self._enclave, tree,
                                capacity_bytes=cache_bytes,
                                **self._cache_kwargs)
            self._areas.append(_CounterArea(
                tree=tree,
                cache=cache,
                capacity=state["capacity"],
                ring_addr=state["ring_addr"],
                bitmap=bytearray.fromhex(state["bitmap"]),
                head=state["head"],
                tail=state["tail"],
                n_free=state["n_free"],
            ))
            self._enclave.epc.reserve(self.EPC_CONSUMER,
                                      (state["capacity"] + 7) // 8)

    def reset_stats(self) -> None:
        """Zero every area's cache counters (between load and run phases)."""
        for area in self._areas:
            area.cache.stats.reset_counts()

    def primary_cache(self) -> SecureCache:
        return self._areas[0].cache
