"""Secure Cache: software-managed, fine-grained MT-node caching in the EPC.

This is the paper's core contribution (Section IV).  Instead of hardware secure
paging (4 KB pages mixing hot and cold metadata) or ShieldStore's per-bucket
trees (bucket-granularity verification on every request), Secure Cache tracks
*individual Merkle-tree nodes*:

* **Hit path** — if the leaf node holding a counter is cached (or its level is
  pinned), the counter is trusted immediately: KV-pair-granularity protection
  with zero MT verification.
* **Caching (miss path)** — the node is read from untrusted memory and
  verified along its path *up to the first cached/pinned ancestor* (or the
  EPC-resident root), then inserted.  Only the requested node is inserted;
  ancestors are verified transiently (Section IV-B's walkthrough).
* **Eviction** — a victim chosen by the policy (FIFO by default) is written
  back only if dirty: its fresh MAC is propagated into its parent (swapping
  the parent in if needed, exactly as Section IV-B describes), and the node body
  returns to untrusted memory **in plaintext** (semantic-aware optimization:
  integrity suffices for metadata, skip the encryption SGX paging would
  force).  Clean victims are discarded with no write-back at all (the second
  optimization — impossible with SGX's EWB).
* **Level pinning** — the top-k levels live permanently in the EPC, bounding
  the worst-case verification depth at O(h-k-1) (Section IV-E).
* **Stop-swap** — when the windowed hit ratio drops below 70 % (uniform
  workloads), swapping stops: the cache flushes, its EPC space is repurposed
  to pin as many upper levels as fit, and every access verifies the leaf
  against the pinned layer transiently.

The invariant behind the proof sketch (Section IV-B): *the newest information of
every leaf always resides in at least one EPC-resident node* — a cached
dirty node, a pinned node holding its fresh MAC, or the root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, ReplayError
from repro.merkle.layout import COUNTER_SIZE, MAC_SIZE
from repro.merkle.tree import MerkleTree
from repro.cache.policies import EvictionPolicy, TenantPartition, make_policy
from repro.cache.stats import CacheStats
from repro.sgx.enclave import Enclave

#: Modeled per-entry cache metadata resident in EPC: an 8-byte packed
#: (level, index) key, a FIFO queue slot, and the dirty bit.  Bigger MT
#: nodes amortize this better — the space-utilization effect that makes
#: throughput rise with arity in Fig 15.
ENTRY_METADATA_BYTES = 16

NodeKey = tuple  # (level, index)


@dataclass
class CacheEntry:
    data: bytearray
    dirty: bool = False


class SecureCache:
    """EPC-resident cache of Merkle-tree nodes with verified swap-in/out."""

    EPC_CACHE = "secure_cache"
    EPC_PINNED = "mt_pinned"

    def __init__(
        self,
        enclave: Enclave,
        tree: MerkleTree,
        *,
        capacity_bytes: int,
        policy: str = "fifo",
        pin_levels: int = 3,
        stop_swap_enabled: bool = True,
        stop_swap_threshold: float = 0.70,
        stop_swap_window: int = 4096,
        stop_swap_patience: int = 1,
        swap_encrypt: bool = False,
        writeback_clean: bool = False,
        tenant_quotas: Optional[dict] = None,
    ):
        self._enclave = enclave
        self._tree = tree
        layout = tree.layout
        pin_levels = min(pin_levels, layout.n_levels)
        self._pinned_levels = layout.pinned_level_set(pin_levels)
        self._capacity_bytes = capacity_bytes
        self._entry_footprint = layout.node_size + ENTRY_METADATA_BYTES
        self.max_entries = max(0, capacity_bytes // self._entry_footprint)
        self._entries: dict[NodeKey, CacheEntry] = {}
        self._policy: EvictionPolicy = make_policy(policy)
        self.stats = CacheStats(window=stop_swap_window,
                                threshold=stop_swap_threshold,
                                patience=stop_swap_patience)
        self._stop_swap_enabled = stop_swap_enabled
        self._swap_encrypt = swap_encrypt
        self._writeback_clean = writeback_clean
        # Multi-tenant partitioning (ARCHITECTURE §16): armed only when the
        # config carries quotas, so single-tenant stores pay nothing — not
        # even a branch on the insert fast path beyond one None check.
        self._partition = (TenantPartition(tenant_quotas, self.max_entries)
                           if tenant_quotas else None)
        self.tenant_denials = 0
        self.swapping = self.max_entries > 0

        enclave.epc.reserve(self.EPC_CACHE, capacity_bytes)
        pinned_bytes = layout.pinned_bytes(pin_levels)
        enclave.epc.reserve(self.EPC_PINNED, pinned_bytes)
        self._pinned_reserved = pinned_bytes
        self._pinned: dict[int, list[bytearray]] = {}
        self._pin_levels_now(self._pinned_levels)

    # -- properties -----------------------------------------------------------

    @property
    def pinned_levels(self) -> frozenset:
        return frozenset(self._pinned_levels)

    @property
    def cached_nodes(self) -> int:
        return len(self._entries)

    def is_cached(self, level: int, index: int) -> bool:
        return (level, index) in self._entries

    def set_owner(self, owner: Optional[str]) -> None:
        """Attribute subsequent inserts/evictions to a tenant owner token.

        No-op unless the cache was built with ``tenant_quotas`` — the
        store calls this before every op, so the unarmed path must stay
        free.
        """
        if self._partition is not None:
            self._partition.current_owner = owner

    def retarget_quotas(self, quotas: Optional[dict]) -> None:
        """Re-partition live for a new quota map (§16's follow-on).

        ``None``/empty disarms; a map arms (or re-arms) with floors
        recomputed against this cache's entry capacity.  Cached entries
        and their ownership attribution survive either way.
        """
        if not quotas:
            self._partition = None
            return
        if self._partition is None:
            self._partition = TenantPartition(quotas, self.max_entries)
        else:
            self._partition.retarget(quotas, self.max_entries)

    # -- pinning ----------------------------------------------------------------

    def _pin_levels_now(self, levels: frozenset) -> None:
        """Load the given levels into the EPC, verified top-down.

        The top level checks against the root; every lower pinned node checks
        against its (already pinned) parent, so a tampered tree cannot sneak
        into the pinned store.
        """
        layout = self._tree.layout
        for level in sorted(levels, reverse=True):
            nodes: list[bytearray] = []
            for index in range(layout.nodes_at_level(level)):
                node = self._tree.read_node(level, index)
                if level == layout.top_level:
                    self._tree.check_against_root(node)
                else:
                    parent_level, parent_index, offset = layout.parent_of(level, index)
                    parent = self._trusted_node_view(parent_level, parent_index)
                    if parent is None:
                        # Parent level not pinned: fall back to path verify.
                        self._verified_node_bytes(level, index)
                    else:
                        computed = self._tree.node_mac(node)
                        if computed != bytes(parent[offset : offset + MAC_SIZE]):
                            raise ReplayError(
                                f"pinned node (level {level}, {index}) failed "
                                "verification during pinning"
                            )
                nodes.append(bytearray(node))
            self._pinned[level] = nodes

    # -- trusted node lookup -------------------------------------------------------

    def _trusted_node_view(self, level: int, index: int) -> Optional[bytearray]:
        """Return EPC-resident bytes for a node, or None if not resident.

        Does not update policy metadata — used for ancestor lookups during
        verification, where the paper stops the walk at the first cached node.
        """
        if level in self._pinned:
            self._enclave.epc_touch(MAC_SIZE)
            return self._pinned[level][index]
        entry = self._entries.get((level, index))
        if entry is not None:
            self._enclave.epc_touch(MAC_SIZE)
            return entry.data
        return None

    # -- transient verification (Section IV-B caching walkthrough) ----------------------

    def _verified_node_bytes(self, level: int, index: int) -> bytes:
        """Read a node from untrusted memory, verified up to the first
        EPC-resident ancestor (cached, pinned, or the root)."""
        layout = self._tree.layout
        node = self._tree.read_node(level, index)
        if level == layout.top_level:
            self._tree.check_against_root(node)
            return node
        computed = self._tree.node_mac(node)
        parent_level, parent_index, offset = layout.parent_of(level, index)
        parent = self._trusted_node_view(parent_level, parent_index)
        if parent is None:
            parent = self._verified_node_bytes(parent_level, parent_index)
        stored = bytes(parent[offset : offset + MAC_SIZE])
        if computed != stored:
            raise ReplayError(
                f"Merkle node (level {level}, index {index}) failed "
                "verification: replay or tampering detected"
            )
        return node

    # -- insertion and eviction -------------------------------------------------------

    def _insert(self, level: int, index: int, data: bytearray, *, dirty: bool,
                locked: frozenset) -> Optional[CacheEntry]:
        """Place a verified node into the cache, evicting as needed.

        Returns the entry, or None if no victim could be freed (tiny caches).
        """
        key = (level, index)
        while len(self._entries) >= self.max_entries:
            if not self._evict_one(locked | {key}):
                return None
            if key in self._entries:
                # A nested eviction inserted this very node (e.g. two dirty
                # leaves sharing a parent).  The nested copy is fresher — it
                # already absorbed the sibling's MAC — so use it as-is.
                return self._entries[key]
        entry = CacheEntry(data=data, dirty=dirty)
        self._entries[key] = entry
        self._policy.on_insert(key)
        if self._partition is not None:
            self._partition.on_insert(key)
        self._enclave.epc_touch(self._tree.layout.node_size)
        return entry

    def _evict_one(self, locked: frozenset, *, partition: bool = True) -> bool:
        """Evict one victim; returns False if everything is locked.

        With tenancy armed, other tenants' within-quota entries join the
        locked set (see :class:`~repro.cache.policies.TenantPartition`);
        an eviction that fails *because of that protection* is counted as
        a denial — the caller falls back to the untrusted write-through
        path, so the over-quota tenant pays the slowdown, not the victim.
        ``partition=False`` bypasses protection for whole-cache flushes
        (stop-swap), which are not cross-tenant pressure.
        """
        if partition and self._partition is not None:
            protected = self._partition.protected_keys()
            if protected:
                victim = self._policy.victim(locked | protected)
                if victim is None:
                    self.tenant_denials += 1
                    self._enclave.meter.count("tenant_evict_denied")
                    owner = self._partition.current_owner
                    if owner is not None:
                        self._enclave.meter.count(
                            f"tenant_evict_denied:{owner}")
                    return False
            else:
                victim = self._policy.victim(locked)
        else:
            victim = self._policy.victim(locked)
        if victim is None:
            return False
        entry = self._entries.pop(victim)
        self._policy.on_remove(victim)
        if self._partition is not None:
            self._partition.on_remove(victim)
        self.stats.evictions += 1
        self._enclave.meter.count("cache_evict")
        level, index = victim
        if entry.dirty:
            self._writeback(level, index, entry, locked)
        else:
            # Clean discard: no write-back at all.  SGX's EWB cannot do this
            # (Section IV-C); the ablation flag restores EWB-like behaviour.
            self.stats.clean_discards += 1
            if self._writeback_clean:
                self._write_node_out(level, index, entry.data)
        return True

    def _writeback(self, level: int, index: int, entry: CacheEntry,
                   locked: frozenset) -> None:
        """Propagate a dirty victim's MAC to its parent, then write it out."""
        layout = self._tree.layout
        new_mac = self._tree.node_mac(bytes(entry.data))
        if level == layout.top_level:
            self._tree.set_root(new_mac)
        else:
            parent_level, parent_index, offset = layout.parent_of(level, index)
            parent = self._trusted_node_view(parent_level, parent_index)
            if parent is None and self.swapping:
                # Paper path: swap the parent in, then update the cached copy.
                verified = bytearray(
                    self._verified_node_bytes(parent_level, parent_index)
                )
                inserted = self._insert(
                    parent_level, parent_index, verified, dirty=False,
                    locked=locked | {(level, index)},
                )
                parent = inserted.data if inserted is not None else None
            if parent is not None:
                parent[offset : offset + MAC_SIZE] = new_mac
                parent_entry = self._entries.get((parent_level, parent_index))
                if parent_entry is not None:
                    parent_entry.dirty = True
                self._enclave.epc_touch(MAC_SIZE)
            else:
                # Cache too small to host the parent: propagate through
                # untrusted memory instead (same machinery as stop-swap writes).
                self._propagate_mac_untrusted(parent_level, parent_index,
                                              offset, new_mac)
        self._write_node_out(level, index, entry.data)
        self.stats.writebacks += 1
        self._enclave.meter.count("cache_writeback")

    def _write_node_out(self, level: int, index: int, data: bytearray) -> None:
        """Write a node body back to untrusted memory (plaintext by default)."""
        if self._swap_encrypt:
            # Ablation: charge the encryption SGX paging would have forced.
            self._enclave.meter.charge_event(
                "enc_bytes",
                self._enclave.costs.enc_cost(len(data)),
                len(data),
            )
        self._tree.write_node(level, index, bytes(data))

    def _propagate_mac_untrusted(self, level: int, index: int,
                                 slot_offset: int, child_mac: bytes) -> None:
        """Update an *uncached* ancestor chain in untrusted memory.

        Verifies each node before modifying it, updates the child-MAC slot,
        writes it back, and recurses until an EPC-resident node (pinned,
        cached, or the root) absorbs the change.
        """
        layout = self._tree.layout
        resident = self._trusted_node_view(level, index)
        if resident is not None:
            resident[slot_offset : slot_offset + MAC_SIZE] = child_mac
            entry = self._entries.get((level, index))
            if entry is not None:
                entry.dirty = True
            self._enclave.epc_touch(MAC_SIZE)
            return
        node = bytearray(self._verified_node_bytes(level, index))
        node[slot_offset : slot_offset + MAC_SIZE] = child_mac
        self._tree.write_node(level, index, bytes(node))
        new_mac = self._tree.node_mac(bytes(node))
        if level == layout.top_level:
            self._tree.set_root(new_mac)
            return
        parent_level, parent_index, offset = layout.parent_of(level, index)
        self._propagate_mac_untrusted(parent_level, parent_index, offset, new_mac)

    # -- the counter API used by Aria -----------------------------------------------

    def read_counter(self, counter_id: int) -> bytes:
        """Return the verified 16-byte counter for ``counter_id``."""
        layout = self._tree.layout
        leaf_index, offset = layout.counter_slot(counter_id)
        node = self._leaf_for_access(leaf_index)
        return bytes(node[offset : offset + COUNTER_SIZE])

    def write_counter(self, counter_id: int, value: bytes) -> None:
        """Store a new counter value, keeping the MT consistent."""
        if len(value) != COUNTER_SIZE:
            raise ConfigurationError(f"counter must be {COUNTER_SIZE} bytes")
        layout = self._tree.layout
        leaf_index, offset = layout.counter_slot(counter_id)
        if 0 in self._pinned:
            node = self._pinned[0][leaf_index]
            node[offset : offset + COUNTER_SIZE] = value
            self._enclave.epc_touch(COUNTER_SIZE)
            return
        entry = self._entries.get((0, leaf_index))
        if entry is not None:
            self.stats.record_hit()
            self._enclave.meter.count("cache_hit")
            self._charge_hit()
            self._policy.on_hit((0, leaf_index))
            entry.data[offset : offset + COUNTER_SIZE] = value
            entry.dirty = True
            self._enclave.epc_touch(COUNTER_SIZE)
            return
        self.stats.record_miss()
        self._enclave.meter.count("cache_miss")
        node = bytearray(self._verified_node_bytes(0, leaf_index))
        node[offset : offset + COUNTER_SIZE] = value
        if self.swapping:
            inserted = self._insert(0, leaf_index, node, dirty=True,
                                    locked=frozenset())
            if inserted is not None:
                self._maybe_stop_swap()
                return
        # Not cacheable: write through untrusted memory and propagate the MAC.
        self._tree.write_node(0, leaf_index, bytes(node))
        new_mac = self._tree.node_mac(bytes(node))
        if layout.top_level == 0:
            self._tree.set_root(new_mac)
        else:
            parent_level, parent_index, poffset = layout.parent_of(0, leaf_index)
            self._propagate_mac_untrusted(parent_level, parent_index, poffset,
                                          new_mac)
        self._maybe_stop_swap()

    def increment_counter(self, counter_id: int) -> bytes:
        """Verify, increment, and store a counter; returns the new value.

        This is the pre-encryption step of every Put (Section V-D step 3).
        """
        current = int.from_bytes(self.read_counter(counter_id), "little")
        new_value = ((current + 1) % (1 << 128)).to_bytes(COUNTER_SIZE, "little")
        self.write_counter(counter_id, new_value)
        return new_value

    def _leaf_for_access(self, leaf_index: int) -> bytes:
        if 0 in self._pinned:
            self._enclave.epc_touch(COUNTER_SIZE)
            return self._pinned[0][leaf_index]
        entry = self._entries.get((0, leaf_index))
        if entry is not None:
            self.stats.record_hit()
            self._enclave.meter.count("cache_hit")
            self._charge_hit()
            self._policy.on_hit((0, leaf_index))
            self._enclave.epc_touch(COUNTER_SIZE)
            return entry.data
        self.stats.record_miss()
        self._enclave.meter.count("cache_miss")
        node = self._verified_node_bytes(0, leaf_index)
        if self.swapping:
            self._insert(0, leaf_index, bytearray(node), dirty=False,
                         locked=frozenset())
        self._maybe_stop_swap()
        return node

    def _charge_hit(self) -> None:
        """Hit penalty: the policy's EPC metadata operations (Section IV-E)."""
        ops = self._policy.hit_metadata_ops
        if ops:
            self._enclave.meter.charge(
                ops * self._enclave.costs.access_cost(16, in_epc=True)
            )

    def flush_to_untrusted(self) -> None:
        """Write every EPC-resident node back so untrusted memory is whole.

        Used before sealing for an enclave shutdown: cached entries and
        pinned levels are written out, then the tree above the leaves is
        rebuilt so the untrusted state verifies against the refreshed root
        alone.  The cache keeps operating afterwards (entries become clean).
        """
        for (level, index), entry in self._entries.items():
            self._tree.write_node(level, index, bytes(entry.data))
            entry.dirty = False
        for level, nodes in self._pinned.items():
            for index, node in enumerate(nodes):
                self._tree.write_node(level, index, bytes(node))
        self._tree.rebuild_above_leaves()
        # Pinned copies of rebuilt levels must mirror the fresh MACs.
        for level in list(self._pinned):
            if level > 0:
                self._pinned[level] = [
                    bytearray(self._tree.read_node(level, index))
                    for index in range(self._tree.layout.nodes_at_level(level))
                ]
        # Cached inner nodes may now hold stale MAC slots; drop them (clean).
        for key in [k for k in self._entries if k[0] > 0]:
            self._entries.pop(key)
            self._policy.on_remove(key)
            if self._partition is not None:
                self._partition.on_remove(key)

    def verify_leaf(self, leaf_index: int) -> None:
        """Audit helper: check one leaf node's integrity without caching it.

        EPC-resident copies (cached or pinned) are authoritative by
        construction; everything else is verified along the Merkle path.
        """
        if 0 in self._pinned or (0, leaf_index) in self._entries:
            return
        self._verified_node_bytes(0, leaf_index)

    # -- stop-swap (Section IV-E) ----------------------------------------------------------

    def _maybe_stop_swap(self) -> None:
        if (
            self.swapping
            and self._stop_swap_enabled
            and self.stats.stop_swap_recommended
        ):
            self.stop_swapping()

    def stop_swapping(self) -> None:
        """Flush the cache and repurpose its EPC space for level pinning."""
        if not self.swapping:
            return
        while self._entries:
            # A stop-swap flush empties the whole cache; tenant protection
            # does not apply (this is repurposing, not cross-tenant
            # pressure).
            if not self._evict_one(frozenset(), partition=False):
                break
        self.swapping = False
        # Pin as many additional upper levels as the freed space allows.
        layout = self._tree.layout
        budget = self._capacity_bytes + self._pinned_reserved
        best_pin = len(self._pinned_levels)
        for pin in range(len(self._pinned_levels) + 1, layout.n_levels + 1):
            if layout.pinned_bytes(pin) <= budget:
                best_pin = pin
            else:
                break
        new_levels = layout.pinned_level_set(best_pin)
        extra = new_levels - self._pinned_levels
        if extra:
            # Repurpose the cache reservation for the new pinned levels.
            extra_bytes = layout.pinned_bytes(best_pin) - self._pinned_reserved
            self._enclave.epc.release(self.EPC_CACHE, min(extra_bytes,
                                                          self._capacity_bytes))
            self._enclave.epc.reserve(self.EPC_PINNED, extra_bytes)
            self._pinned_reserved += extra_bytes
            self._pin_levels_now(frozenset(extra))
            self._pinned_levels = new_levels
        self._enclave.meter.count("stop_swap")

    # -- reporting -------------------------------------------------------------------

    def tenant_stats(self) -> Optional[dict]:
        """Partition counters, or ``None`` when tenancy is unarmed.

        Returning ``None`` (rather than an all-zeros row) keeps unarmed
        stores' reports byte-identical to pre-tenancy behaviour.
        """
        if self._partition is None:
            return None
        return {
            "denials": self.tenant_denials,
            "occupancy": self._partition.occupancy(),
            "quota_entries": self._partition.quotas,
        }

    def epc_bytes_in_use(self) -> int:
        """Bytes of EPC this cache and its pinned levels occupy."""
        return (
            len(self._entries) * self._entry_footprint + self._pinned_reserved
        )
