"""Secure Cache statistics and the stop-swap trigger (paper Section IV-E).

Under uniform (skew-free) workloads the Secure Cache hit ratio collapses and
every access pays the miss penalty (path verification plus eviction).  Aria
therefore monitors a windowed hit ratio and *stops swapping* when it falls
below a threshold (70 % in the paper), falling back to level pinning alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Running hit/miss counters plus a windowed stop-swap detector.

    ``patience`` adds hysteresis: swapping stops only after that many
    *consecutive* windows below the threshold, so a workload hovering near
    the threshold doesn't flap into pinning-only mode on one bad window.
    """

    window: int = 4096
    threshold: float = 0.70
    patience: int = 1

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    clean_discards: int = 0

    _window_hits: int = field(default=0, repr=False)
    _window_accesses: int = field(default=0, repr=False)
    _low_streak: int = field(default=0, repr=False)
    _stop_recommended: bool = field(default=False, repr=False)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def record_hit(self) -> None:
        self.hits += 1
        self._window_hits += 1
        self._bump_window()

    def record_miss(self) -> None:
        self.misses += 1
        self._bump_window()

    def _bump_window(self) -> None:
        self._window_accesses += 1
        if self._window_accesses >= self.window:
            ratio = self._window_hits / self._window_accesses
            if ratio < self.threshold:
                self._low_streak += 1
                if self._low_streak >= self.patience:
                    self._stop_recommended = True
            else:
                self._low_streak = 0
            self._window_hits = 0
            self._window_accesses = 0

    def reset_counts(self) -> None:
        """Zero the counters (but keep the stop-swap decision state).

        Called between an experiment's load and run phases so reported hit
        ratios describe the steady state only.
        """
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.clean_discards = 0
        self._window_hits = 0
        self._window_accesses = 0

    @property
    def stop_swap_recommended(self) -> bool:
        """True once a full window measured a hit ratio below the threshold."""
        return self._stop_recommended

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 4),
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "clean_discards": self.clean_discards,
        }
