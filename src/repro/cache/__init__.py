"""Secure Cache: software-managed EPC caching of Merkle-tree nodes."""

from repro.cache.policies import EvictionPolicy, FifoPolicy, LruPolicy, make_policy
from repro.cache.secure_cache import ENTRY_METADATA_BYTES, CacheEntry, SecureCache
from repro.cache.stats import CacheStats

__all__ = [
    "ENTRY_METADATA_BYTES",
    "CacheEntry",
    "CacheStats",
    "EvictionPolicy",
    "FifoPolicy",
    "LruPolicy",
    "SecureCache",
    "make_policy",
]
