"""Eviction policies for Secure Cache (paper Section IV-E, Fig 12).

The paper's observation (citing "It's time to revisit LRU vs. FIFO"): when
the cache is large and lives in the EPC — where memory operations are more
expensive than in regular DRAM — the *hit penalty* of maintaining recency
metadata dominates.  FIFO touches nothing on a hit; LRU pays list surgery in
EPC on every hit.  Each policy reports its per-hit EPC metadata accesses so
the enclave can charge them (that is how "+FIFO beats +HeapAlloc/LRU" in
Fig 12 materializes).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Hashable, Iterable, Optional

from repro.errors import AriaError

Key = Hashable


class EvictionPolicy:
    """Interface: track insertions/hits, pick victims, report hit penalty."""

    name = "abstract"
    #: EPC memory operations performed on a cache hit (charged by the cache).
    hit_metadata_ops = 0

    def on_insert(self, key: Key) -> None:
        raise NotImplementedError

    def on_hit(self, key: Key) -> None:
        raise NotImplementedError

    def on_remove(self, key: Key) -> None:
        raise NotImplementedError

    def victim(self, locked: Iterable[Key]) -> Optional[Key]:
        """Pick an eviction victim not in ``locked`` (None if impossible)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FifoPolicy(EvictionPolicy):
    """First-in first-out: zero metadata work on hits (Aria's choice)."""

    name = "fifo"
    hit_metadata_ops = 0

    def __init__(self) -> None:
        self._queue: deque[Key] = deque()
        self._members: set[Key] = set()

    def on_insert(self, key: Key) -> None:
        if key in self._members:
            raise AriaError(f"duplicate insert of {key!r}")
        self._queue.append(key)
        self._members.add(key)

    def on_hit(self, key: Key) -> None:
        pass  # the whole point: hits are free

    def on_remove(self, key: Key) -> None:
        self._members.discard(key)
        # Lazy deletion: stale queue entries are skipped during victim scans.

    def victim(self, locked: Iterable[Key]) -> Optional[Key]:
        locked_set = set(locked)
        skipped = []
        chosen = None
        while self._queue:
            key = self._queue.popleft()
            if key not in self._members:
                continue  # lazily-deleted entry
            if key in locked_set:
                skipped.append(key)
                continue
            chosen = key
            break
        for key in reversed(skipped):
            self._queue.appendleft(key)
        return chosen

    def __len__(self) -> int:
        return len(self._members)


class LruPolicy(EvictionPolicy):
    """Least-recently-used: list surgery in the EPC on every hit.

    ``hit_metadata_ops = 3`` models the doubly-linked-list unlink/relink
    (predecessor, successor, and head pointer updates), each an EPC access.
    """

    name = "lru"
    hit_metadata_ops = 3

    def __init__(self) -> None:
        self._order: OrderedDict[Key, None] = OrderedDict()

    def on_insert(self, key: Key) -> None:
        if key in self._order:
            raise AriaError(f"duplicate insert of {key!r}")
        self._order[key] = None

    def on_hit(self, key: Key) -> None:
        self._order.move_to_end(key)

    def on_remove(self, key: Key) -> None:
        self._order.pop(key, None)

    def victim(self, locked: Iterable[Key]) -> Optional[Key]:
        locked_set = set(locked)
        for key in self._order:
            if key not in locked_set:
                return key
        return None

    def __len__(self) -> int:
        return len(self._order)


class ClockPolicy(EvictionPolicy):
    """CLOCK (second chance): one reference-bit write per hit.

    The midpoint between FIFO (free hits, no recency) and LRU (full recency,
    three EPC list operations per hit): a hit sets one bit, and the victim
    scan gives referenced entries a second chance.  Included as an extension
    ablation — the paper compares only FIFO and LRU.
    """

    name = "clock"
    hit_metadata_ops = 1

    def __init__(self) -> None:
        self._ring: deque[Key] = deque()
        self._referenced: dict[Key, bool] = {}

    def on_insert(self, key: Key) -> None:
        if key in self._referenced:
            raise AriaError(f"duplicate insert of {key!r}")
        self._ring.append(key)
        self._referenced[key] = False

    def on_hit(self, key: Key) -> None:
        self._referenced[key] = True

    def on_remove(self, key: Key) -> None:
        self._referenced.pop(key, None)
        # Stale ring entries are skipped lazily during victim scans.

    def victim(self, locked: Iterable[Key]) -> Optional[Key]:
        locked_set = set(locked)
        # Bound the scan: each live entry is visited at most twice (once to
        # clear its bit, once to claim it).
        for _ in range(2 * len(self._ring) + 1):
            if not self._ring:
                return None
            key = self._ring.popleft()
            if key not in self._referenced:
                continue  # lazily removed
            if key in locked_set:
                self._ring.append(key)
                continue
            if self._referenced[key]:
                self._referenced[key] = False
                self._ring.append(key)
                continue
            return key
        return None

    def __len__(self) -> int:
        return len(self._referenced)


class TenantPartition:
    """Per-tenant occupancy bookkeeping for a partitioned Secure Cache.

    The multi-tenant front door (ARCHITECTURE §16) turns cache occupancy
    into a per-principal resource: each tenant with a quota is guaranteed
    ``max(1, int(max_entries * fraction))`` entries that *other* tenants'
    misses cannot evict.  The mechanism is deliberately thin — the
    partition does not choose victims, it computes the set of **protected
    keys** that gets unioned into the eviction policy's ``locked`` set, so
    every policy (FIFO/LRU/CLOCK) honors quotas without knowing they
    exist.

    Ownership is attributed per insert: the entry belongs to whichever
    tenant's operation caused it to be cached (``current_owner``, set by
    the store before each op).  Anonymous inserts (owner ``None``) are
    never protected.  A tenant *over* its quota is fair game for everyone
    — the guarantee is a floor, not a fence, so idle capacity still flows
    to whoever is hot.
    """

    def __init__(self, quotas: dict, max_entries: int):
        self._quota_entries = {
            owner: max(1, int(max_entries * fraction))
            for owner, fraction in quotas.items()
        }
        self._owner_of: dict = {}
        self._owner_keys: dict = {}
        self.current_owner: "str | None" = None

    def quota_entries(self, owner: str) -> Optional[int]:
        return self._quota_entries.get(owner)

    def retarget(self, quotas: dict, max_entries: int) -> None:
        """Adopt a new quota map live (roster/topology re-partitioning).

        Only the guaranteed-floor table is rebuilt; ownership attribution
        (``_owner_of``/``_owner_keys``) survives, so entries cached under
        the old roster keep their owners — a departed tenant's entries
        simply lose their floor and become ordinary eviction candidates.
        """
        self._quota_entries = {
            owner: max(1, int(max_entries * fraction))
            for owner, fraction in quotas.items()
        }

    @property
    def quotas(self) -> dict:
        """Owner token -> guaranteed entry count (a copy)."""
        return dict(self._quota_entries)

    def on_insert(self, key: Key) -> None:
        owner = self.current_owner
        if owner is None:
            return
        self._owner_of[key] = owner
        self._owner_keys.setdefault(owner, set()).add(key)

    def on_remove(self, key: Key) -> None:
        owner = self._owner_of.pop(key, None)
        if owner is not None:
            self._owner_keys[owner].discard(key)

    def occupancy(self) -> dict:
        """Live entry count per owner token (empty owners omitted)."""
        return {owner: len(keys)
                for owner, keys in self._owner_keys.items() if keys}

    def protected_keys(self) -> set:
        """Keys the *current* owner's eviction pressure must not touch.

        A tenant's entries are protected while it holds no more than its
        quota; its own evictions are never blocked by its own quota (a
        tenant may always churn its own slice).
        """
        current = self.current_owner
        protected: set = set()
        for owner, quota in self._quota_entries.items():
            if owner == current:
                continue
            keys = self._owner_keys.get(owner)
            if keys and len(keys) <= quota:
                protected |= keys
        return protected


_POLICIES = {"fifo": FifoPolicy, "lru": LruPolicy, "clock": ClockPolicy}


def make_policy(name: str) -> EvictionPolicy:
    try:
        return _POLICIES[name]()
    except KeyError:
        raise AriaError(
            f"unknown eviction policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
