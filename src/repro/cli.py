"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``      — a guided tour: store, ops, attack detection.
* ``workload``  — one measured run of a configurable workload/scheme.
* ``bench``     — regenerate the paper's tables/figures.
* ``attack``    — stage every threat-model attack and report detection.
* ``inspect``   — show how a store would be sized at a given scale.
* ``serve``     — run the sharded cluster's asyncio TCP server.
* ``shard-host``— run one shard-host process for the socket backend.
* ``reconfig``  — rehearse a live shard add/remove under zipf traffic.
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import AriaConfig, AriaStore
    from repro.sgx.costs import SgxPlatform

    store = AriaStore(
        AriaConfig(index=args.index, initial_counters=4096,
                   secure_cache_bytes=256 * 1024, n_buckets=512),
        platform=SgxPlatform(epc_bytes=2 << 20),
    )
    store.put(b"hello", b"world")
    print("put hello -> world")
    print("get hello ->", store.get(b"hello").decode())
    print("cache stats:", store.cache_stats())
    print("EPC usage:", dict(store.epc_report()))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.bench.harness import (
        SCHEME_BUILDERS,
        load_and_run,
        scaled_platform,
    )
    from repro.bench.report import format_ops
    from repro.workloads.etc import EtcWorkload
    from repro.workloads.ycsb import YcsbWorkload

    if args.scheme not in SCHEME_BUILDERS:
        print(f"unknown scheme {args.scheme!r}; choose from "
              f"{sorted(SCHEME_BUILDERS)}", file=sys.stderr)
        return 1
    platform = scaled_platform(args.scale)
    store = SCHEME_BUILDERS[args.scheme](n_keys=args.keys, platform=platform)
    if args.workload == "etc":
        workload = EtcWorkload(n_keys=args.keys, read_ratio=args.read_ratio,
                               seed=args.seed)
    else:
        workload = YcsbWorkload(
            n_keys=args.keys, read_ratio=args.read_ratio,
            value_size=args.value_size, distribution=args.workload,
            skew=args.skew, seed=args.seed,
        )
    started = time.time()
    run = load_and_run(store, workload, args.ops, scheme=args.scheme)
    wall = time.time() - started
    print(f"scheme        {args.scheme}")
    print(f"workload      {args.workload} rd={args.read_ratio} "
          f"keys={args.keys} ops={args.ops}")
    print(f"throughput    {format_ops(run.throughput)} ops/s (simulated)")
    print(f"cycles/op     {run.cycles_per_op:,.0f}")
    if run.hit_ratio is not None:
        print(f"hit ratio     {run.hit_ratio:.1%}")
    interesting = {k: v for k, v in sorted(run.events.items())
                   if v and k in ("page_swap", "ecall", "ocall", "mt_verify",
                                  "cache_hit", "cache_miss", "cache_evict")}
    print(f"events        {interesting}")
    print(f"wall clock    {wall:.1f}s")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.experiments import ALL_EXPERIMENTS

    names = list(ALL_EXPERIMENTS) if args.all else args.experiments
    if not names:
        print("nothing to run; pass experiment names or --all\n"
              f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 1
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 1
    for name in names:
        started = time.time()
        result = ALL_EXPERIMENTS[name]()
        print()
        print(result.render())
        print(f"[{name}: {time.time() - started:.1f}s]")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro import AriaConfig, AriaStore
    from repro.attacks import (
        replay_stale_record,
        snoop_learns_only_ciphertext,
        swap_slot_pointers,
        tamper_merkle_node,
        tamper_record_body,
        unauthorized_delete,
    )
    from repro.sgx.costs import SgxPlatform

    def fresh():
        store = AriaStore(
            AriaConfig(index="hash", n_buckets=64, initial_counters=2048,
                       secure_cache_bytes=64 * 1024, pin_levels=1,
                       stop_swap_enabled=False),
            platform=SgxPlatform(epc_bytes=2 << 20),
        )
        for i in range(200):
            store.put(f"key-{i:04d}".encode(), f"value-{i}".encode())
        return store

    scenarios = [
        ("tamper-record", lambda s: tamper_record_body(s, b"key-0042")),
        ("replay-record", lambda s: replay_stale_record(s, b"key-0042",
                                                        b"value-X!")),
        ("swap-pointers", lambda s: swap_slot_pointers(s, b"key-0001",
                                                       b"key-0002")),
        ("unauthorized-delete", lambda s: unauthorized_delete(s, b"key-0007")),
        ("tamper-merkle", lambda s: tamper_merkle_node(s, counter_id=1500)),
    ]
    failures = 0
    for name, scenario in scenarios:
        outcome = scenario(fresh())
        mark = "DETECTED" if outcome.detected else "MISSED!"
        failures += 0 if outcome.detected else 1
        print(f"{name:<22} {mark}")
    confidential = snoop_learns_only_ciphertext(fresh(), b"key-0042",
                                                b"value-42")
    print(f"{'snoop-ciphertext':<22} "
          f"{'CONFIDENTIAL' if confidential else 'LEAKED!'}")
    failures += 0 if confidential else 1
    return 1 if failures else 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.bench.harness import (
        aria_buckets,
        aria_cache_budget,
        auto_pin_levels,
        scaled_platform,
    )
    from repro.merkle.layout import MerkleLayout

    platform = scaled_platform(args.scale)
    n_counters = int(args.keys * 1.05) + 8
    layout = MerkleLayout(n_counters=n_counters, arity=args.arity)
    pin = auto_pin_levels(layout, platform.epc_bytes)
    buckets = aria_buckets(args.keys, platform)
    budget = aria_cache_budget(platform, n_keys=args.keys, arity=args.arity,
                               pin_levels=pin, n_buckets=buckets)
    print(f"scale               1/{args.scale}")
    print(f"EPC                 {platform.epc_bytes:,} B")
    print(f"keys                {args.keys:,} "
          f"({n_counters:,} counters)")
    print(f"merkle levels       {layout.n_levels} "
          f"(node {layout.node_size} B, arity {args.arity})")
    print("level sizes         "
          + ", ".join(f"L{i}={s:,}B" for i, s in
                      enumerate(layout.level_sizes())))
    print(f"auto-pinned levels  top {pin} "
          f"({layout.pinned_bytes(pin):,} B)")
    print(f"hash buckets        {buckets:,}")
    print(f"secure cache        {budget:,} B "
          f"(~{budget // (layout.node_size + 16):,} nodes)")
    return 0


def _parse_tenants(spec: str, require_auth: bool):
    """``--tenants`` parser: ``id[:rate[:burst[:cache_quota]]]``, commas.

    Example: ``--tenants acme:200:50:0.4,blue,carol::0.2`` — acme is
    rate-limited to 200 req/s (burst 50) with 40 % of each Secure Cache
    guaranteed; blue has no limits; carol gets a 20 % cache quota only.
    """
    from repro.cluster import TenancyConfig, TenantConfig

    tenants = []
    for entry in spec.split(","):
        parts = entry.strip().split(":")
        if not parts[0]:
            raise ValueError(f"empty tenant id in {entry!r}")
        rate = float(parts[1]) if len(parts) > 1 and parts[1] else None
        burst = float(parts[2]) if len(parts) > 2 and parts[2] else rate
        quota = float(parts[3]) if len(parts) > 3 and parts[3] else None
        tenants.append(TenantConfig(parts[0], rate=rate,
                                    burst=burst if rate is not None else None,
                                    cache_quota=quota))
    return TenancyConfig(tenants=tuple(tenants), require_auth=require_auth)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster import (
        ClusterConfig,
        ClusterNetServer,
        DurabilityConfig,
        HotShardBalancer,
        SessionManager,
    )

    if args.shards < 1:
        print("--shards must be at least 1", file=sys.stderr)
        return 1
    if args.replication < 1:
        print("--replication must be at least 1", file=sys.stderr)
        return 1
    if args.shard_workers is not None and args.shard_workers < 1:
        print("--shard-workers must be at least 1", file=sys.stderr)
        return 1
    if args.max_inflight is not None and args.max_inflight < 1:
        print("--max-inflight must be at least 1", file=sys.stderr)
        return 1
    if args.max_connections is not None and args.max_connections < 1:
        print("--max-connections must be at least 1", file=sys.stderr)
        return 1
    if args.durable and not args.data_dir:
        print("--durable needs --data-dir (where the sealed snapshot/log "
              "files live)", file=sys.stderr)
        return 2
    if (args.shard_hosts or args.shard_measurements) \
            and args.backend != "socket":
        print("--shard-hosts/--shard-measurements need --backend socket",
              file=sys.stderr)
        return 2
    backend = args.backend
    if args.backend == "socket" and (args.shard_hosts
                                     or args.shard_measurements):
        from repro.cluster import SocketBackend

        backend = SocketBackend(hosts=args.shard_hosts,
                                expected_measurements=args.shard_measurements,
                                seed=args.seed)
    from repro.errors import (
        ClusterConnectionError,
        ClusterTimeoutError,
        ConfigurationError,
        DurabilityError,
        HandshakeError,
    )

    tenancy = None
    if args.tenants:
        try:
            tenancy = _parse_tenants(args.tenants, args.require_tenant_auth)
        except (ConfigurationError, ValueError) as exc:
            print(f"bad --tenants spec: {exc}", file=sys.stderr)
            return 2
    durability = None
    if args.durable:
        durability = DurabilityConfig(data_dir=args.data_dir,
                                      epoch_every=args.epoch_every)
    config = ClusterConfig.from_env(
        n_shards=args.shards,
        n_keys=args.keys,
        scale=args.scale,
        index=args.index,
        vnodes=args.vnodes,
        batch_window=args.batch_window,
        seed=args.seed,
        backend=backend,
        workers=args.shard_workers,
        replication=args.replication,
        durability=durability,
        tenancy=tenancy,
    )
    try:
        coordinator = config.build()
    except (HandshakeError, ClusterConnectionError,
            ClusterTimeoutError, DurabilityError) as exc:
        # A shard host that is down/mis-attested, or a rollback detection
        # on startup, is a refusal to serve — not a crash: surface it.
        print(f"refusing to serve: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 3
    restored = getattr(coordinator, "durability_restored", {})
    if args.balance:
        coordinator.attach_balancer(HotShardBalancer(coordinator))
    overloaded_door = (args.max_inflight is not None
                       or args.max_connections is not None)
    if overloaded_door:
        # A capped front door also arms the coordinator's overload layer
        # (per-shard breakers, deadline shedding, auto-brownout).
        coordinator.enable_overload()
    if args.insecure and args.require_encryption:
        print("error: --insecure and --require-encryption are mutually "
              "exclusive")
        return 2
    if args.insecure:
        security = "plaintext"
    elif args.require_encryption:
        security = "required"
    else:
        security = "optional"
    sessions = None
    if tenancy is not None and security != "plaintext":
        # The gateway authenticates tenant claims against the roster.
        sessions = SessionManager(registry=coordinator.tenancy.registry,
                                  require_tenant=tenancy.require_auth)
    server = ClusterNetServer(coordinator, host=args.host, port=args.port,
                              max_requests=args.max_requests,
                              security=security,
                              sessions=sessions,
                              max_inflight=args.max_inflight,
                              max_connections=args.max_connections)

    async def run() -> None:
        host, port = await server.start()
        from repro.cluster.shard import resolve_workers

        print(f"cluster listening on {host}:{port} "
              f"({args.shards} shards, backend {args.backend}, "
              f"{resolve_workers(args.shard_workers)} worker(s)/shard, "
              f"balancer {'on' if args.balance else 'off'}, wire security "
              f"{security})")
        if args.durable:
            print(f"  durable: data dir {args.data_dir}, replication "
                  f"{args.replication}, epoch every {args.epoch_every} "
                  "commits")
            for shard_id in sorted(restored):
                state = restored[shard_id]
                print(f"  {shard_id}: restored {len(state.pairs)} keys "
                      f"(epoch {state.epoch}, {state.batches_replayed} "
                      "batches replayed)")
        if overloaded_door:
            print("  overload: max in-flight "
                  f"{args.max_inflight if args.max_inflight else 'unlimited'}"
                  ", max connections "
                  f"{args.max_connections if args.max_connections else 'unlimited'}"  # noqa: E501
                  ", per-shard breakers armed")
        if server.sessions is not None:
            print(f"  gateway measurement {server.sessions.measurement.hex()}")
        if tenancy is not None:
            roster = ", ".join(t.tenant_id for t in tenancy.tenants)
            print(f"  tenants: {roster} (auth "
                  f"{'required' if tenancy.require_auth else 'optional'})")
        for shard in coordinator.shard_list():
            line = f"  {shard.shard_id}: EPC {shard.epc_bytes:,} B"
            replicas = getattr(shard, "replicas", None)
            if replicas:  # a replica group fronts its enclaves
                line += f", {len(replicas)} replica(s)"
            config = getattr(shard.store, "config", None)
            if config is not None:
                line += f", {config.n_buckets:,} buckets"
            print(line)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - ^C path
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    try:
        report = coordinator.stats().report()["shards"]
        print(f"served {server.requests_served} requests "
              f"in {server.frames_served} frames")
        if overloaded_door:
            shed = server.wire_stats()["overload"]
            print(f"  overload: shed {shed['requests_shed']} requests "
                  f"({shed['frames_shed']} frames), peak in-flight "
                  f"{shed['max_inflight_seen']}, "
                  f"{shed['connections_refused']} connections refused")
        if server.sessions is not None:
            gateway = server.wire_stats()["gateway"]
            print(f"  wire: {gateway['handshakes']} handshakes, "
                  f"{gateway['cycles']:,.0f} gateway cycles "
                  f"({gateway['cipher']})")
        for shard_id in sorted(report):
            row = report[shard_id]
            print(f"  {shard_id}: {row['keys']} keys, "
                  f"{row['ops_executed']} ops, "
                  f"hit ratio {row['cache_hit_ratio']:.1%}")
    finally:
        # Joins/terminates process-backed shard workers; inline no-op.
        coordinator.close()
    return 0


def _cmd_reconfig(args: argparse.Namespace) -> int:
    """Rehearse a live topology change: plan, execute under traffic, verify.

    Builds a cluster with EPC headroom, loads it, then runs the full
    elastic cycle — plan through the constraint models, migrate in
    bounded batches interleaved with zipfian serving traffic, cut over,
    retire — and (with ``--and-remove``) shrinks back, verifying zero
    acked-write loss at the end.  The operator-facing dry run for
    ARCHITECTURE §17.
    """
    from repro.cluster import ClusterConfig
    from repro.errors import AriaError, PlanRejectedError
    from repro.server import protocol
    from repro.workloads.ycsb import YcsbWorkload

    config = ClusterConfig.from_env(
        n_shards=args.shards,
        n_keys=args.keys,
        scale=args.scale,
        seed=args.seed,
        backend=args.backend,
        max_shards=max(args.shards + 1, args.max_shards or 0),
    )
    coordinator = config.build()
    engine = coordinator.elastic
    try:
        workload = YcsbWorkload(n_keys=args.keys, read_ratio=0.5,
                                distribution="zipfian", skew=0.99,
                                seed=args.seed)
        coordinator.load(workload.load_items())
        ops = iter(workload.operations(10_000_000))
        acked = {}

        def drive_until_idle(label: str) -> int:
            batches = 0
            while engine.active:
                batch = []
                for _ in range(64):
                    op = next(ops)
                    if op.kind == "get":
                        batch.append(protocol.get(op.key))
                    else:
                        batch.append(protocol.put(op.key, op.value))
                responses = coordinator.execute(batch)
                for request, response in zip(batch, responses):
                    if request.opcode == protocol.OpCode.PUT \
                            and response.status == protocol.Status.OK:
                        acked[request.key] = request.value
                batches += 1
            print(f"  {label}: drained in {batches} batches under traffic")
            return batches

        print(f"cluster: {args.shards} shards, backend "
              f"{args.backend or 'inline'}, {args.keys} keys")
        try:
            plan = engine.add_shard()
        except PlanRejectedError as exc:
            print(f"plan rejected [{exc.constraint}]: {exc}",
                  file=sys.stderr)
            return 3
        print(plan.describe())
        drive_until_idle("add")
        if args.and_remove:
            new_id = plan.delta.add_shards[0]
            plan = engine.remove_shard(new_id)
            print(plan.describe())
            drive_until_idle("remove")
        lost = 0
        for key, value in acked.items():
            try:
                if coordinator.get(key) != value:
                    lost += 1
            except AriaError:
                lost += 1
        stats = engine.stats()
        print(f"migrations: {stats['migrations_completed']} completed, "
              f"{stats['migrations_aborted']} aborted; "
              f"{stats['keys_migrated']} keys migrated, "
              f"{stats['dual_applied']} writes dual-applied")
        print(f"acked writes verified: {len(acked)}, lost: {lost}")
        return 1 if lost else 0
    finally:
        coordinator.close()


def _cmd_shard_host(args: argparse.Namespace) -> int:
    from repro.cluster import run_shard_host

    if args.max_conns is not None and args.max_conns < 1:
        print("--max-conns must be at least 1", file=sys.stderr)
        return 1
    try:
        run_shard_host(host=args.host, port=args.port, seed=args.seed,
                       crypto=args.crypto, max_conns=args.max_conns)
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Aria (ICDE 2021) reproduction: secure in-memory KV "
                    "store on a simulated SGX enclave",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="guided store demo")
    demo.add_argument("--index", default="hash",
                      choices=["hash", "btree", "bplustree"])
    demo.set_defaults(func=_cmd_demo)

    workload = sub.add_parser("workload", help="one measured workload run")
    workload.add_argument("--scheme", default="aria")
    workload.add_argument("--workload", default="zipfian",
                          choices=["zipfian", "scrambled", "uniform", "etc"])
    workload.add_argument("--keys", type=int, default=20_000)
    workload.add_argument("--ops", type=int, default=10_000)
    workload.add_argument("--read-ratio", type=float, default=0.95)
    workload.add_argument("--value-size", type=int, default=16)
    workload.add_argument("--skew", type=float, default=0.99)
    workload.add_argument("--scale", type=int, default=512)
    workload.add_argument("--seed", type=int, default=0)
    workload.set_defaults(func=_cmd_workload)

    bench = sub.add_parser("bench", help="regenerate paper tables/figures")
    bench.add_argument("experiments", nargs="*")
    bench.add_argument("--all", action="store_true")
    bench.set_defaults(func=_cmd_bench)

    attack = sub.add_parser("attack", help="stage the threat-model attacks")
    attack.set_defaults(func=_cmd_attack)

    serve = sub.add_parser("serve", help="run the sharded cluster TCP "
                                         "server (asyncio)")
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--port", type=int, default=7433,
                       help="0 picks an ephemeral port")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--keys", type=int, default=20_000,
                       help="cluster-wide keyspace the shards are sized for")
    serve.add_argument("--scale", type=int, default=512,
                       help="EPC scale divisor (as in the bench harness)")
    serve.add_argument("--index", default="hash",
                       choices=["hash", "btree", "bplustree"])
    serve.add_argument("--vnodes", type=int, default=128)
    serve.add_argument("--batch-window", type=int, default=32)
    serve.add_argument("--shard-workers", type=int, default=None,
                       help="simulated enclave worker threads per shard: "
                       "batches run the Aria-style reserve/execute/commit "
                       "pipeline (deterministic, bit-identical responses "
                       "and cycles at any count); default 1, or "
                       "ARIA_SHARD_WORKERS")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--backend", default="inline",
                       choices=["inline", "process", "socket"],
                       help="where shard enclaves run: in this process "
                            "(inline), one OS process each (process), or "
                            "in shard-host processes over attested TCP "
                            "(socket)")
    serve.add_argument("--shard-hosts", default=None,
                       help="socket backend only: comma-separated "
                            "host:port list of running shard-hosts "
                            "(default: spawn local hosts)")
    serve.add_argument("--shard-measurements", default=None,
                       help="socket backend only: comma-separated hex "
                            "measurements the shard-hosts must attest to "
                            "(default: trust on first use)")
    serve.add_argument("--no-balance", dest="balance", action="store_false",
                       help="disable the hot-shard balancer")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="stop after serving this many request frames "
                            "(default: serve until interrupted)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="admission cap: request frames executing or "
                            "queued at once — excess is shed with "
                            "STATUS_OVERLOADED + retry_after; also arms "
                            "the coordinator's per-shard circuit breakers")
    serve.add_argument("--max-connections", type=int, default=None,
                       help="refuse TCP connections beyond this count "
                            "(closed without reply)")
    serve.add_argument("--insecure", action="store_true",
                       help="v1 plaintext only: refuse encrypted-session "
                            "handshakes (prices the unprotected baseline)")
    serve.add_argument("--durable", action="store_true",
                       help="rollback-protected sealed persistence: group-"
                            "commit every acked write to a sealed WAL and "
                            "recover partitions across restarts")
    serve.add_argument("--data-dir", default=None,
                       help="directory for the sealed snapshot/log files "
                            "and the monotonic counter store (required "
                            "with --durable)")
    serve.add_argument("--replication", type=int, default=1,
                       help="replicas per partition (replica groups even "
                            "at 1, which durable mode requires)")
    serve.add_argument("--epoch-every", type=int, default=32,
                       help="group commits between monotonic-counter "
                            "bindings (lower = smaller offline rollback "
                            "window, higher amortized counter cost)")
    serve.add_argument("--require-encryption", action="store_true",
                       help="v2 sessions only: reject plaintext frames "
                            "(default policy accepts both)")
    serve.add_argument("--tenants", default=None,
                       help="arm the multi-tenant front door: comma-"
                            "separated id[:rate[:burst[:cache_quota]]] "
                            "specs — per-tenant token-bucket admission, "
                            "disjoint key namespaces, and Secure-Cache "
                            "occupancy quotas (e.g. "
                            "'acme:200:50:0.4,blue')")
    serve.add_argument("--require-tenant-auth", action="store_true",
                       help="with --tenants: refuse v2 handshakes that "
                            "carry no authenticated tenant block")
    serve.set_defaults(func=_cmd_serve)

    reconfig = sub.add_parser(
        "reconfig",
        help="rehearse a live elastic topology change: plan through the "
             "constraint models, add (and optionally remove) a shard "
             "under zipfian traffic, verify zero acked-write loss")
    reconfig.add_argument("--shards", type=int, default=4)
    reconfig.add_argument("--max-shards", type=int, default=None,
                          help="EPC headroom the planner budgets for "
                               "(default: shards + 1)")
    reconfig.add_argument("--keys", type=int, default=5_000)
    reconfig.add_argument("--scale", type=int, default=512)
    reconfig.add_argument("--seed", type=int, default=0)
    reconfig.add_argument("--backend", default=None,
                          choices=["inline", "process", "socket"])
    reconfig.add_argument("--and-remove", action="store_true",
                          help="after the add completes, remove the new "
                               "shard again (the full 4->5->4 cycle)")
    reconfig.set_defaults(func=_cmd_reconfig)

    shard_host = sub.add_parser(
        "shard-host",
        help="run one shard-host process (socket backend): serves shard "
             "enclaves over attested, encrypted TCP sessions")
    shard_host.add_argument("--host", default="127.0.0.1")
    shard_host.add_argument("--port", type=int, default=0,
                            help="0 picks an ephemeral port (printed)")
    shard_host.add_argument("--seed", type=int, default=0,
                            help="derives the host's key material, hence "
                                 "the measurement coordinators pin")
    shard_host.add_argument("--crypto", default="fast",
                            choices=["fast", "real"])
    shard_host.add_argument("--max-conns", type=int, default=None,
                            help="stop after serving this many connections "
                                 "(default: serve until interrupted)")
    shard_host.set_defaults(func=_cmd_shard_host)

    inspect = sub.add_parser("inspect", help="show store sizing at a scale")
    inspect.add_argument("--keys", type=int, default=20_000)
    inspect.add_argument("--scale", type=int, default=512)
    inspect.add_argument("--arity", type=int, default=8)
    inspect.set_defaults(func=_cmd_inspect)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
