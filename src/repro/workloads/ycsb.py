"""YCSB-style workloads (paper Section VI-A).

The paper's microbenchmark grid: 16-byte keys, a 10-million keyspace, three
read ratios (RD 50 / RD 95 / RD 100), three value sizes (16 / 128 / 512
bytes), and two distributions (uniform, zipfian theta = 0.99).  Fig 2 also
uses a 50 % read ratio with 16-byte values, and Fig 16b sweeps the skewness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.workloads.zipf import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)

KEY_SIZE = 16


def make_key(index: int) -> bytes:
    """A fixed 16-byte key, YCSB's ``user<digits>`` style."""
    return b"u%015d" % index


@dataclass(frozen=True)
class Operation:
    """One workload operation: kind is 'get' or 'put'."""

    kind: str
    key: bytes
    value: bytes = b""


@dataclass
class YcsbWorkload:
    """A reproducible YCSB operation stream.

    ``read_ratio`` is the Get fraction (0.0-1.0); ``distribution`` is
    ``"zipfian"`` or ``"uniform"``; ``skew`` is the zipfian theta.
    """

    n_keys: int
    read_ratio: float = 0.95
    value_size: int = 16
    #: "zipfian" (rank i = key i, hot keys contiguous — matching the locality
    #: the paper's Fig 2/9 results imply), "scrambled" (YCSB's FNV-scattered
    #: variant), or "uniform".
    distribution: str = "zipfian"
    skew: float = 0.99
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if self.distribution not in ("zipfian", "scrambled", "uniform"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        self._rng = random.Random(self.seed)

    def _chooser(self):
        if self.distribution == "zipfian":
            return ZipfianGenerator(self.n_keys, self.skew, self._rng)
        if self.distribution == "scrambled":
            return ScrambledZipfianGenerator(self.n_keys, self.skew, self._rng)
        return UniformGenerator(self.n_keys, self._rng)

    def load_items(self) -> Iterator[tuple[bytes, bytes]]:
        """The initial dataset: every key, with a value of ``value_size``."""
        for i in range(self.n_keys):
            yield make_key(i), self._value_for(i)

    def _value_for(self, index: int) -> bytes:
        # Deterministic, compressible-free filler derived from the index.
        pattern = b"%08x" % (index & 0xFFFFFFFF)
        reps = -(-self.value_size // len(pattern))
        return (pattern * reps)[: self.value_size]

    def operations(self, n_ops: int) -> Iterator[Operation]:
        """The run-phase stream: reads and writes per ``read_ratio``."""
        chooser = self._chooser()
        for _ in range(n_ops):
            index = chooser.next()
            key = make_key(index)
            if self._rng.random() < self.read_ratio:
                yield Operation("get", key)
            else:
                yield Operation("put", key, self._value_for(index))
