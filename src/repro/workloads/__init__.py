"""Workload generators: YCSB (uniform / zipfian), Facebook ETC, traces."""

from repro.workloads.etc import EtcWorkload
from repro.workloads.trace import (
    DriftingWorkload,
    TraceFormatError,
    TraceWorkload,
    read_trace,
    record_to_bytes,
    replay_from_bytes,
    write_trace,
)
from repro.workloads.ycsb import KEY_SIZE, Operation, YcsbWorkload, make_key
from repro.workloads.zipf import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
    zeta,
)

__all__ = [
    "KEY_SIZE",
    "DriftingWorkload",
    "EtcWorkload",
    "Operation",
    "TraceFormatError",
    "TraceWorkload",
    "read_trace",
    "record_to_bytes",
    "replay_from_bytes",
    "write_trace",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "YcsbWorkload",
    "ZipfianGenerator",
    "fnv1a_64",
    "make_key",
    "zeta",
]
