"""Zipfian key choosers — YCSB's exact algorithms, reimplemented.

The paper's skewed workloads use YCSB's default zipfian distribution
(skewness theta = 0.99) and its sensitivity study sweeps theta up to 1.2
(Fig 16b), citing recent trace studies that observe skew > 1.

Two generators, matching YCSB semantics:

* :class:`ZipfianGenerator` — rank-ordered: item 0 is the hottest.  Uses the
  Gray et al. rejection-free inverse-CDF method YCSB implements.
* :class:`ScrambledZipfianGenerator` — the rank sequence pushed through an
  FNV-1a hash so hot items are spread across the keyspace, which is what
  YCSB actually feeds to stores (hot keys should not be adjacent).
"""

from __future__ import annotations

import random


def zeta(n: int, theta: float) -> float:
    """The generalized harmonic number sum_{i=1..n} 1/i^theta."""
    return sum(1.0 / (i ** theta) for i in range(1, n + 1))


class ZipfianGenerator:
    """Draws ranks in [0, n) with P(rank i) proportional to 1/(i+1)^theta."""

    def __init__(self, n_items: int, theta: float = 0.99,
                 rng: random.Random = None):
        if n_items < 1:
            raise ValueError("need at least one item")
        if theta <= 0 or theta == 1.0:
            raise ValueError("theta must be positive and != 1")
        self._n = n_items
        self._theta = theta
        self._rng = rng or random.Random()
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = zeta(n_items, theta)
        self._zeta2 = zeta(2, theta) if n_items >= 2 else self._zetan
        self._eta = (1.0 - (2.0 / n_items) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        ) if n_items >= 2 else 0.0

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if self._n >= 2 and uz < 1.0 + 0.5 ** self._theta:
            return 1
        return int(self._n * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def __iter__(self):
        while True:
            yield self.next()


_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's hash)."""
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class ScrambledZipfianGenerator:
    """Zipfian ranks scattered over the keyspace via FNV-1a (YCSB default)."""

    def __init__(self, n_items: int, theta: float = 0.99,
                 rng: random.Random = None):
        self._n = n_items
        self._zipf = ZipfianGenerator(n_items, theta, rng)

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self._n

    def __iter__(self):
        while True:
            yield self.next()


class UniformGenerator:
    """Uniform key chooser — the paper's skew-free comparison point."""

    def __init__(self, n_items: int, rng: random.Random = None):
        if n_items < 1:
            raise ValueError("need at least one item")
        self._n = n_items
        self._rng = rng or random.Random()

    def next(self) -> int:
        return self._rng.randrange(self._n)

    def __iter__(self):
        while True:
            yield self.next()
