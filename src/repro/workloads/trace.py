"""Trace recording, replay, and hotset-drift generation (extension).

Two pieces of realistic KV-store tooling beyond the paper's generators:

* **Trace files** — any operation stream can be recorded to a compact
  binary format and replayed later, so an experiment can be pinned to an
  exact byte-identical request sequence (or an externally produced trace
  can be imported).

* **Hotset drift** — the paper cites Bodik et al.'s workload-spike study
  [42] but evaluates stationary distributions only.  `DriftingWorkload`
  moves the zipfian hot set across the keyspace at a configurable period,
  which stresses exactly what a FIFO'd Secure Cache must handle: the cached
  hot nodes turning cold in place.

Trace frame format (little-endian)::

    header := magic "ATRC" | version (1) | reserved (3)
    op     := kind (1: 0=get, 1=put) | k_len (2) | v_len (4) | key | value
"""

from __future__ import annotations

import io
import random
import struct
from dataclasses import dataclass, field
from typing import BinaryIO, Iterable, Iterator

from repro.workloads.ycsb import Operation, make_key
from repro.workloads.zipf import ZipfianGenerator

_MAGIC = b"ATRC"
_VERSION = 1
_HEADER = struct.Struct("<4sB3x")
_OP = struct.Struct("<BHI")

_KIND_TO_CODE = {"get": 0, "put": 1}
_CODE_TO_KIND = {0: "get", 1: "put"}


class TraceFormatError(ValueError):
    """A malformed trace file."""


def write_trace(stream: BinaryIO, operations: Iterable[Operation]) -> int:
    """Serialize an operation stream; returns the number of ops written."""
    stream.write(_HEADER.pack(_MAGIC, _VERSION))
    count = 0
    for op in operations:
        if op.kind not in _KIND_TO_CODE:
            raise TraceFormatError(f"cannot record op kind {op.kind!r}")
        stream.write(_OP.pack(_KIND_TO_CODE[op.kind], len(op.key),
                              len(op.value)))
        stream.write(op.key)
        stream.write(op.value)
        count += 1
    return count


def read_trace(stream: BinaryIO) -> Iterator[Operation]:
    """Stream operations back from a trace file."""
    header = stream.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise TraceFormatError("truncated trace header")
    magic, version = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise TraceFormatError("not a trace file (bad magic)")
    if version != _VERSION:
        raise TraceFormatError(f"unsupported trace version {version}")
    while True:
        raw = stream.read(_OP.size)
        if not raw:
            return
        if len(raw) != _OP.size:
            raise TraceFormatError("truncated op header")
        code, k_len, v_len = _OP.unpack(raw)
        if code not in _CODE_TO_KIND:
            raise TraceFormatError(f"unknown op code {code}")
        body = stream.read(k_len + v_len)
        if len(body) != k_len + v_len:
            raise TraceFormatError("truncated op body")
        yield Operation(_CODE_TO_KIND[code], body[:k_len], body[k_len:])


def record_to_bytes(operations: Iterable[Operation]) -> bytes:
    buffer = io.BytesIO()
    write_trace(buffer, operations)
    return buffer.getvalue()


def replay_from_bytes(data: bytes) -> list:
    return list(read_trace(io.BytesIO(data)))


@dataclass
class TraceWorkload:
    """A workload backed by a recorded trace (load items + op stream)."""

    trace: bytes
    n_keys: int
    value_size: int = 16
    seed: int = 0  # kept for harness API parity (warmup re-seeding)

    def load_items(self) -> Iterator[tuple[bytes, bytes]]:
        for i in range(self.n_keys):
            yield make_key(i), b"\x00" * self.value_size

    def operations(self, n_ops: int) -> Iterator[Operation]:
        for i, op in enumerate(replay_from_bytes(self.trace)):
            if i >= n_ops:
                return
            yield op


@dataclass
class DriftingWorkload:
    """Zipfian traffic whose hot set rotates through the keyspace.

    Every ``drift_period`` operations the rank->key mapping shifts by
    ``drift_step`` keys (mod the keyspace), so yesterday's celebrities go
    cold and new ones appear — Bodik et al.'s spike pattern in its simplest
    form.  ``drift_period=None`` reduces to a stationary zipfian.
    """

    n_keys: int
    read_ratio: float = 0.95
    value_size: int = 16
    skew: float = 0.99
    drift_period: int = 2000
    drift_step: int = 0  # 0 -> jump by a random large offset each period
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if self.drift_period is not None and self.drift_period < 1:
            raise ValueError("drift_period must be positive")
        self._rng = random.Random(self.seed)

    def _value_for(self, index: int) -> bytes:
        pattern = b"%08x" % (index & 0xFFFFFFFF)
        reps = -(-self.value_size // len(pattern))
        return (pattern * reps)[: self.value_size]

    def load_items(self) -> Iterator[tuple[bytes, bytes]]:
        for i in range(self.n_keys):
            yield make_key(i), self._value_for(i)

    def operations(self, n_ops: int) -> Iterator[Operation]:
        zipf = ZipfianGenerator(self.n_keys, self.skew, self._rng)
        offset = 0
        for i in range(n_ops):
            if self.drift_period and i and i % self.drift_period == 0:
                if self.drift_step:
                    offset = (offset + self.drift_step) % self.n_keys
                else:
                    offset = self._rng.randrange(self.n_keys)
            index = (zipf.next() + offset) % self.n_keys
            key = make_key(index)
            if self._rng.random() < self.read_ratio:
                yield Operation("get", key)
            else:
                yield Operation("put", key, self._value_for(index))
