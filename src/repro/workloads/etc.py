"""Facebook ETC pool emulation (paper Section VI-B, after Atikoglu et al.).

The paper models the ETC Memcached pool with fixed 16-byte keys and three
value-size classes over a 10-million keyspace:

* 40 % of keys are **tiny** (1-13 byte values),
* 55 % are **small** (14-300 bytes),
* 5 % are **large** (> 300 bytes).

Requests over the tiny and small keys follow a zipfian distribution
(theta = 0.99); large keys are chosen uniformly at random.  Four read ratios
are evaluated: RD 0 / RD 50 / RD 95 / RD 100.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.workloads.ycsb import Operation, make_key
from repro.workloads.zipf import ZipfianGenerator

TINY_FRACTION = 0.40
SMALL_FRACTION = 0.55
LARGE_FRACTION = 0.05

TINY_RANGE = (1, 13)
SMALL_RANGE = (14, 300)
LARGE_RANGE = (301, 1024)

#: Fraction of requests aimed at the (zipfian) tiny+small population vs the
#: uniformly chosen large population, proportional to population size.
_LARGE_REQUEST_FRACTION = LARGE_FRACTION


@dataclass
class EtcWorkload:
    """The ETC pool: mixed value sizes, zipf over tiny+small, uniform large."""

    n_keys: int
    read_ratio: float = 0.95
    skew: float = 0.99
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if self.n_keys < 20:
            raise ValueError("ETC needs a keyspace of at least 20 keys")
        self._rng = random.Random(self.seed)
        self._n_tiny = int(self.n_keys * TINY_FRACTION)
        self._n_small = int(self.n_keys * SMALL_FRACTION)
        self._n_large = self.n_keys - self._n_tiny - self._n_small

    # -- key population -----------------------------------------------------------

    def size_class(self, index: int) -> str:
        if index < self._n_tiny:
            return "tiny"
        if index < self._n_tiny + self._n_small:
            return "small"
        return "large"

    def _value_size_for(self, index: int) -> int:
        """Deterministic per-key value size within the key's class range."""
        lo, hi = {
            "tiny": TINY_RANGE,
            "small": SMALL_RANGE,
            "large": LARGE_RANGE,
        }[self.size_class(index)]
        return lo + (index * 2654435761 % (hi - lo + 1))

    def _fill(self, index: int, size: int) -> bytes:
        pattern = b"%08x" % (index & 0xFFFFFFFF)
        reps = -(-size // len(pattern))
        return (pattern * reps)[:size]

    def _value_for(self, index: int) -> bytes:
        return self._fill(index, self._value_size_for(index))

    def _op_value(self, index: int) -> bytes:
        """A fresh value for an update: sizes vary within the key's class.

        ETC values change size over a key's lifetime, which is what makes
        in-place updates impossible and allocations frequent (the OCALL
        cost AriaBase pays in Fig 12).
        """
        lo, hi = {
            "tiny": TINY_RANGE,
            "small": SMALL_RANGE,
            "large": LARGE_RANGE,
        }[self.size_class(index)]
        return self._fill(index, self._rng.randint(lo, hi))

    def load_items(self) -> Iterator[tuple[bytes, bytes]]:
        for i in range(self.n_keys):
            yield make_key(i), self._value_for(i)

    # -- request stream -------------------------------------------------------------

    def operations(self, n_ops: int) -> Iterator[Operation]:
        zipf_population = self._n_tiny + self._n_small
        zipf = ZipfianGenerator(zipf_population, self.skew, self._rng)
        for _ in range(n_ops):
            if self._n_large and self._rng.random() < _LARGE_REQUEST_FRACTION:
                index = zipf_population + self._rng.randrange(self._n_large)
            else:
                index = zipf.next()
            key = make_key(index)
            if self._rng.random() < self.read_ratio:
                yield Operation("get", key)
            else:
                yield Operation("put", key, self._op_value(index))
