"""Merkle tree storage: continuous untrusted node arrays plus the EPC root.

:class:`MerkleTree` owns the bytes.  Verification policy (stop at the first
cached ancestor, caching, eviction) lives in
:mod:`repro.cache.secure_cache`; what lives here is everything that is true
regardless of caching:

* one continuous untrusted region per level (Fig 5's memory layout),
* the 16-byte root MAC pinned in the EPC,
* node read/write with cycle charging,
* MAC computation over a node (always done inside the enclave, so swapping a
  node in pays the untrusted->EPC copy),
* the secure initialization of Section IV-B: random counters, then MACs computed
  bottom-up inside the enclave until the root is produced.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ReplayError
from repro.merkle.layout import COUNTER_SIZE, MAC_SIZE, MerkleLayout
from repro.sgx.enclave import Enclave


class MerkleTree:
    """A flat n-ary Merkle tree in untrusted memory with its root in the EPC."""

    EPC_CONSUMER = "merkle_root"

    def __init__(
        self,
        enclave: Enclave,
        layout: MerkleLayout,
        *,
        rng: Optional[random.Random] = None,
        level_bases: Optional[list] = None,
        root_mac: Optional[bytes] = None,
    ):
        self._enclave = enclave
        self.layout = layout
        if level_bases is not None:
            # Restore path (enclave restart): adopt existing untrusted
            # regions and a sealed root — no re-initialization.  Every
            # subsequent access verifies against this root, so any tampering
            # during the downtime is caught.
            if root_mac is None or len(root_mac) != MAC_SIZE:
                raise ValueError("restoring a tree requires its root MAC")
            self._level_bases = list(level_bases)
            enclave.epc.reserve(self.EPC_CONSUMER, MAC_SIZE)
            self.root_mac = root_mac
            return
        # One continuous region per level; address arithmetic only.
        self._level_bases = [
            enclave.untrusted.alloc(layout.level_bytes(level))
            for level in range(layout.n_levels)
        ]
        enclave.epc.reserve(self.EPC_CONSUMER, MAC_SIZE)
        self.root_mac = b"\x00" * MAC_SIZE
        self._initialize(rng or random.Random(0))

    @property
    def level_bases(self) -> list:
        """Untrusted base addresses per level (for state capture)."""
        return list(self._level_bases)

    def rebuild_above_leaves(self) -> None:
        """Recompute every level above L0 from the untrusted leaf contents.

        Used when flushing for sealing: after all EPC-resident copies are
        written back, this makes the untrusted tree self-consistent and
        refreshes the root.  Runs inside the enclave.
        """
        layout = self.layout
        for level in range(1, layout.n_levels):
            for index in range(layout.nodes_at_level(level)):
                node = bytearray(layout.node_size)
                for child in layout.children_of(level, index):
                    child_mac = self.node_mac(self.read_node(level - 1, child))
                    slot = (child - index * layout.arity) * MAC_SIZE
                    node[slot : slot + MAC_SIZE] = child_mac
                self.write_node(level, index, bytes(node))
        self.root_mac = self.node_mac(self.read_node(layout.top_level, 0))

    # -- raw node access (cycle-charged) ---------------------------------------

    def node_addr(self, level: int, index: int) -> int:
        return self._level_bases[level] + index * self.layout.node_size

    def read_node(self, level: int, index: int) -> bytes:
        """Read a node's bytes from untrusted memory (charged)."""
        return self._enclave.read_untrusted(
            self.node_addr(level, index), self.layout.node_size
        )

    def write_node(self, level: int, index: int, data: bytes) -> None:
        """Write a node back to untrusted memory — in plaintext.

        Security metadata is swapped out *without encryption* (Section IV-C): its
        plaintext is meaningless to an attacker, integrity alone suffices, so
        Aria skips the encryption SGX paging would force.
        """
        if len(data) != self.layout.node_size:
            raise ValueError(
                f"node write must be {self.layout.node_size} B, got {len(data)}"
            )
        self._enclave.write_untrusted(self.node_addr(level, index), data)

    def node_mac(self, node_bytes: bytes) -> bytes:
        """MAC of a node's content, computed inside the enclave."""
        self._enclave.meter.count("mt_verify")
        return self._enclave.mac(node_bytes)

    # -- parent-slot helpers -----------------------------------------------------

    def read_parent_slot(self, level: int, index: int, parent_bytes: bytes) -> bytes:
        """Extract this node's stored MAC from its parent's bytes."""
        _, _, offset = self.layout.parent_of(level, index)
        return parent_bytes[offset : offset + MAC_SIZE]

    def check_against_root(self, top_node_bytes: bytes) -> None:
        """Verify the single top-level node against the EPC-resident root."""
        self._enclave.epc_touch(MAC_SIZE)
        computed = self.node_mac(top_node_bytes)
        if computed != self.root_mac:
            raise ReplayError(
                "Merkle root mismatch: counters in untrusted memory were "
                "replayed or modified"
            )

    def set_root(self, new_root: bytes) -> None:
        self._enclave.epc_touch(MAC_SIZE)
        self.root_mac = new_root

    # -- secure initialization (Section IV-B) -----------------------------------------

    def _initialize(self, rng: random.Random) -> None:
        """Assign random counters, then build MACs bottom-up to the root.

        Executed inside the enclave.  Experiments wrap construction in
        :class:`repro.sgx.meter.MeterPause` since the paper excludes setup
        from its throughput numbers.
        """
        layout = self.layout
        # Level 0: random initial counters (full node granularity writes).
        n_leaf = layout.nodes_at_level(0)
        for index in range(n_leaf):
            node = rng.getrandbits(layout.node_size * 8).to_bytes(
                layout.node_size, "little"
            )
            self.write_node(0, index, node)
        # Upper levels: parent holds the MAC of each child node.
        for level in range(1, layout.n_levels):
            for index in range(layout.nodes_at_level(level)):
                node = bytearray(layout.node_size)
                for child in layout.children_of(level, index):
                    child_mac = self.node_mac(self.read_node(level - 1, child))
                    slot = (child - index * layout.arity) * MAC_SIZE
                    node[slot : slot + MAC_SIZE] = child_mac
                self.write_node(level, index, bytes(node))
        self.root_mac = self.node_mac(self.read_node(layout.top_level, 0))

    # -- uncached verification (used without a Secure Cache) ---------------------

    def verify_node_uncached(self, level: int, index: int) -> bytes:
        """Verify a node against the full path to the root; returns its bytes.

        This is the worst-case O(h) verification the Secure Cache exists to
        avoid; baselines and the stop-swap mode use it with pinning instead.
        """
        node_bytes = self.read_node(level, index)
        self._verify_upward(level, index, node_bytes)
        return node_bytes

    def _verify_upward(self, level: int, index: int, node_bytes: bytes) -> None:
        if level == self.layout.top_level:
            self.check_against_root(node_bytes)
            return
        computed = self.node_mac(node_bytes)
        parent_level, parent_index, _ = self.layout.parent_of(level, index)
        parent_bytes = self.read_node(parent_level, parent_index)
        stored = self.read_parent_slot(level, index, parent_bytes)
        if computed != stored:
            raise ReplayError(
                f"Merkle node (level {level}, index {index}) failed "
                "verification: replay or tampering detected"
            )
        self._verify_upward(parent_level, parent_index, parent_bytes)

    # -- counter helpers -----------------------------------------------------------

    def counter_from_node(self, node_bytes: bytes, counter_id: int) -> bytes:
        _, offset = self.layout.counter_slot(counter_id)
        return node_bytes[offset : offset + COUNTER_SIZE]

    def store_counter_in_node(
        self, node: bytearray, counter_id: int, value: bytes
    ) -> None:
        _, offset = self.layout.counter_slot(counter_id)
        node[offset : offset + COUNTER_SIZE] = value
