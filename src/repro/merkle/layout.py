"""Flat n-ary Merkle tree layout (paper Section IV-D, Fig 5).

The tree protects the per-KV encryption counters:

* **Level 0** holds the counters themselves, packed ``arity`` per node
  (node size = ``arity * 16`` bytes — the "input length m" of Fig 5).
* **Level i > 0** holds 16-byte MACs, one per child node, again ``arity``
  per node.
* The level with a single node is the **top level**; its MAC is the root,
  which always stays in the EPC.

All levels live in *continuous* untrusted memory (one region per level), so
a node's address is pure arithmetic on its index — no pointers to chase,
which is what lets the paper claim hardware-prefetch friendliness.

Increasing ``arity`` flattens the tree (fewer verification steps) but makes
each MAC input longer and each swap-in copy bigger — the trade-off Fig 15
sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

COUNTER_SIZE = 16
MAC_SIZE = 16


@dataclass(frozen=True)
class MerkleLayout:
    """Pure geometry: node counts, sizes and parent/child arithmetic."""

    n_counters: int
    arity: int

    def __post_init__(self) -> None:
        if self.arity < 2:
            raise ConfigurationError(f"Merkle arity must be >= 2, got {self.arity}")
        if self.n_counters < 1:
            raise ConfigurationError(
                f"need at least one counter, got {self.n_counters}"
            )

    @property
    def node_size(self) -> int:
        """Bytes per node — the MAC input length m of Fig 5."""
        return self.arity * COUNTER_SIZE  # counters and MACs are both 16 B

    def nodes_at_level(self, level: int) -> int:
        """Number of nodes at ``level`` (level 0 = counter blocks)."""
        count = self.n_counters
        for _ in range(level + 1):
            count = -(-count // self.arity)  # ceil division
        return count

    @property
    def n_levels(self) -> int:
        """Number of node levels (the top level has exactly one node)."""
        levels = 0
        count = self.n_counters
        while True:
            count = -(-count // self.arity)
            levels += 1
            if count == 1:
                return levels

    @property
    def top_level(self) -> int:
        return self.n_levels - 1

    def level_bytes(self, level: int) -> int:
        """Total bytes occupied by one level's node array."""
        return self.nodes_at_level(level) * self.node_size

    def level_sizes(self) -> list[int]:
        """Bytes per level, leaf first — Section IV-E's pinning budget table."""
        return [self.level_bytes(level) for level in range(self.n_levels)]

    def total_bytes(self) -> int:
        """Total untrusted bytes for the whole tree (Section VI-D4 analysis)."""
        return sum(self.level_sizes())

    # -- address arithmetic ------------------------------------------------------

    def counter_slot(self, counter_id: int) -> tuple[int, int]:
        """Map a counter id to (leaf node index, byte offset inside node)."""
        if not 0 <= counter_id < self.n_counters:
            raise IndexError(f"counter id {counter_id} out of range")
        node, slot = divmod(counter_id, self.arity)
        return node, slot * COUNTER_SIZE

    def parent_of(self, level: int, index: int) -> tuple[int, int, int]:
        """Return (parent level, parent index, byte offset of our MAC slot)."""
        if level >= self.top_level:
            raise IndexError(f"level {level} node has no parent node (root above)")
        parent_index, slot = divmod(index, self.arity)
        return level + 1, parent_index, slot * MAC_SIZE

    def children_of(self, level: int, index: int) -> range:
        """Child node indices at ``level - 1`` covered by this node."""
        if level == 0:
            raise IndexError("level-0 nodes have counters, not child nodes")
        first = index * self.arity
        last = min(first + self.arity, self.nodes_at_level(level - 1))
        return range(first, last)

    def pinned_bytes(self, pin_levels: int) -> int:
        """EPC bytes needed to pin the top ``pin_levels`` node levels."""
        if pin_levels < 0 or pin_levels > self.n_levels:
            raise ConfigurationError(
                f"pin_levels must be in [0, {self.n_levels}], got {pin_levels}"
            )
        top = self.top_level
        return sum(self.level_bytes(top - i) for i in range(pin_levels))

    def pinned_level_set(self, pin_levels: int) -> frozenset:
        """The set of levels covered when pinning the top ``pin_levels``."""
        top = self.top_level
        return frozenset(top - i for i in range(min(pin_levels, self.n_levels)))
