"""Flat n-ary Merkle tree over per-KV encryption counters."""

from repro.merkle.layout import COUNTER_SIZE, MAC_SIZE, MerkleLayout
from repro.merkle.tree import MerkleTree

__all__ = ["COUNTER_SIZE", "MAC_SIZE", "MerkleLayout", "MerkleTree"]
