"""Baseline: the whole KV store inside the enclave (paper Fig 2's 'Baseline').

The naive port: hash table, keys and values all live in the enclave heap.
No crypto is needed — SGX hardware protects EPC contents transparently (the
MEE cost is folded into the higher EPC access latency).  The price is that
the working set is the *entire store*, so once it outgrows the EPC, secure
paging fires on nearly every access and throughput collapses — the cliff at
~24 MB keyspace in Fig 2.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.crypto.keys import KeyMaterial
from repro.errors import KeyNotFoundError
from repro.sgx.costs import PAGE_SIZE, SgxPlatform
from repro.sgx.enclave import Enclave
from repro.sgx.meter import MeterPause

_ENTRY_OVERHEAD = 8 + 2 + 2  # next pointer + length fields
_ALLOC_GRANULARITY = 64      # in-enclave malloc rounds to size classes


class EnclaveBaselineStore:
    """Chained hash table placed entirely in (paged) enclave memory."""

    name = "baseline"

    def __init__(
        self,
        *,
        n_buckets: int = 4096,
        platform: Optional[SgxPlatform] = None,
        seed: int = 0,
    ):
        platform = platform or SgxPlatform()
        heap_pages = max(1, platform.epc_bytes // PAGE_SIZE)
        self.enclave = Enclave(
            platform,
            keys=KeyMaterial.from_seed(seed),
            paged_heap_pages=heap_pages,
        )
        self._n_buckets = n_buckets
        heap = self.enclave.paged_heap
        self._bucket_base = heap.alloc(n_buckets * 8)
        # Virtual-address bookkeeping: entry contents live in a dict keyed by
        # their enclave-virtual address; paging costs come from touch().
        self._heads: dict[int, int] = {}
        self._entries: dict[int, tuple[int, bytes, bytes]] = {}
        self._n_entries = 0

    def _bucket_of(self, key: bytes) -> int:
        return self.enclave.hash_key(key) % self._n_buckets

    def _touch_head(self, bucket: int) -> int:
        self.enclave.paged_heap.touch(self._bucket_base + bucket * 8, 8)
        return self._heads.get(bucket, 0)

    def _touch_entry(self, addr: int) -> tuple[int, bytes, bytes]:
        next_addr, key, value = self._entries[addr]
        self.enclave.paged_heap.touch(
            addr, _ENTRY_OVERHEAD + len(key) + len(value)
        )
        return next_addr, key, value

    # -- public API --------------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        bucket = self._bucket_of(key)
        addr = self._touch_head(bucket)
        while addr:
            next_addr, stored_key, value = self._touch_entry(addr)
            if self.enclave.compare(stored_key, key):
                self.enclave.meter.count("op_get")
                return value
            addr = next_addr
        raise KeyNotFoundError(key)

    def put(self, key: bytes, value: bytes) -> None:
        bucket = self._bucket_of(key)
        addr = self._touch_head(bucket)
        while addr:
            next_addr, stored_key, old_value = self._touch_entry(addr)
            if self.enclave.compare(stored_key, key):
                self._entries[addr] = (next_addr, key, value)
                self.enclave.paged_heap.touch(
                    addr, _ENTRY_OVERHEAD + len(key) + len(value), write=True
                )
                self.enclave.meter.count("op_put")
                return
            addr = next_addr
        raw = _ENTRY_OVERHEAD + len(key) + len(value)
        size = -(-raw // _ALLOC_GRANULARITY) * _ALLOC_GRANULARITY
        new_addr = self.enclave.paged_heap.alloc(size)
        old_head = self._heads.get(bucket, 0)
        self._entries[new_addr] = (old_head, key, value)
        self.enclave.paged_heap.touch(new_addr, size, write=True)
        self._heads[bucket] = new_addr
        self.enclave.paged_heap.touch(self._bucket_base + bucket * 8, 8,
                                      write=True)
        self._n_entries += 1
        self.enclave.meter.count("op_put")

    def delete(self, key: bytes) -> None:
        bucket = self._bucket_of(key)
        addr = self._touch_head(bucket)
        prev = None
        while addr:
            next_addr, stored_key, _ = self._touch_entry(addr)
            if self.enclave.compare(stored_key, key):
                if prev is None:
                    self._heads[bucket] = next_addr
                else:
                    prev_next, prev_key, prev_value = self._entries[prev]
                    self._entries[prev] = (next_addr, prev_key, prev_value)
                del self._entries[addr]
                self._n_entries -= 1
                self.enclave.meter.count("op_delete")
                return
            prev = addr
            addr = next_addr
        raise KeyNotFoundError(key)

    def __len__(self) -> int:
        return self._n_entries

    def keys(self) -> Iterator[bytes]:
        for addr in list(self._entries):
            yield self._entries[addr][1]

    def load(self, pairs) -> None:
        with MeterPause(self.enclave.meter):
            for key, value in pairs:
                self.put(key, value)
        self.enclave.paged_heap.prefault()

    def cache_stats(self) -> dict:
        return {"page_swaps": self.enclave.meter.events["page_swap"]}

    def epc_report(self) -> dict:
        return self.enclave.epc.usage_report()
