"""Aria w/o SGX (Fig 12's upper bound): the same store, no protection.

A chained hash table in regular untrusted memory with no encryption, no
MACs, no enclave boundary — what Aria would cost on a machine without SGX.
The gap between this and Aria (the paper measures ~25.7 %) is the residual
protection overhead once paging and OCALLs are engineered away.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.alloc.heap import HeapAllocator
from repro.errors import KeyNotFoundError
from repro.sgx.costs import SgxPlatform
from repro.sgx.enclave import Enclave
from repro.sgx.meter import MeterPause

_PREFIX = 8 + 4 + 2 + 2  # next, hint, k_len, v_len


class PlainKvStore:
    """Unprotected hash-table KV store (no SGX, no crypto)."""

    name = "plain"

    def __init__(
        self,
        *,
        n_buckets: int = 4096,
        platform: Optional[SgxPlatform] = None,
        seed: int = 0,
    ):
        self.enclave = Enclave(platform or SgxPlatform())
        self._n_buckets = n_buckets
        self._bucket_base = self.enclave.untrusted.alloc(n_buckets * 8)
        with MeterPause(self.enclave.meter):
            self._allocator = HeapAllocator(self.enclave)
        self._n_entries = 0

    def _bucket_slot(self, key: bytes) -> tuple[int, int]:
        digest = self.enclave.hash_key(key)
        bucket = digest % self._n_buckets
        return self._bucket_base + bucket * 8, digest & 0xFFFFFFFF

    def _read_ptr(self, slot: int) -> int:
        return int.from_bytes(self.enclave.read_untrusted(slot, 8), "little")

    def _read_entry(self, addr: int):
        prefix = self.enclave.read_untrusted(addr, _PREFIX)
        next_ptr = int.from_bytes(prefix[0:8], "little")
        hint = int.from_bytes(prefix[8:12], "little")
        k_len = int.from_bytes(prefix[12:14], "little")
        v_len = int.from_bytes(prefix[14:16], "little")
        body = self.enclave.read_untrusted(addr + _PREFIX, k_len + v_len)
        return next_ptr, hint, body[:k_len], body[k_len:]

    def _entry_bytes(self, next_ptr: int, hint: int, key: bytes,
                     value: bytes) -> bytes:
        return (
            next_ptr.to_bytes(8, "little")
            + hint.to_bytes(4, "little")
            + len(key).to_bytes(2, "little")
            + len(value).to_bytes(2, "little")
            + key
            + value
        )

    # -- public API -------------------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        slot, want_hint = self._bucket_slot(key)
        addr = self._read_ptr(slot)
        while addr:
            next_ptr, hint, stored_key, value = self._read_entry(addr)
            if hint == want_hint and self.enclave.compare(stored_key, key):
                self.enclave.meter.count("op_get")
                return value
            addr = next_ptr
        raise KeyNotFoundError(key)

    def put(self, key: bytes, value: bytes) -> None:
        slot, want_hint = self._bucket_slot(key)
        addr = self._read_ptr(slot)
        prev_slot = slot
        while addr:
            next_ptr, hint, stored_key, old_value = self._read_entry(addr)
            if hint == want_hint and self.enclave.compare(stored_key, key):
                entry = self._entry_bytes(next_ptr, hint, key, value)
                old_size = _PREFIX + len(stored_key) + len(old_value)
                if len(entry) <= self._allocator.block_size_of(old_size):
                    self.enclave.write_untrusted(addr, entry)
                else:
                    new_addr = self._allocator.alloc(len(entry))
                    self.enclave.write_untrusted(new_addr, entry)
                    self.enclave.write_untrusted(
                        prev_slot, new_addr.to_bytes(8, "little")
                    )
                    self._allocator.free(addr, old_size)
                self.enclave.meter.count("op_put")
                return
            prev_slot = addr
            addr = next_ptr
        old_head = self._read_ptr(slot)
        entry = self._entry_bytes(old_head, want_hint, key, value)
        new_addr = self._allocator.alloc(len(entry))
        self.enclave.write_untrusted(new_addr, entry)
        self.enclave.write_untrusted(slot, new_addr.to_bytes(8, "little"))
        self._n_entries += 1
        self.enclave.meter.count("op_put")

    def delete(self, key: bytes) -> None:
        slot, want_hint = self._bucket_slot(key)
        addr = self._read_ptr(slot)
        prev_slot = slot
        while addr:
            next_ptr, hint, stored_key, value = self._read_entry(addr)
            if hint == want_hint and self.enclave.compare(stored_key, key):
                self.enclave.write_untrusted(
                    prev_slot, next_ptr.to_bytes(8, "little")
                )
                self._allocator.free(
                    addr, _PREFIX + len(stored_key) + len(value)
                )
                self._n_entries -= 1
                self.enclave.meter.count("op_delete")
                return
            prev_slot = addr
            addr = next_ptr
        raise KeyNotFoundError(key)

    def __len__(self) -> int:
        return self._n_entries

    def keys(self) -> Iterator[bytes]:
        for bucket in range(self._n_buckets):
            addr = self._read_ptr(self._bucket_base + bucket * 8)
            while addr:
                next_ptr, _, stored_key, _ = self._read_entry(addr)
                yield stored_key
                addr = next_ptr

    def load(self, pairs) -> None:
        with MeterPause(self.enclave.meter):
            for key, value in pairs:
                self.put(key, value)

    def cache_stats(self) -> dict:
        return {}

    def epc_report(self) -> dict:
        return self.enclave.epc.usage_report()
