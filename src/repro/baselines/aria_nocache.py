"""Aria w/o Cache (paper Fig 1(b)): all counters inside the enclave heap.

The intuitive design the paper motivates against: per-KV encryption counters
live in EPC memory, so they are always trusted — no Merkle tree needed.  KV
pairs and their MACs stay in untrusted memory (any tampering mismatches the
MAC recomputed from the trusted counter).  The catch: the counter array
scales with the keyspace, and once it exceeds the EPC, **hardware secure
paging** kicks in at 4 KB granularity (hotness-aware via CLOCK, but a page
mixes the counters of hot and cold keys — Section III).

Implementation: the counters sit in a :class:`PagedEnclaveHeap`; every
counter access touches its 16-byte slot, which faults and swaps when the
page is not resident.  Everything else reuses Aria's record codec, heap
allocator and index implementations — the schemes differ only in how the
counter is protected, exactly as in the paper.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.alloc.heap import HeapAllocator
from repro.core.record import RecordCodec
from repro.crypto.keys import KeyMaterial
from repro.errors import CapacityError, CounterReuseError, IntegrityError
from repro.index.btree import AriaBTreeIndex
from repro.index.hashtable import AriaHashIndex
from repro.sgx.costs import PAGE_SIZE, SgxPlatform
from repro.sgx.enclave import Enclave
from repro.sgx.meter import MeterPause

COUNTER_SIZE = 16


class PagedCounterManager:
    """Counters in the paged enclave heap; same surface as CounterManager."""

    def __init__(self, enclave: Enclave, *, initial_counters: int):
        if enclave.paged_heap is None:
            raise CapacityError("Aria w/o Cache needs a paged enclave heap")
        self._enclave = enclave
        self._capacity = initial_counters
        self._base = enclave.paged_heap.alloc(initial_counters * COUNTER_SIZE)
        # Actual values (conceptually the paged heap's contents).
        self._values = [i.to_bytes(COUNTER_SIZE, "little")
                        for i in range(1, initial_counters + 1)]
        self._free = list(range(initial_counters - 1, -1, -1))
        self._used = bytearray(initial_counters)

    def _touch(self, counter_id: int, write: bool = False) -> None:
        self._enclave.paged_heap.touch(
            self._base + counter_id * COUNTER_SIZE, COUNTER_SIZE, write=write
        )

    def fetch(self) -> int:
        if not self._free:
            raise CapacityError("counter area exhausted (no expansion in "
                                "the Aria w/o Cache baseline)")
        counter_id = self._free.pop()
        if self._used[counter_id]:
            raise CounterReuseError(f"counter {counter_id} already in use")
        self._used[counter_id] = 1
        return counter_id

    def free(self, counter_id: int) -> None:
        if not self._used[counter_id]:
            raise CounterReuseError(f"counter {counter_id} is not in use")
        self._used[counter_id] = 0
        self._free.append(counter_id)

    def read_counter(self, counter_id: int) -> bytes:
        if not 0 <= counter_id < self._capacity:
            raise IntegrityError(f"counter id {counter_id} out of range")
        self._touch(counter_id)
        return self._values[counter_id]

    def increment_counter(self, counter_id: int) -> bytes:
        current = int.from_bytes(self.read_counter(counter_id), "little")
        value = ((current + 1) % (1 << 128)).to_bytes(COUNTER_SIZE, "little")
        self._touch(counter_id, write=True)
        self._values[counter_id] = value
        return value

    def cache_stats(self) -> dict:
        return {"hits": 0, "misses": 0, "hit_ratio": 0.0,
                "page_swaps": self._enclave.meter.events["page_swap"]}


class AriaNoCacheStore:
    """The Aria-w/o-Cache scheme with a hash or B-tree index."""

    name = "aria_nocache"

    def __init__(
        self,
        *,
        initial_counters: int,
        index: str = "hash",
        n_buckets: int = 4096,
        btree_order: int = 15,
        platform: Optional[SgxPlatform] = None,
        seed: int = 0,
    ):
        platform = platform or SgxPlatform()
        # Reserve a sliver of the EPC for non-counter metadata; the rest
        # backs the paged heap holding the counters.
        metadata_bytes = n_buckets * 2 + max(4096, platform.epc_bytes // 64)
        heap_pages = max(1, (platform.epc_bytes - metadata_bytes) // PAGE_SIZE)
        self.enclave = Enclave(
            platform,
            keys=KeyMaterial.from_seed(seed),
            paged_heap_pages=heap_pages,
        )
        self.counters = PagedCounterManager(
            self.enclave, initial_counters=initial_counters
        )
        self.codec = RecordCodec(self.enclave, self.counters)
        # Scale the chunk size with the EPC so chunk bitmaps fit the
        # metadata sliver at any experiment scale.
        chunk = max(4096, min(4 * 1024 * 1024, platform.epc_bytes // 16))
        with MeterPause(self.enclave.meter):
            self.allocator = HeapAllocator(self.enclave, chunk_size=chunk)
        if index == "hash":
            self.index = AriaHashIndex(
                self.enclave, self.codec, self.allocator,
                n_buckets=n_buckets,
                fetch_counter=self.counters.fetch,
                free_counter=self.counters.free,
            )
        else:
            order = btree_order if btree_order % 2 else btree_order - 1
            self.index = AriaBTreeIndex(
                self.enclave, self.codec, self.allocator,
                order=order,
                fetch_counter=self.counters.fetch,
                free_counter=self.counters.free,
            )

    def put(self, key: bytes, value: bytes) -> None:
        self.index.put(key, value)
        self.enclave.meter.count("op_put")

    def get(self, key: bytes) -> bytes:
        value = self.index.get(key)
        self.enclave.meter.count("op_get")
        return value

    def delete(self, key: bytes) -> None:
        self.index.delete(key)
        self.enclave.meter.count("op_delete")

    def __len__(self) -> int:
        return len(self.index)

    def keys(self) -> Iterator[bytes]:
        return self.index.keys()

    def load(self, pairs) -> None:
        with MeterPause(self.enclave.meter):
            for key, value in pairs:
                self.index.put(key, value)
        self.enclave.paged_heap.prefault()

    def cache_stats(self) -> dict:
        return self.counters.cache_stats()

    def epc_report(self) -> dict:
        return self.enclave.epc.usage_report()
