"""The schemes Aria is evaluated against (paper Section VI, Compared Schemes).

1. **Baseline** — whole KV store in the enclave, hardware paging.
2. **Aria w/o Cache** — counters in the (paged) enclave heap, no Merkle tree.
3. **ShieldStore** — per-bucket Merkle roots in the EPC, bucket-granularity
   verification.
4. **PlainKv** — Aria without SGX (Fig 12's protection-overhead reference).
"""

from repro.baselines.aria_nocache import AriaNoCacheStore, PagedCounterManager
from repro.baselines.enclave_baseline import EnclaveBaselineStore
from repro.baselines.plain_kv import PlainKvStore
from repro.baselines.shieldstore import ShieldStore

__all__ = [
    "AriaNoCacheStore",
    "EnclaveBaselineStore",
    "PagedCounterManager",
    "PlainKvStore",
    "ShieldStore",
]
