"""ShieldStore reproduction (Kim et al., EuroSys 2019) — the paper's main rival.

Design, per the paper's Section III and Fig 1(a):

* The whole store — hash table, KV pairs, per-entry counters and MACs —
  lives in untrusted memory.
* One Merkle root **per hash bucket** is kept in the EPC (ShieldStore sizes
  the root array to the EPC: 4 M roots = 64 MB on the paper's machine).
* Every operation performs **bucket-granularity verification**.  Quoting
  Section III: "For every KV operation (Put/Get), it needs to read the whole
  bucket's MAC values, and then compute and verify the MAC value with the
  corresponding root stored in the EPC.  Besides, it has to update the root
  for Put requests."  So a Get reads every entry's *stored MAC* (not its
  body), folds them into the bucket MAC, compares with the EPC root, and
  then recomputes the full MAC of the one candidate entry it decrypts.
* A key hint per entry avoids decrypting non-matching entries (the hint
  idea Aria-H borrows).

The two properties every figure turns on are reproduced: per-op cost grows
with bucket length (keyspace / n_buckets), and hotness is irrelevant because
hot and cold keys share buckets and the root must always be re-derived.

Entry layout (MAC kept with the header so the verification walk is one
contiguous read per entry)::

    next (8) | hint (4) | counter (16) | k_len (2) | v_len (2) | MAC (16) | ct
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from repro.alloc.heap import HeapAllocator
from repro.crypto.keys import KeyMaterial
from repro.errors import IntegrityError, KeyNotFoundError
from repro.sgx.costs import SgxPlatform
from repro.sgx.enclave import Enclave
from repro.sgx.meter import MeterPause

_ENTRY_HEADER = struct.Struct("<QI16sHH16s")  # next, hint, ctr, k_len, v_len, mac
_NULL = 0
ROOT_BYTES = 16


class ShieldStore:
    """Hash-table KV store with per-bucket Merkle roots in the EPC."""

    name = "shieldstore"
    EPC_CONSUMER = "shieldstore_roots"

    def __init__(
        self,
        *,
        n_buckets: int,
        platform: Optional[SgxPlatform] = None,
        enclave: Optional[Enclave] = None,
        seed: int = 0,
    ):
        self.enclave = enclave or Enclave(
            platform or SgxPlatform(), keys=KeyMaterial.from_seed(seed)
        )
        self._n_buckets = n_buckets
        self.enclave.epc.reserve(self.EPC_CONSUMER, n_buckets * ROOT_BYTES)
        self._roots: list[bytes] = [b"\x00" * ROOT_BYTES] * n_buckets
        self._bucket_base = self.enclave.untrusted.alloc(n_buckets * 8)
        chunk = max(4096, min(4 * 1024 * 1024,
                              self.enclave.platform.epc_bytes // 16))
        with MeterPause(self.enclave.meter):
            self._allocator = HeapAllocator(self.enclave, chunk_size=chunk)
        self._n_entries = 0
        self._counter_seq = 0

    # -- entry serialization ------------------------------------------------------

    def _entry_mac(self, counter: bytes, ciphertext: bytes, k_len: int,
                   v_len: int) -> bytes:
        message = counter + k_len.to_bytes(2, "little") + \
            v_len.to_bytes(2, "little") + ciphertext
        return self.enclave.mac(message)

    def _entry_bytes(self, next_ptr: int, hint: int, counter: bytes,
                     ciphertext: bytes, k_len: int, v_len: int) -> bytes:
        mac = self._entry_mac(counter, ciphertext, k_len, v_len)
        header = _ENTRY_HEADER.pack(next_ptr, hint, counter, k_len, v_len, mac)
        return header + ciphertext

    def _entry_size(self, k_len: int, v_len: int) -> int:
        return _ENTRY_HEADER.size + k_len + v_len

    def _read_header(self, addr: int):
        raw = self.enclave.read_untrusted(addr, _ENTRY_HEADER.size)
        return _ENTRY_HEADER.unpack(raw)

    def _read_ciphertext(self, addr: int, k_len: int, v_len: int) -> bytes:
        return self.enclave.read_untrusted(addr + _ENTRY_HEADER.size,
                                           k_len + v_len)

    # -- bucket verification (the paper's bucket-granularity walk) ------------------

    def _bucket_slot(self, key: bytes) -> tuple[int, int, int]:
        digest = self.enclave.hash_key(key)
        bucket = digest % self._n_buckets
        return bucket, self._bucket_base + bucket * 8, digest & 0xFFFFFFFF

    def _walk_and_verify(self, bucket: int, head_slot: int) -> list:
        """Read every entry's header+MAC, fold MACs into the root, compare.

        Returns header tuples ``(addr, next, hint, counter, k_len, v_len,
        stored_mac)``; ciphertexts are NOT read here — only candidates get
        their bodies read and their MACs recomputed.
        """
        entries = []
        macs = []
        addr = int.from_bytes(self.enclave.read_untrusted(head_slot, 8),
                              "little")
        while addr != _NULL:
            next_ptr, hint, counter, k_len, v_len, mac = self._read_header(addr)
            macs.append(mac)
            entries.append((addr, next_ptr, hint, counter, k_len, v_len, mac))
            addr = next_ptr
        root = self.enclave.mac(b"".join(macs)) if macs else b"\x00" * ROOT_BYTES
        self.enclave.epc_touch(ROOT_BYTES)
        if root != self._roots[bucket]:
            raise IntegrityError(
                f"ShieldStore bucket {bucket} root mismatch: replay or "
                "tampering detected"
            )
        return entries

    def _open_candidate(self, addr: int, counter: bytes, k_len: int,
                        v_len: int, stored_mac: bytes) -> bytes:
        """Read a candidate's body, recompute its MAC, decrypt."""
        ciphertext = self._read_ciphertext(addr, k_len, v_len)
        computed = self._entry_mac(counter, ciphertext, k_len, v_len)
        if computed != stored_mac:
            raise IntegrityError(
                f"ShieldStore entry at {addr:#x} failed verification"
            )
        return self.enclave.decrypt(counter, ciphertext)

    def _recompute_root(self, bucket: int, head_slot: int) -> None:
        """Re-fold the bucket's stored MACs into the EPC root (Put path)."""
        macs = []
        addr = int.from_bytes(self.enclave.read_untrusted(head_slot, 8),
                              "little")
        while addr != _NULL:
            next_ptr, _, _, _, _, mac = self._read_header(addr)
            macs.append(mac)
            addr = next_ptr
        root = self.enclave.mac(b"".join(macs)) if macs else b"\x00" * ROOT_BYTES
        self.enclave.epc_touch(ROOT_BYTES)
        self._roots[bucket] = root

    # -- crypto helpers ------------------------------------------------------------------

    def _next_counter(self) -> bytes:
        self._counter_seq += 1
        return self._counter_seq.to_bytes(16, "little")

    # -- public API ---------------------------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        bucket, head_slot, want_hint = self._bucket_slot(key)
        entries = self._walk_and_verify(bucket, head_slot)
        for addr, _, hint, counter, k_len, v_len, mac in entries:
            if hint != want_hint:
                continue
            plaintext = self._open_candidate(addr, counter, k_len, v_len, mac)
            if self.enclave.compare(plaintext[:k_len], key):
                self.enclave.meter.count("op_get")
                return plaintext[k_len:]
        raise KeyNotFoundError(key)

    def put(self, key: bytes, value: bytes) -> None:
        bucket, head_slot, want_hint = self._bucket_slot(key)
        entries = self._walk_and_verify(bucket, head_slot)
        for addr, next_ptr, hint, counter, k_len, v_len, mac in entries:
            if hint != want_hint:
                continue
            plaintext = self._open_candidate(addr, counter, k_len, v_len, mac)
            if not self.enclave.compare(plaintext[:k_len], key):
                continue
            new_counter = self._next_counter()
            new_ct = self.enclave.encrypt(new_counter, key + value)
            new_entry = self._entry_bytes(next_ptr, hint, new_counter,
                                          new_ct, len(key), len(value))
            old_size = self._entry_size(k_len, v_len)
            if len(new_entry) <= self._allocator.block_size_of(old_size):
                self.enclave.write_untrusted(addr, new_entry)
            else:
                self._replace_entry(head_slot, addr, old_size, new_entry)
            self._recompute_root(bucket, head_slot)
            self.enclave.meter.count("op_put")
            return
        # New key: insert at the bucket head.
        counter = self._next_counter()
        ciphertext = self.enclave.encrypt(counter, key + value)
        old_head = int.from_bytes(
            self.enclave.read_untrusted(head_slot, 8), "little"
        )
        entry = self._entry_bytes(old_head, want_hint, counter, ciphertext,
                                  len(key), len(value))
        addr = self._allocator.alloc(len(entry))
        self.enclave.write_untrusted(addr, entry)
        self.enclave.write_untrusted(head_slot, addr.to_bytes(8, "little"))
        self._recompute_root(bucket, head_slot)
        self._n_entries += 1
        self.enclave.meter.count("op_put")

    def _replace_entry(self, head_slot: int, old_addr: int, old_size: int,
                       new_entry: bytes) -> None:
        """Swap an entry for a larger one, preserving its chain position."""
        new_addr = self._allocator.alloc(len(new_entry))
        self.enclave.write_untrusted(new_addr, new_entry)
        slot = head_slot
        current = int.from_bytes(self.enclave.read_untrusted(slot, 8), "little")
        while current != old_addr:
            slot = current  # next field is at offset 0
            current = int.from_bytes(
                self.enclave.read_untrusted(slot, 8), "little"
            )
        self.enclave.write_untrusted(slot, new_addr.to_bytes(8, "little"))
        self._allocator.free(old_addr, old_size)

    def delete(self, key: bytes) -> None:
        bucket, head_slot, want_hint = self._bucket_slot(key)
        entries = self._walk_and_verify(bucket, head_slot)
        slot = head_slot
        for addr, next_ptr, hint, counter, k_len, v_len, mac in entries:
            if hint == want_hint:
                plaintext = self._open_candidate(addr, counter, k_len, v_len,
                                                 mac)
                if self.enclave.compare(plaintext[:k_len], key):
                    self.enclave.write_untrusted(
                        slot, next_ptr.to_bytes(8, "little")
                    )
                    self._allocator.free(addr, self._entry_size(k_len, v_len))
                    self._recompute_root(bucket, head_slot)
                    self._n_entries -= 1
                    self.enclave.meter.count("op_delete")
                    return
            slot = addr
        raise KeyNotFoundError(key)

    def __len__(self) -> int:
        return self._n_entries

    def load(self, pairs) -> None:
        """Unmetered bulk load (experiment setup phase)."""
        with MeterPause(self.enclave.meter):
            for key, value in pairs:
                self.put(key, value)

    def keys(self) -> Iterator[bytes]:
        for bucket in range(self._n_buckets):
            head_slot = self._bucket_base + bucket * 8
            for addr, _, _, counter, k_len, v_len, mac in \
                    self._walk_and_verify(bucket, head_slot):
                plaintext = self._open_candidate(addr, counter, k_len, v_len,
                                                 mac)
                yield plaintext[:k_len]

    def epc_report(self) -> dict:
        return self.enclave.epc.usage_report()
