"""SGX enclave simulator: cost model, meter, EPC, secure paging, enclave."""

from repro.sgx.costs import (
    CACHELINE,
    DEFAULT_COSTS,
    DEFAULT_CPU_HZ,
    PAGE_SIZE,
    CostModel,
    SgxPlatform,
)
from repro.sgx.enclave import Enclave
from repro.sgx.epc import EpcBudget
from repro.sgx.memory import NULL, UntrustedMemory
from repro.sgx.meter import CycleMeter, MeterPause, MeterSnapshot
from repro.sgx.paging import PagedEnclaveHeap

__all__ = [
    "CACHELINE",
    "DEFAULT_COSTS",
    "DEFAULT_CPU_HZ",
    "NULL",
    "PAGE_SIZE",
    "CostModel",
    "CycleMeter",
    "Enclave",
    "EpcBudget",
    "MeterPause",
    "MeterSnapshot",
    "PagedEnclaveHeap",
    "SgxPlatform",
    "UntrustedMemory",
]
