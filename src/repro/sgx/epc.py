"""EPC budget accounting for software-managed enclave structures.

Aria promises low, bounded EPC occupation (Table I).  Every in-enclave
structure — Secure Cache entries, pinned Merkle levels, the counter-occupancy
bitmap, allocator chunk bitmaps, index entrances, per-bucket entry counts —
reserves its bytes here, so experiments can report true EPC occupation and a
too-small platform budget fails loudly instead of silently overcommitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError


@dataclass
class EpcBudget:
    """Tracks bytes of EPC reserved by named consumers."""

    capacity: int
    _used: int = 0
    _by_consumer: dict = field(default_factory=dict)

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def reserve(self, consumer: str, nbytes: int) -> None:
        """Reserve ``nbytes`` for ``consumer``; raises when over capacity."""
        if nbytes < 0:
            raise ValueError(f"cannot reserve {nbytes} bytes")
        if self._used + nbytes > self.capacity:
            raise CapacityError(
                f"EPC exhausted: {consumer} wants {nbytes} B, "
                f"{self.free} B free of {self.capacity} B"
            )
        self._used += nbytes
        self._by_consumer[consumer] = self._by_consumer.get(consumer, 0) + nbytes

    def release(self, consumer: str, nbytes: int) -> None:
        held = self._by_consumer.get(consumer, 0)
        if nbytes > held:
            raise ValueError(f"{consumer} releasing {nbytes} B but holds {held} B")
        self._by_consumer[consumer] = held - nbytes
        self._used -= nbytes

    def usage_report(self) -> dict:
        """Per-consumer EPC bytes (Table I's 'EPC occupation' column)."""
        return {k: v for k, v in sorted(self._by_consumer.items()) if v}
