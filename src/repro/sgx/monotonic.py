"""Simulated SGX monotonic counters: the non-volatile freshness anchor.

Sealing (:mod:`repro.sgx.sealing`) protects enclave state at rest but gives
no freshness: a snapshotted sealed blob replays perfectly.  Real SGX closes
the gap with *monotonic counters* — tiny non-volatile integers the enclave
can only ever increment, surviving enclave (and platform) restarts.  State
sealed together with the counter value can be checked on recovery: if the
counter has moved past the value bound into the blob, the blob is stale.

This module models such a service:

* counters are **non-volatile**: they live outside any enclave (in this
  simulation, in the :class:`MonotonicCounterService` object, optionally
  mirrored to a host file for ``python -m repro serve --durable``), so they
  survive every enclave kill/restart the fault layer stages;
* counters are **priced honestly**: SGX's own PSE counters take 80-250 ms
  per increment (ROTE; Ariadne), and even a ROTE-style distributed counter
  service needs ~1-2 ms per update — multi-million-cycle operations either
  way, charged via :class:`~repro.sgx.costs.CostModel` (``ctr_increment`` /
  ``ctr_read``).  This is *the* design force behind the durability layer's
  epoch scheme: counters are bound at snapshot/log-epoch boundaries, never
  per write;
* counters are **faultable**: :meth:`reset` is the attack surface — a
  malicious host wiping the counter store (or rolling back the NVRAM behind
  a PSE) — which honest recovery must detect, not trust.

Each access also pays an OCALL: the counter hardware/service lives outside
the enclave, so reading or bumping it is a boundary crossing.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.sgx.costs import CostModel, DEFAULT_COSTS
from repro.sgx.meter import CycleMeter


class MonotonicCounterService:
    """A non-volatile, increment-only counter store shared by enclaves.

    One service instance stands in for the platform's counter facility; the
    durability layer gives every partition its own counter id.  All methods
    that act for an enclave take a ``meter`` and charge the modeled cost
    there — the service itself is untrusted plumbing and owns no meter.
    """

    def __init__(self, *, costs: CostModel = DEFAULT_COSTS,
                 path: Optional[str] = None):
        self._costs = costs
        self._path = path
        self._counters: Dict[str, int] = {}
        self.increments = 0
        self.reads = 0
        self.resets = 0
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                self._counters = {k: int(v)
                                  for k, v in json.load(fh).items()}

    # -- the enclave-facing API ---------------------------------------------------

    def create(self, counter_id: str) -> int:
        """Ensure ``counter_id`` exists (at 0); idempotent, returns its value.

        Unmetered: creation happens once per partition lifetime, during
        setup, and real services price it like a read anyway — tests that
        care can read immediately after.
        """
        if counter_id not in self._counters:
            self._counters[counter_id] = 0
            self._persist()
        return self._counters[counter_id]

    def read(self, counter_id: str, *,
             meter: Optional[CycleMeter] = None) -> int:
        """Read the counter's current value (an OCALL plus the service cost)."""
        self.reads += 1
        if meter is not None:
            meter.charge_event("ocall", self._costs.ocall)
            meter.charge_event("ctr_read", self._costs.ctr_read)
        return self._counters.setdefault(counter_id, 0)

    def increment(self, counter_id: str, *,
                  meter: Optional[CycleMeter] = None) -> int:
        """Bump the counter by one and return the new value.

        The increment is durable before it returns — that ordering is what
        lets recovery treat "counter ahead of recovered epoch" as proof of
        rollback rather than a crash window.
        """
        self.increments += 1
        if meter is not None:
            meter.charge_event("ocall", self._costs.ocall)
            meter.charge_event("ctr_increment", self._costs.ctr_increment)
        value = self._counters.get(counter_id, 0) + 1
        self._counters[counter_id] = value
        self._persist()
        return value

    # -- the attack surface -------------------------------------------------------

    def reset(self, counter_id: str, value: int = 0) -> None:
        """Host attack: wipe/rewind a counter (no real enclave API does this).

        Models a malicious platform rolling back the NVRAM or wiping the
        counter service's state wholesale.  Recovery must *detect* the
        resulting mismatch (recovered epoch ahead of the counter), never
        accept it.
        """
        self.resets += 1
        self._counters[counter_id] = value
        self._persist()

    # -- plumbing -----------------------------------------------------------------

    def _persist(self) -> None:
        if self._path is None:
            return
        tmp = self._path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._counters, fh)
        os.replace(tmp, self._path)

    def peek(self, counter_id: str) -> int:
        """Unmetered read for tests/stats (not an enclave-path operation)."""
        return self._counters.get(counter_id, 0)

    def stats(self) -> dict:
        return {
            "counters": dict(self._counters),
            "increments": self.increments,
            "reads": self.reads,
            "resets": self.resets,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MonotonicCounterService({len(self._counters)} counters, "
                f"{self.increments} increments)")
