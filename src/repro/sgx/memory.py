"""Byte-addressable untrusted memory.

Everything Aria keeps outside the enclave — KV records, Merkle-tree node
arrays, the counter area, hash buckets, B-tree nodes, the allocator free list
— lives in one of these regions.  Addresses are plain integers; pointer
fields serialized into records are 8-byte little-endian addresses into this
space, which is what makes the Fig 7 pointer-swap attack expressible.

The attacker interface (:meth:`UntrustedMemory.tamper`) mutates bytes without
any cycle charge and without the enclave's involvement, modelling a malicious
OS/hypervisor with full control of regular DRAM.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import AriaError

#: Address 0 is reserved as the null pointer.
NULL = 0


class UntrustedMemory:
    """A growing address space of allocated regions (bump allocator).

    ``alloc`` returns stable integer addresses.  Reads and writes may cross
    region boundaries only if the caller allocated them contiguously, which
    the bump allocator guarantees never happens — each region is isolated,
    and out-of-range accesses raise, catching address-arithmetic bugs early.
    """

    def __init__(self) -> None:
        self._bases: list[int] = []
        self._regions: list[bytearray] = []
        self._next = 64  # small guard gap so that address 0 stays invalid

    @property
    def allocated_bytes(self) -> int:
        return sum(len(r) for r in self._regions)

    def alloc(self, size: int) -> int:
        """Allocate ``size`` zeroed bytes; returns the base address."""
        if size <= 0:
            raise AriaError(f"allocation size must be positive, got {size}")
        base = self._next
        self._bases.append(base)
        self._regions.append(bytearray(size))
        self._next = base + size + 64  # guard gap between regions
        return base

    def _locate(self, addr: int, size: int) -> tuple[bytearray, int]:
        idx = bisect_right(self._bases, addr) - 1
        if idx < 0:
            raise AriaError(f"invalid untrusted address {addr:#x}")
        base = self._bases[idx]
        region = self._regions[idx]
        offset = addr - base
        if offset + size > len(region):
            raise AriaError(
                f"untrusted access [{addr:#x}, +{size}) crosses region bounds"
            )
        return region, offset

    def read(self, addr: int, size: int) -> bytes:
        region, offset = self._locate(addr, size)
        return bytes(region[offset : offset + size])

    def write(self, addr: int, data: bytes) -> None:
        region, offset = self._locate(addr, len(data))
        region[offset : offset + len(data)] = data

    # -- attacker interface -------------------------------------------------

    def tamper(self, addr: int, data: bytes) -> None:
        """Adversarially overwrite bytes (no enclave involvement, no cost)."""
        self.write(addr, data)

    def snoop(self, addr: int, size: int) -> bytes:
        """Adversarially read bytes (ciphertext is all an attacker sees)."""
        return self.read(addr, size)
