"""Cycle accounting: the simulated performance counter of the enclave.

Every enclave-side primitive charges cycles here.  Benchmarks snapshot the
meter around an operation stream and convert ``cycles / ops`` into a
throughput figure via the platform clock (``ops/s = cpu_hz / cycles_per_op``),
mirroring the paper's single-thread throughput numbers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class MeterSnapshot:
    """An immutable point-in-time copy of the meter, for before/after diffs."""

    cycles: float
    events: Counter

    def delta(self, later: "MeterSnapshot") -> "MeterSnapshot":
        events = Counter(later.events)
        events.subtract(self.events)
        return MeterSnapshot(cycles=later.cycles - self.cycles, events=events)

    def snapshot(self) -> "MeterSnapshot":
        """A snapshot of a snapshot is itself.

        Lets aggregation code (``ClusterStats``, replica-group meters) accept
        a live ``CycleMeter`` and a frozen ``MeterSnapshot`` interchangeably.
        """
        return self

    def to_dict(self) -> dict:
        """A plain-builtins form that survives pickling and JSON round-trips."""
        return {"cycles": self.cycles, "events": dict(self.events)}

    @classmethod
    def from_dict(cls, payload: dict) -> "MeterSnapshot":
        return cls(cycles=float(payload["cycles"]),
                   events=Counter(payload["events"]))


@dataclass
class CycleMeter:
    """Accumulates simulated cycles plus named event counts.

    Event names used across the simulator:

    - ``page_swap``, ``page_writeback`` — hardware secure paging
    - ``ecall``, ``ocall`` — enclave boundary crossings
    - ``mac_bytes``, ``enc_bytes`` — crypto volume
    - ``mt_verify`` — Merkle-node MAC verifications
    - ``cache_hit``, ``cache_miss``, ``cache_evict``, ``cache_writeback`` —
      Secure Cache behaviour
    - ``untrusted_access``, ``epc_access`` — memory traffic
    """

    cycles: float = 0.0
    events: Counter = field(default_factory=Counter)
    enabled: bool = True

    def charge(self, cycles: float) -> None:
        if self.enabled:
            self.cycles += cycles

    def count(self, event: str, n: int = 1) -> None:
        if self.enabled:
            self.events[event] += n

    def charge_event(self, event: str, cycles: float, n: int = 1) -> None:
        if self.enabled:
            self.cycles += cycles
            self.events[event] += n

    def snapshot(self) -> MeterSnapshot:
        return MeterSnapshot(cycles=self.cycles, events=Counter(self.events))

    def merge(self, other: "CycleMeter | MeterSnapshot") -> "CycleMeter":
        """Fold another meter's accumulated charges into this one.

        Used to aggregate per-enclave accounting that crossed a process
        boundary as a :class:`MeterSnapshot` (and by replica groups that sum
        event counters across copies).  Respects ``enabled`` deliberately
        *not* at all: merging is bookkeeping, not a metered operation.
        """
        self.cycles += other.cycles
        self.events.update(other.events)
        return self

    def reset(self) -> None:
        self.cycles = 0.0
        self.events.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        top = ", ".join(f"{k}={v}" for k, v in self.events.most_common(6))
        return f"CycleMeter(cycles={self.cycles:.0f}, {top})"


class MeterPause:
    """Context manager that suspends charging (e.g. during bulk data load).

    The paper's throughput numbers are for the steady-state run phase; the
    load phase is excluded.  ``with MeterPause(meter): load()`` makes that
    explicit and cheap.
    """

    def __init__(self, meter: CycleMeter):
        self._meter = meter
        self._was_enabled = meter.enabled

    def __enter__(self) -> "MeterPause":
        self._was_enabled = self._meter.enabled
        self._meter.enabled = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._meter.enabled = self._was_enabled
