"""The simulated cycle-cost model for SGX primitives.

Every number here is either quoted directly by the paper (and its citations)
or derived from figures the SGX literature reports for the paper's platform
(Skylake/Kaby Lake client parts, SGX v1):

* EPC hit ≈ 200 cycles, EPC miss (secure page swap) ≈ 40 000 cycles
  [paper Section I, citing SCONE].
* ECALL/OCALL ≈ 8 000–14 000 cycles [paper Section II-A, citing HotCalls]; we use
  the 10 000-cycle midpoint.
* AES-NI bulk encryption ≈ 1–2.5 cycles/byte; CMAC (AES-based) similar with a
  per-call setup cost.
* DRAM random access ≈ 100 cycles; streaming bytes ≈ 0.5 cycles/byte.

The model is deliberately linear: ``cost = base + per_byte * n``.  Everything
the paper's evaluation varies (hit ratios, verification counts, bucket
lengths, page-swap counts, OCALL counts) enters through *how many times* each
primitive fires, which the simulator counts faithfully.  Benchmarks can
perturb these constants for sensitivity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

PAGE_SIZE = 4096
CACHELINE = 64

#: Clock frequency used to convert simulated cycles to ops/s.  The paper's
#: testbed is an Intel Core i7-7700 (4.2 GHz max turbo, single-thread runs).
DEFAULT_CPU_HZ = 4.2e9


@dataclass(frozen=True)
class CostModel:
    """Unit costs, in CPU cycles, for each primitive the simulator charges."""

    # Memory accesses.  A "access" is one dependent (pointer-chasing) load;
    # bytes beyond the first cacheline stream at ``mem_per_byte``.
    untrusted_access: float = 100.0
    epc_access: float = 200.0  # EPC hit incl. MEE decrypt (paper Section I)
    mem_per_byte: float = 0.5

    # Crossing the enclave boundary (paper Section II-A: 8k-14k cycles).
    ecall: float = 10_000.0
    ocall: float = 10_000.0

    # Hardware secure paging: one EPC miss = page swap (paper Section I: ~40k).
    page_swap: float = 40_000.0
    # EWB additionally encrypts + writes back the evicted page, always
    # (paper Section IV-C: EWB forces write-back regardless of dirtiness).
    page_writeback: float = 8_000.0

    # Crypto, performed inside the enclave with AES-NI.  The base costs
    # model the SGX SDK's per-call overhead (sgx_rijndael128_cmac and
    # sgx_aes_ctr_encrypt re-run the AES key schedule on every call).
    mac_base: float = 800.0
    mac_per_byte: float = 4.0
    enc_base: float = 500.0
    enc_per_byte: float = 2.5

    # Small fixed costs.
    hash_compute: float = 30.0  # bucket hash / key hint
    compare_per_byte: float = 0.25
    branch: float = 5.0  # generic in-enclave bookkeeping step

    # Intra-shard batch parallelism (extension: repro.server.batchexec).
    # The reservation tables of Aria-style deterministic batch execution
    # (Lu et al.) are compact hash-addressed arrays in EPC: one slot probe
    # or lowest-index-wins store is a dependent EPC access.  The key hash
    # that addresses the slot is computed once per request by the owning
    # worker and reused for every table op (execution needs it anyway), so
    # it is not re-charged here.
    resv_read: float = 200.0   # reservation-table probe (one epc_access)
    resv_write: float = 200.0  # reservation-table min-store (one epc_access)
    # One rendezvous of the enclave worker threads at a phase boundary.
    # In-enclave synchronization cannot use OS futexes (no syscalls inside);
    # SGX runtimes spin on EPC-resident flags, so a barrier costs a few
    # EPC round-trips per worker, not an OCALL.
    worker_barrier: float = 500.0

    # Wire-session establishment (extension: repro.cluster.session).  A
    # 2048-bit modular exponentiation costs on the order of 10^6 cycles on
    # the paper's platform, and the handshake performs two (offer + shared
    # secret); EPID/DCAP quote generation and verification are of the same
    # order (each involves an EGETKEY derivation plus asymmetric crypto).
    kex: float = 1_500_000.0
    quote_attest: float = 700_000.0

    # Non-volatile monotonic counters (extension: repro.sgx.monotonic).
    # SGX's own PSE counters take 80-250 ms per increment and 60-140 ms per
    # read (ROTE, Matetic et al., and Ariadne both report these ranges) —
    # hopeless for per-write use.  We price the counters at the figures a
    # ROTE-style distributed counter service achieves (~1-2 ms per update,
    # reads cheaper), which on the paper's 4.2 GHz part is still a
    # multi-million-cycle operation: the reason the durability layer binds
    # counters only at snapshot/log-epoch boundaries, never per commit.
    ctr_increment: float = 6_000_000.0
    ctr_read: float = 2_000_000.0

    def access_cost(self, nbytes: int, *, in_epc: bool) -> float:
        """Cost of one dependent access touching ``nbytes`` contiguous bytes."""
        base = self.epc_access if in_epc else self.untrusted_access
        extra = max(0, nbytes - CACHELINE)
        return base + extra * self.mem_per_byte

    def mac_cost(self, nbytes: int) -> float:
        return self.mac_base + nbytes * self.mac_per_byte

    def enc_cost(self, nbytes: int) -> float:
        return self.enc_base + nbytes * self.enc_per_byte

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with some constants replaced (sensitivity studies)."""
        return replace(self, **overrides)


#: The default model used by every experiment unless overridden.
DEFAULT_COSTS = CostModel()


@dataclass
class SgxPlatform:
    """Platform-wide constants: EPC budget and clock frequency.

    The paper's machine exposes 91 MB of usable EPC (``HeapMaxSize`` set to
    91 MB so hardware paging never fires for Aria itself).  Experiments scale
    ``epc_bytes`` together with the keyspace (DESIGN.md Section 4.6).
    """

    epc_bytes: int = 91 * 1024 * 1024
    cpu_hz: float = DEFAULT_CPU_HZ
    costs: CostModel = field(default_factory=CostModel)

    def scaled(self, factor: float) -> "SgxPlatform":
        """Scale the EPC budget by ``factor`` (costs and clock unchanged)."""
        return SgxPlatform(
            epc_bytes=max(1, int(self.epc_bytes * factor)),
            cpu_hz=self.cpu_hz,
            costs=self.costs,
        )
