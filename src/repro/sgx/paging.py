"""Hardware secure paging simulator (the SGX EWB/ELDU path).

Baseline (whole KV store in the enclave) and Aria w/o Cache (all counters in
the enclave) rely on this mechanism when their enclave heap outgrows the EPC.
Properties reproduced from the paper:

* 4 KB granularity — a page holds security metadata of hot *and* cold KV
  pairs, so evicting one page can hurt a hot key (Section III).
* Hotness-aware victim selection — the OS uses an approximate-LRU (CLOCK)
  scan over reference bits, which is why Aria-w/o-Cache tracks skew well
  while its working set fits (Fig 2).
* An EPC miss costs a secure page swap (~40 K cycles: context switch, copy,
  decrypt, integrity-tree update), and EWB always encrypts and writes back
  the victim regardless of dirtiness (Section IV-C).

The data itself stays accessible (paging is transparent to enclave code);
only costs and residency are simulated.
"""

from __future__ import annotations

from repro.errors import AriaError
from repro.sgx.costs import PAGE_SIZE, CostModel
from repro.sgx.meter import CycleMeter


class PagedEnclaveHeap:
    """A virtual enclave heap backed by a fixed number of resident EPC pages.

    ``alloc`` hands out virtual addresses (bump allocation).  ``touch`` walks
    the pages an access covers; non-resident pages charge a page swap and
    evict a CLOCK victim (charging its mandatory encrypted write-back).
    """

    def __init__(self, epc_pages: int, costs: CostModel, meter: CycleMeter):
        if epc_pages <= 0:
            raise AriaError(f"EPC must hold at least one page, got {epc_pages}")
        self._epc_pages = epc_pages
        self._costs = costs
        self._meter = meter
        self._next_addr = PAGE_SIZE  # page 0 reserved (null)
        self._resident: dict[int, bool] = {}  # page number -> reference bit
        self._clock_ring: list[int] = []
        self._clock_hand = 0
        self._total_pages = 0

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    @property
    def allocated_pages(self) -> int:
        return self._total_pages

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes of enclave-virtual memory; returns address."""
        if size <= 0:
            raise AriaError(f"allocation size must be positive, got {size}")
        addr = self._next_addr
        self._next_addr += size
        new_last_page = (self._next_addr - 1) // PAGE_SIZE
        self._total_pages = new_last_page  # pages 1..new_last_page
        return addr

    def _evict_one(self) -> None:
        """CLOCK: advance the hand, clearing reference bits, evict first 0."""
        if not self._clock_ring:
            raise AriaError("eviction requested from an empty EPC")
        while True:
            if self._clock_hand >= len(self._clock_ring):
                self._clock_hand = 0
            page = self._clock_ring[self._clock_hand]
            if page not in self._resident:
                # Stale ring entry from a prior eviction; drop it.
                self._clock_ring.pop(self._clock_hand)
                continue
            if self._resident[page]:
                self._resident[page] = False
                self._clock_hand += 1
                continue
            # Victim found: EWB always encrypts and writes the page back.
            del self._resident[page]
            self._clock_ring.pop(self._clock_hand)
            self._meter.charge_event("page_writeback", self._costs.page_writeback)
            return

    def touch(self, addr: int, size: int = 1, *, write: bool = False) -> int:
        """Access ``[addr, addr+size)``; returns the number of page faults."""
        if size <= 0:
            raise AriaError(f"touch size must be positive, got {size}")
        first = addr // PAGE_SIZE
        last = (addr + size - 1) // PAGE_SIZE
        faults = 0
        for page in range(first, last + 1):
            if page in self._resident:
                self._resident[page] = True
            else:
                faults += 1
                if len(self._resident) >= self._epc_pages:
                    self._evict_one()
                self._resident[page] = True
                self._clock_ring.append(page)
                self._meter.charge_event("page_swap", self._costs.page_swap)
        # The access itself: one EPC hit plus streaming bytes.
        self._meter.charge_event(
            "epc_access", self._costs.access_cost(size, in_epc=True)
        )
        return faults

    def prefault(self) -> None:
        """Mark the first ``epc_pages`` pages resident without charging.

        Used after the (unmetered) load phase so the run phase starts from a
        warm EPC, as the paper's steady-state measurements do.
        """
        self._resident.clear()
        self._clock_ring.clear()
        self._clock_hand = 0
        for page in range(1, min(self._total_pages, self._epc_pages) + 1):
            self._resident[page] = True
            self._clock_ring.append(page)
