"""The enclave facade: the trusted side of the simulator.

An :class:`Enclave` bundles the pieces every secure-KV design needs:

* a cycle meter and cost model,
* an EPC byte budget (software-managed structures reserve here),
* optionally a paged enclave heap (for designs that rely on hardware secure
  paging: Baseline and Aria w/o Cache),
* the untrusted memory space,
* session keys and a crypto backend.

All code paths that "run inside the enclave" go through these methods so
costs are charged uniformly: a read of untrusted memory pays the untrusted
access cost, a MAC pays per-byte crypto cost plus the copy of its input into
the enclave, an OCALL pays the boundary-crossing cost, and so on.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.crypto.backend import CryptoBackend, get_backend
from repro.crypto.keys import KeyMaterial
from repro.errors import IntegrityError
from repro.sgx.costs import PAGE_SIZE, CostModel, SgxPlatform
from repro.sgx.epc import EpcBudget
from repro.sgx.memory import UntrustedMemory
from repro.sgx.meter import CycleMeter
from repro.sgx.paging import PagedEnclaveHeap


class Enclave:
    """Trusted execution context with cycle-accurate cost accounting."""

    def __init__(
        self,
        platform: Optional[SgxPlatform] = None,
        *,
        keys: Optional[KeyMaterial] = None,
        crypto_backend: str = "fast",
        untrusted: Optional[UntrustedMemory] = None,
        paged_heap_pages: Optional[int] = None,
    ):
        self.platform = platform or SgxPlatform()
        self.costs: CostModel = self.platform.costs
        self.meter = CycleMeter()
        self.epc = EpcBudget(capacity=self.platform.epc_bytes)
        self.untrusted = untrusted or UntrustedMemory()
        self.keys = keys or KeyMaterial.from_seed(0)
        self.crypto: CryptoBackend = get_backend(crypto_backend)
        self.paged_heap: Optional[PagedEnclaveHeap] = None
        if paged_heap_pages is not None:
            self.paged_heap = PagedEnclaveHeap(paged_heap_pages, self.costs, self.meter)
            # The paged heap consumes the whole EPC budget it was given.
            self.epc.reserve("paged_heap", paged_heap_pages * PAGE_SIZE)

    # -- boundary crossings --------------------------------------------------

    def ecall(self) -> None:
        """Enter the enclave (client request dispatch)."""
        self.meter.charge_event("ecall", self.costs.ecall)

    def ocall(self) -> None:
        """Exit the enclave (e.g. an untrusted malloc without Aria's allocator)."""
        self.meter.charge_event("ocall", self.costs.ocall)

    # -- untrusted memory traffic ---------------------------------------------

    def read_untrusted(self, addr: int, size: int) -> bytes:
        """Dependent load from untrusted memory into enclave registers/stack."""
        self.meter.charge_event(
            "untrusted_access", self.costs.access_cost(size, in_epc=False)
        )
        return self.untrusted.read(addr, size)

    def write_untrusted(self, addr: int, data: bytes) -> None:
        self.meter.charge_event(
            "untrusted_access", self.costs.access_cost(len(data), in_epc=False)
        )
        self.untrusted.write(addr, data)

    # -- EPC-resident data traffic ---------------------------------------------

    def epc_touch(self, nbytes: int = 8) -> None:
        """One access to software-managed EPC data (Secure Cache, bitmaps...)."""
        self.meter.charge_event("epc_access", self.costs.access_cost(nbytes, in_epc=True))

    def epc_copy_in(self, nbytes: int) -> None:
        """Copy ``nbytes`` from untrusted memory into the EPC (node swap-in)."""
        self.meter.charge_event(
            "untrusted_access", self.costs.access_cost(nbytes, in_epc=False)
        )
        self.meter.charge_event("epc_access", self.costs.access_cost(nbytes, in_epc=True))

    # -- crypto (all executed inside the enclave) -------------------------------

    def mac(self, message: bytes) -> bytes:
        self.meter.charge_event("mac_bytes", self.costs.mac_cost(len(message)), len(message))
        self.meter.count("mac_ops")
        return self.crypto.mac(self.keys.mac_key, message)

    def mac_verify(self, message: bytes, tag: bytes) -> bool:
        self.meter.charge_event("mac_bytes", self.costs.mac_cost(len(message)), len(message))
        self.meter.count("mac_ops")
        return self.crypto.mac_verify(self.keys.mac_key, message, tag)

    def require_mac(self, message: bytes, tag: bytes, what: str) -> None:
        """Verify or raise :class:`IntegrityError` naming the protected object."""
        if not self.mac_verify(message, tag):
            raise IntegrityError(f"MAC mismatch on {what}: untrusted data modified")

    def encrypt(self, counter: bytes, plaintext: bytes) -> bytes:
        self.meter.charge_event(
            "enc_bytes", self.costs.enc_cost(len(plaintext)), len(plaintext)
        )
        return self.crypto.encrypt(self.keys.encryption_key, counter, plaintext)

    def decrypt(self, counter: bytes, ciphertext: bytes) -> bytes:
        self.meter.charge_event(
            "enc_bytes", self.costs.enc_cost(len(ciphertext)), len(ciphertext)
        )
        return self.crypto.decrypt(self.keys.encryption_key, counter, ciphertext)

    # -- misc in-enclave work ----------------------------------------------------

    def hash_key(self, key: bytes) -> int:
        """Bucket hash / key-hint hash computed inside the enclave."""
        self.meter.charge(self.costs.hash_compute)
        return zlib.crc32(key)

    def compare(self, a: bytes, b: bytes) -> bool:
        self.meter.charge(self.costs.compare_per_byte * max(len(a), len(b)))
        return a == b

    def work(self, cycles: float) -> None:
        """Charge generic in-enclave bookkeeping cycles."""
        self.meter.charge(cycles)

    # -- reporting ----------------------------------------------------------------

    def throughput(self, ops: int, snapshot_before=None) -> float:
        """Ops/s given cycles charged since ``snapshot_before`` (or since 0)."""
        cycles = self.meter.cycles
        if snapshot_before is not None:
            cycles -= snapshot_before.cycles
        if cycles <= 0 or ops <= 0:
            return 0.0
        return self.platform.cpu_hz * ops / cycles
