"""SGX-style sealing: protecting enclave state across restarts (extension).

An enclave's memory — including Aria's Merkle roots, bitmaps and cursors —
vanishes when the enclave (or machine) restarts, while untrusted memory can
survive.  Real SGX solves this with *sealing*: `EGETKEY` derives a key bound
to the CPU and the enclave's identity (MRENCLAVE), and state encrypted+MACed
under it can only be recovered by the same enclave on the same platform.

This module models that: the sealing key is derived deterministically from
the enclave's session keys (our stand-in for platform+identity), and sealed
blobs are AES-CTR-encrypted with a random nonce and CMAC-authenticated.

Sealing alone gives confidentiality and integrity but **not freshness**: an
attacker who snapshots both the sealed blob and untrusted memory can restore
the pair wholesale (``tests/test_sealing.py`` demonstrates the raw replay).
Rollback protection is layered on top, exactly as real deployments do it:
:mod:`repro.persist` binds every sealed snapshot and log epoch to a
non-volatile monotonic counter (:mod:`repro.sgx.monotonic`), so replaying a
stale-but-validly-sealed copy fails recovery with a typed
:class:`~repro.errors.RollbackDetectedError` instead of going undetected.
"""

from __future__ import annotations

import hashlib
import os

from repro.crypto.backend import CryptoBackend
from repro.crypto.keys import KeyMaterial
from repro.errors import IntegrityError

_NONCE_SIZE = 16
_MAC_SIZE = 16
_MAGIC = b"SEAL"


def derive_sealing_key(keys: KeyMaterial) -> bytes:
    """The EGETKEY model: a key only this enclave identity can re-derive."""
    return hashlib.blake2b(
        keys.encryption_key + keys.mac_key,
        key=b"repro-sealing-v1",
        digest_size=16,
    ).digest()


def seal(backend: CryptoBackend, sealing_key: bytes, payload: bytes) -> bytes:
    """Encrypt and authenticate ``payload``; returns the sealed blob."""
    nonce = os.urandom(_NONCE_SIZE)
    ciphertext = backend.encrypt(sealing_key, nonce, payload)
    mac = backend.mac(sealing_key, _MAGIC + nonce + ciphertext)
    return _MAGIC + nonce + ciphertext + mac


def unseal(backend: CryptoBackend, sealing_key: bytes, blob: bytes) -> bytes:
    """Verify and decrypt a sealed blob; raises IntegrityError on tampering."""
    if len(blob) < len(_MAGIC) + _NONCE_SIZE + _MAC_SIZE or \
            blob[: len(_MAGIC)] != _MAGIC:
        raise IntegrityError("not a sealed blob")
    nonce = blob[len(_MAGIC) : len(_MAGIC) + _NONCE_SIZE]
    ciphertext = blob[len(_MAGIC) + _NONCE_SIZE : -_MAC_SIZE]
    mac = blob[-_MAC_SIZE:]
    if not backend.mac_verify(sealing_key, blob[:-_MAC_SIZE], mac):
        raise IntegrityError("sealed blob failed authentication")
    return backend.decrypt(sealing_key, nonce, ciphertext)
