"""Pure-Python AES-128 block cipher (FIPS-197), implemented from scratch.

This is the block primitive behind the SGX SDK functions the paper uses:
``sgx_aes_ctr_encrypt`` (CTR mode, :mod:`repro.crypto.ctr`) and
``sgx_rijndael128_cmac`` (AES-CMAC, :mod:`repro.crypto.cmac`).

The implementation is table-driven (S-box plus xtime multiplication) and is
validated against the FIPS-197 appendix test vectors in
``tests/test_crypto_aes.py``.  It is deliberately straightforward rather than
fast; benchmark paths use the keyed-blake2 backend in
:mod:`repro.crypto.backend` and charge identical *simulated* cycle costs.
"""

from __future__ import annotations

BLOCK_SIZE = 16
KEY_SIZE = 16
_ROUNDS = 10

# Forward S-box, generated once at import from the AES finite-field inverse
# followed by the affine transform (FIPS-197 Section 5.1.1).


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverses in GF(2^8) via exp/log tables over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator 0x03 = x * 2 ^ x
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transform: b ^ rot1(b) ^ rot2(b) ^ rot3(b) ^ rot4(b) ^ 0x63
        res = 0x63
        for shift in range(5):
            res ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[value] = res

    inv_sbox = [0] * 256
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo the AES polynomial."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


# Precomputed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = bytes(_xtime(v) for v in range(256))
_MUL3 = bytes(_MUL2[v] ^ v for v in range(256))


def _mul(a: int, b: int) -> int:
    """General GF(2^8) multiply, used only for the inverse MixColumns tables."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = _xtime(a)
    return result


_MUL9 = bytes(_mul(v, 9) for v in range(256))
_MUL11 = bytes(_mul(v, 11) for v in range(256))
_MUL13 = bytes(_mul(v, 13) for v in range(256))
_MUL14 = bytes(_mul(v, 14) for v in range(256))


def expand_key(key: bytes) -> list[bytes]:
    """Expand a 16-byte key into the 11 round keys of AES-128.

    Returns a list of 11 16-byte round keys (FIPS-197 Section 5.2).
    """
    if len(key) != KEY_SIZE:
        raise ValueError(f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
    words = [key[i : i + 4] for i in range(0, 16, 4)]
    for i in range(4, 4 * (_ROUNDS + 1)):
        temp = words[i - 1]
        if i % 4 == 0:
            # RotWord + SubWord + Rcon
            temp = bytes(
                (
                    SBOX[temp[1]] ^ _RCON[i // 4 - 1],
                    SBOX[temp[2]],
                    SBOX[temp[3]],
                    SBOX[temp[0]],
                )
            )
        prev = words[i - 4]
        words.append(bytes(prev[j] ^ temp[j] for j in range(4)))
    return [b"".join(words[4 * r : 4 * r + 4]) for r in range(_ROUNDS + 1)]


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: bytearray) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _inv_sub_bytes(state: bytearray) -> None:
    for i in range(16):
        state[i] = INV_SBOX[state[i]]


# State layout: state[4*c + r] is row r, column c (column-major, matching the
# byte order of the input block).

_SHIFT_ROWS_MAP = tuple(
    4 * ((col + row) % 4) + row for col in range(4) for row in range(4)
)
_INV_SHIFT_ROWS_MAP = tuple(
    4 * ((col - row) % 4) + row for col in range(4) for row in range(4)
)


def _shift_rows(state: bytearray) -> None:
    state[:] = bytes(state[i] for i in _SHIFT_ROWS_MAP)


def _inv_shift_rows(state: bytearray) -> None:
    state[:] = bytes(state[i] for i in _INV_SHIFT_ROWS_MAP)


def _mix_columns(state: bytearray) -> None:
    for c in range(0, 16, 4):
        a0, a1, a2, a3 = state[c], state[c + 1], state[c + 2], state[c + 3]
        state[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
        state[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
        state[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
        state[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]


def _inv_mix_columns(state: bytearray) -> None:
    for c in range(0, 16, 4):
        a0, a1, a2, a3 = state[c], state[c + 1], state[c + 2], state[c + 3]
        state[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
        state[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
        state[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
        state[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]


class AES128:
    """AES-128 with a fixed key; encrypt/decrypt one 16-byte block at a time."""

    def __init__(self, key: bytes):
        self._round_keys = expand_key(key)

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(block)
        _add_round_key(state, self._round_keys[0])
        for rnd in range(1, _ROUNDS):
            _sub_bytes(state)
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[rnd])
        _sub_bytes(state)
        _shift_rows(state)
        _add_round_key(state, self._round_keys[_ROUNDS])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(block)
        _add_round_key(state, self._round_keys[_ROUNDS])
        for rnd in range(_ROUNDS - 1, 0, -1):
            _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._round_keys[rnd])
            _inv_mix_columns(state)
        _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)
