"""AES-CMAC (RFC 4493) — the reproduction of ``sgx_rijndael128_cmac``.

Aria computes a 16-byte keyed MAC over ``(RedPtr, encrypted KV, counter,
AdField)`` for every record, and over every Merkle-tree node.  The SGX SDK
primitive is AES-CMAC with a 128-bit key; we implement it from scratch on top
of :mod:`repro.crypto.aes` and validate against the RFC 4493 test vectors.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE

MAC_SIZE = 16
_RB = 0x87  # The constant for the 128-bit CMAC subkey derivation.


def _left_shift_one(block: bytes) -> tuple[bytes, bool]:
    value = int.from_bytes(block, "big") << 1
    return (value & ((1 << 128) - 1)).to_bytes(16, "big"), bool(value >> 128)


def _generate_subkeys(cipher: AES128) -> tuple[bytes, bytes]:
    l_value = cipher.encrypt_block(b"\x00" * BLOCK_SIZE)
    k1, carry = _left_shift_one(l_value)
    if carry:
        k1 = k1[:-1] + bytes([k1[-1] ^ _RB])
    k2, carry = _left_shift_one(k1)
    if carry:
        k2 = k2[:-1] + bytes([k2[-1] ^ _RB])
    return k1, k2


def _xor_block(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cmac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte AES-CMAC of ``message`` under ``key``."""
    cipher = AES128(key)
    k1, k2 = _generate_subkeys(cipher)

    n_blocks = (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE
    if n_blocks == 0:
        n_blocks = 1
        last_complete = False
    else:
        last_complete = len(message) % BLOCK_SIZE == 0

    last = message[(n_blocks - 1) * BLOCK_SIZE :]
    if last_complete:
        last = _xor_block(last, k1)
    else:
        padded = last + b"\x80" + b"\x00" * (BLOCK_SIZE - len(last) - 1)
        last = _xor_block(padded, k2)

    state = b"\x00" * BLOCK_SIZE
    for i in range(n_blocks - 1):
        block = message[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
        state = cipher.encrypt_block(_xor_block(state, block))
    return cipher.encrypt_block(_xor_block(state, last))


def cmac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time-ish comparison of a stored tag with the computed CMAC."""
    computed = cmac(key, message)
    result = 0
    for x, y in zip(computed, tag):
        result |= x ^ y
    return result == 0 and len(tag) == MAC_SIZE
