"""Pluggable crypto backends behind one interface.

Two backends implement the same contract (CTR-style encryption keyed by a
per-item 16-byte counter, and a 16-byte keyed MAC):

``RealCryptoBackend``
    The from-scratch AES-128 primitives (:mod:`repro.crypto.aes`,
    :mod:`repro.crypto.ctr`, :mod:`repro.crypto.cmac`) — byte-for-byte what
    the SGX SDK's ``sgx_aes_ctr_encrypt`` / ``sgx_rijndael128_cmac`` compute.
    Used in crypto unit tests and attack demonstrations.

``FastCryptoBackend``
    Keyed blake2s for the MAC and a blake2b-derived keystream for encryption.
    These are genuine keyed cryptographic functions (tampering still fails
    verification), but run at C speed so the simulator's wall-clock time is
    not dominated by pure-Python AES.  The *simulated* cycle cost charged by
    the enclave is identical for both backends — the cost model charges per
    byte processed, not per wall-clock second.

Both backends are deterministic given (key, counter, data), which the replay
attack tests rely on.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto import cmac as _cmac
from repro.crypto import ctr as _ctr

MAC_SIZE = 16
COUNTER_SIZE = 16


class CryptoBackend:
    """Interface: counter-mode encryption plus a keyed 16-byte MAC."""

    name = "abstract"

    def encrypt(self, key: bytes, counter: bytes, plaintext: bytes) -> bytes:
        raise NotImplementedError

    def decrypt(self, key: bytes, counter: bytes, ciphertext: bytes) -> bytes:
        raise NotImplementedError

    def mac(self, key: bytes, message: bytes) -> bytes:
        raise NotImplementedError

    def mac_verify(self, key: bytes, message: bytes, tag: bytes) -> bool:
        return hmac.compare_digest(self.mac(key, message), tag)


class RealCryptoBackend(CryptoBackend):
    """AES-128-CTR + AES-CMAC, exactly the SGX SDK primitives."""

    name = "real"

    def encrypt(self, key: bytes, counter: bytes, plaintext: bytes) -> bytes:
        return _ctr.ctr_transform(key, counter, plaintext)

    def decrypt(self, key: bytes, counter: bytes, ciphertext: bytes) -> bytes:
        return _ctr.ctr_transform(key, counter, ciphertext)

    def mac(self, key: bytes, message: bytes) -> bytes:
        return _cmac.cmac(key, message)


class FastCryptoBackend(CryptoBackend):
    """blake2-based stream cipher + keyed blake2s MAC (C-speed, still keyed)."""

    name = "fast"

    def _keystream(self, key: bytes, counter: bytes, length: int) -> bytes:
        blocks = []
        produced = 0
        index = 0
        while produced < length:
            block = hashlib.blake2b(
                counter + index.to_bytes(8, "little"), key=key, digest_size=64
            ).digest()
            blocks.append(block)
            produced += len(block)
            index += 1
        return b"".join(blocks)[:length]

    def encrypt(self, key: bytes, counter: bytes, plaintext: bytes) -> bytes:
        if len(counter) != COUNTER_SIZE:
            raise ValueError(f"counter must be {COUNTER_SIZE} bytes")
        keystream = self._keystream(key, counter, len(plaintext))
        return bytes(a ^ b for a, b in zip(plaintext, keystream))

    def decrypt(self, key: bytes, counter: bytes, ciphertext: bytes) -> bytes:
        return self.encrypt(key, counter, ciphertext)

    def mac(self, key: bytes, message: bytes) -> bytes:
        return hashlib.blake2s(message, key=key, digest_size=MAC_SIZE).digest()


_BACKENDS = {
    "real": RealCryptoBackend,
    "fast": FastCryptoBackend,
}


def get_backend(name: str) -> CryptoBackend:
    """Return a backend instance by name (``"real"`` or ``"fast"``)."""
    try:
        return _BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown crypto backend {name!r}; choose from {sorted(_BACKENDS)}"
        ) from None
