"""Cryptographic substrate: AES-128, CTR mode, AES-CMAC, and fast backend."""

from repro.crypto.aes import AES128
from repro.crypto.backend import (
    CryptoBackend,
    FastCryptoBackend,
    RealCryptoBackend,
    get_backend,
)
from repro.crypto.cmac import cmac, cmac_verify
from repro.crypto.ctr import ctr_transform
from repro.crypto.keys import KeyMaterial

__all__ = [
    "AES128",
    "CryptoBackend",
    "FastCryptoBackend",
    "RealCryptoBackend",
    "KeyMaterial",
    "cmac",
    "cmac_verify",
    "ctr_transform",
    "get_backend",
]
