"""AES counter-mode encryption — the reproduction of ``sgx_aes_ctr_encrypt``.

The paper (Section II-C, Section V) encrypts each KV pair with AES CTR counter-mode
encryption (CME) under a 128-bit global secret key and a per-KV 16-byte
counter that is incremented before every encryption.  CTR mode turns the AES
block cipher into a stream cipher: the keystream is
``AES_k(counter_block_0) || AES_k(counter_block_1) || ...`` where the counter
block is the per-KV counter with its low 32 bits incremented per 16-byte
block (the SGX SDK convention: ``ctr_inc_bits = 32``).
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE

COUNTER_SIZE = 16
_CTR_INC_BITS = 32


def _counter_block(counter: bytes, block_index: int) -> bytes:
    """Derive the counter block for ``block_index`` from the initial counter.

    Matches the SGX SDK behaviour of incrementing the low ``ctr_inc_bits``
    (32) bits, big-endian, once per 16-byte keystream block.
    """
    prefix = counter[: COUNTER_SIZE - _CTR_INC_BITS // 8]
    low = int.from_bytes(counter[-_CTR_INC_BITS // 8 :], "big")
    low = (low + block_index) % (1 << _CTR_INC_BITS)
    return prefix + low.to_bytes(_CTR_INC_BITS // 8, "big")


def ctr_transform(key: bytes, counter: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt ``data`` (CTR is an involution) with AES-128-CTR.

    ``counter`` is the 16-byte initial counter value (the per-KV encryption
    counter in Aria).  Returns ciphertext of the same length as ``data``.
    """
    if len(counter) != COUNTER_SIZE:
        raise ValueError(f"counter must be {COUNTER_SIZE} bytes, got {len(counter)}")
    cipher = AES128(key)
    out = bytearray(len(data))
    for block_index in range((len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE):
        keystream = cipher.encrypt_block(_counter_block(counter, block_index))
        offset = block_index * BLOCK_SIZE
        chunk = data[offset : offset + BLOCK_SIZE]
        for i, byte in enumerate(chunk):
            out[offset + i] = byte ^ keystream[i]
    return bytes(out)
