"""Session key material for an Aria enclave instance.

The paper uses a 128-bit global secret key for CTR encryption and a (possibly
distinct) MAC key for ``sgx_rijndael128_cmac``; both live only inside the
enclave.  In the reproduction, keys are derived deterministically from a seed
so experiments are reproducible, or randomly when no seed is given.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

KEY_SIZE = 16


@dataclass(frozen=True)
class KeyMaterial:
    """The enclave-resident secrets: one encryption key, one MAC key."""

    encryption_key: bytes
    mac_key: bytes

    def __post_init__(self) -> None:
        if len(self.encryption_key) != KEY_SIZE or len(self.mac_key) != KEY_SIZE:
            raise ValueError(f"keys must be {KEY_SIZE} bytes")

    @classmethod
    def from_seed(cls, seed: int) -> "KeyMaterial":
        """Derive both keys deterministically from an integer seed."""
        raw = hashlib.blake2b(
            seed.to_bytes(16, "little", signed=False), digest_size=32
        ).digest()
        return cls(encryption_key=raw[:16], mac_key=raw[16:])

    @classmethod
    def random(cls) -> "KeyMaterial":
        """Fresh random keys, as remote attestation would establish."""
        raw = os.urandom(32)
        return cls(encryption_key=raw[:16], mac_key=raw[16:])
