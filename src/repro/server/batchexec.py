"""Deterministic intra-shard batch parallelism via reservation tables.

A shard used to execute its batch serially inside one enclave thread.  This
module adopts the idiom of the *other* Aria — Lu et al.'s deterministic
OLTP protocol — inside a shard: split each batch across N simulated enclave
worker contexts and run a **reserve → execute → commit** pipeline per
batch.

Per round over the not-yet-committed requests:

1. **Reserve.**  Every request writes its key into per-batch read/write
   reservation tables with *lowest-request-index-wins* (a min, so the
   merged table is identical no matter how requests are partitioned across
   workers — the reason reservations parallelize without locks).
2. **Check.**  A request commits this round iff

   * it holds the write reservation for every key it writes (**WAW**:
     a lower-index writer wins, later writers defer),
   * no lower-index request holds a *read* reservation on a key it
     writes (**WAR**: the earlier reader must observe the pre-write
     value, so the writer defers one round),
   * no lower-index request holds a *write* reservation on a key it
     reads (**RAW**: the reader must observe its predecessor's write, so
     it defers until the writer has committed).

3. **Execute/commit.**  Winners execute; losers are *deferred* into the
   next round — the reordering fallback.  The lowest surviving index
   always wins every reservation it takes, so each round commits at least
   one request and a batch of n requests drains in at most n rounds.

Determinism and the cost model
------------------------------

The commit schedule is a pure function of ``(request index, key, opcode)``
— never of N — so the responses and the canonical cycle charges are
**bit-identical for any worker count**, which is what lets the process and
socket backends run real untrusted-side worker threads without perturbing
the simulation.  Concretely:

* The *canonical* meter (the enclave's) is charged in request-index order,
  exactly as the serial loop would.  Floats are not associative, so this
  is not a nicety: merging per-worker charge streams in any other grouping
  would drift in the last ulp and break bit-equality across N.
* The *parallel timing model* lives in per-worker attribution meters.
  Requests alive in a round are dealt round-robin to the N worker lanes;
  each lane accrues its requests' reservation-table traffic
  (``resv_write`` per reservation, ``resv_read`` per check probe) plus the
  measured canonical cost of the requests it commits.  A round's span is
  the slowest lane plus two barriers (reserve and commit rendezvous);
  the batch's *critical path* is the sum of its rounds plus the serial
  boundary work (the ECALL + copy charged by :class:`AriaServer`).
* Worker ECALL amortization: worker TCS threads enter the enclave once
  and park (the HotCalls pattern), so each extra worker pays one ``ecall``
  at engine start — amortized over the engine's lifetime, counted in
  ``overhead_cycles``, never per batch.

``speedup = serial_cycles / critical_cycles`` is the honest simulated
scaling figure: reservation traffic and barriers are priced *into* the
critical path, so conflict-heavy or tiny batches show the overhead rather
than pretending parallelism is free.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.server.protocol import OpCode, Request, Response
from repro.sgx.meter import CycleMeter

__all__ = ["BatchExecutor", "read_write_sets"]


def read_write_sets(request: Request) -> tuple:
    """The (read-set, write-set) of one request, as key tuples.

    GET reads its key; PUT/DELETE write theirs; HEALTH (and anything
    unknown, which dispatch rejects) touches no data and commits in the
    first round unconditionally.
    """
    if request.opcode == OpCode.GET:
        return (request.key,), ()
    if request.opcode in (OpCode.PUT, OpCode.DELETE):
        return (), (request.key,)
    return (), ()


class BatchExecutor:
    """Reserve → execute → commit engine for one shard's batches.

    ``workers=1`` still runs the full pipeline (useful to test that the
    engine itself is serial-equivalent); :class:`~repro.server.server
    .AriaServer` only engages the engine for ``workers >= 2`` so the
    default configuration stays byte-for-byte the seed behaviour.
    """

    def __init__(self, store, *, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._store = store
        self._enclave = store.enclave
        self.workers = workers
        #: Per-worker attribution meters: the parallel timing model.  The
        #: canonical enclave meter stays serial-identical; these record
        #: where the work *would* run and what the parallel machinery adds.
        self.worker_meters: List[CycleMeter] = [
            CycleMeter() for _ in range(workers)
        ]
        costs = self._enclave.costs
        # Worker TCS threads enter once and park (HotCalls): one ECALL per
        # extra worker for the engine's lifetime, not per batch.
        self.overhead_cycles: float = costs.ecall * (workers - 1)
        self.serial_cycles: float = 0.0
        self.critical_cycles: float = 0.0
        # Lifetime counters (also mirrored as canonical meter *events*,
        # which piggyback across process/socket backends on MeterSnapshots).
        self.batches = 0
        self.rounds = 0
        self.fallback_rounds = 0
        self.deferred = 0
        self.conflicts_raw = 0
        self.conflicts_waw = 0
        self.conflicts_war = 0

    # -- scheduling ---------------------------------------------------------------

    def schedule(self, requests: List[Request]) -> List[List[int]]:
        """The per-round commit sets — a pure function of indices and keys.

        Also classifies conflicts (RAW/WAW/WAR) and counts deferrals; the
        caller charges for the table traffic.  Returns a list of rounds,
        each the sorted indices committing that round.
        """
        sets = [read_write_sets(r) for r in requests]
        remaining = list(range(len(requests)))
        rounds: List[List[int]] = []
        while remaining:
            read_res: dict = {}
            write_res: dict = {}
            for i in remaining:
                reads, writes = sets[i]
                for key in writes:
                    if key not in write_res or i < write_res[key]:
                        write_res[key] = i
                for key in reads:
                    if key not in read_res or i < read_res[key]:
                        read_res[key] = i
            committed: List[int] = []
            deferred: List[int] = []
            for i in remaining:
                reads, writes = sets[i]
                verdict = None
                for key in writes:
                    if write_res[key] != i:
                        verdict = "waw"
                        break
                    if key in read_res and read_res[key] < i:
                        verdict = "war"
                        break
                if verdict is None:
                    for key in reads:
                        if key in write_res and write_res[key] < i:
                            verdict = "raw"
                            break
                if verdict is None:
                    committed.append(i)
                else:
                    deferred.append(i)
                    self.deferred += 1
                    if verdict == "raw":
                        self.conflicts_raw += 1
                    elif verdict == "waw":
                        self.conflicts_waw += 1
                    else:
                        self.conflicts_war += 1
            # The lowest remaining index wins every reservation it takes
            # and nothing precedes it: progress is guaranteed.
            assert committed, "reservation scheduling must always make progress"
            rounds.append(committed)
            remaining = deferred
        return rounds

    # -- execution ----------------------------------------------------------------

    def execute(
        self,
        requests: Iterable[Request],
        dispatch: Callable[[Request], Response],
    ) -> List[Response]:
        """Run one batch through the pipeline; returns responses in order.

        ``dispatch`` is the server's per-request handler.  Canonical
        charges land on the enclave meter in request-index order (the
        commit schedule never reorders *charging*, only the timing model),
        so cycles are bit-identical to the serial loop for any N.
        """
        requests = list(requests)
        meter = self._enclave.meter
        costs = self._enclave.costs
        n_workers = self.workers

        deferred_before = self.deferred
        conflicts_before = (self.conflicts_raw, self.conflicts_waw,
                            self.conflicts_war)
        rounds = self.schedule(requests)

        # Canonical execution: index order, measured per request.
        responses: List[Optional[Response]] = [None] * len(requests)
        request_cycles: List[float] = [0.0] * len(requests)
        for i, request in enumerate(requests):
            before = meter.cycles
            responses[i] = dispatch(request)
            request_cycles[i] = meter.cycles - before

        # Parallel timing model: deal each round's alive set round-robin
        # to the worker lanes, price the reservation traffic, and take the
        # slowest lane plus the phase barriers as the round's span.
        sets = [read_write_sets(r) for r in requests]
        alive = list(range(len(requests)))
        batch_critical = 0.0
        for round_index, committed in enumerate(rounds):
            committed_set = set(committed)
            lane_cycles = [0.0] * n_workers
            for pos, i in enumerate(alive):
                lane = pos % n_workers
                lane_meter = self.worker_meters[lane]
                reads, writes = sets[i]
                n_resv = len(reads) + len(writes)
                # One min-store per reservation; the check probes the
                # write table for every key and the read table for writes.
                n_probe = len(reads) + 2 * len(writes)
                resv = (costs.resv_write * n_resv
                        + costs.resv_read * n_probe)
                lane_meter.charge_event("resv_write", costs.resv_write
                                        * n_resv, n_resv)
                lane_meter.charge_event("resv_read", costs.resv_read
                                        * n_probe, n_probe)
                lane_cycles[lane] += resv
                if i in committed_set:
                    lane_meter.charge_event("exec_commit",
                                            request_cycles[i])
                    lane_cycles[lane] += request_cycles[i]
            barriers = (2 * costs.worker_barrier if n_workers > 1 else 0.0)
            batch_critical += max(lane_cycles) + barriers
            self.overhead_cycles += barriers
            self.rounds += 1
            if round_index > 0:
                self.fallback_rounds += 1
            alive = [i for i in alive if i not in committed_set]

        self.batches += 1
        self.serial_cycles += sum(request_cycles)
        self.critical_cycles += batch_critical
        # Cycle-free canonical *events*: identical for every N (the
        # schedule is), and they ride MeterSnapshots across backends so
        # ClusterStats/OP_HEALTH see them without extra RPCs.
        meter.count("batchexec_batch")
        meter.count("batchexec_round", len(rounds))
        if len(rounds) > 1:
            meter.count("batchexec_fallback_round", len(rounds) - 1)
        new_deferred = self.deferred - deferred_before
        if new_deferred:
            meter.count("batchexec_deferred", new_deferred)
        for event, total, before in (
            ("batchexec_conflict_raw", self.conflicts_raw,
             conflicts_before[0]),
            ("batchexec_conflict_waw", self.conflicts_waw,
             conflicts_before[1]),
            ("batchexec_conflict_war", self.conflicts_war,
             conflicts_before[2]),
        ):
            if total > before:
                meter.count(event, total - before)
        return responses  # type: ignore[return-value]

    def note_boundary(self, cycles: float) -> None:
        """Account the serial boundary work (ECALL + copies) of one batch.

        Boundary crossing is inherently serial — one worker carries the
        batch across — so it extends both the serial and the critical
        path, bounding speedup by Amdahl's law.
        """
        self.serial_cycles += cycles
        self.critical_cycles += cycles

    # -- reporting ----------------------------------------------------------------

    def merged_worker_meter(self) -> CycleMeter:
        """Fold the per-worker attribution meters in lane order.

        Deterministic by construction: lane order is fixed, and each
        lane's stream was accumulated in request-index order.
        """
        merged = CycleMeter()
        for lane_meter in self.worker_meters:
            merged.merge(lane_meter.snapshot())
        return merged

    def stats(self) -> dict:
        """The engine's row for ``Shard.stats()`` / the cluster report."""
        merged = self.merged_worker_meter()
        return {
            "workers": self.workers,
            "batches": self.batches,
            "rounds": self.rounds,
            "fallback_rounds": self.fallback_rounds,
            "deferred": self.deferred,
            "conflicts_raw": self.conflicts_raw,
            "conflicts_waw": self.conflicts_waw,
            "conflicts_war": self.conflicts_war,
            "serial_cycles": self.serial_cycles,
            "critical_cycles": self.critical_cycles,
            "overhead_cycles": self.overhead_cycles,
            "resv_reads": merged.events["resv_read"],
            "resv_writes": merged.events["resv_write"],
            "speedup": (self.serial_cycles / self.critical_cycles
                        if self.critical_cycles > 0 else 1.0),
            "worker_cycles": [m.cycles for m in self.worker_meters],
        }
