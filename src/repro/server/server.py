"""The enclave-resident request handler (extension beyond the paper).

Models the deployment the paper assumes but does not measure: clients
deliver encrypted-channel requests to untrusted code, which ECALLs into the
enclave.  Each delivery pays:

* one ECALL (Section II-A: ~10 K cycles of security checks + TLB/L1 flushes),
* the parameter copy across the boundary (charged per byte), and
* the same per-request copy on the way out.

``handle_batch`` amortizes the ECALL over many requests — the standard
mitigation (HotCalls/batched ecalls) — and the ``server_batching`` bench
quantifies the curve.  Request bytes are untrusted input: the parser rejects
malformed frames rather than trusting lengths.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import IntegrityError, KeyNotFoundError
from repro.server import protocol
from repro.server.protocol import (
    OpCode,
    ProtocolError,
    Request,
    Response,
    Status,
)


class AriaServer:
    """Dispatches decoded requests against an Aria store, inside the enclave.

    ``workers`` enables deterministic intra-shard batch parallelism (see
    :mod:`repro.server.batchexec`): batches run through an Aria-style
    reserve → execute → commit pipeline over N simulated enclave worker
    contexts.  Responses and canonical cycle charges are bit-identical for
    any worker count; the parallel timing model (critical path, reservation
    and barrier overhead) is reported via :meth:`exec_stats`.  ``workers=1``
    keeps the original serial loop.
    """

    def __init__(self, store, *, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._store = store
        self._enclave = store.enclave
        self.workers = workers
        if workers > 1:
            from repro.server.batchexec import BatchExecutor

            self.engine = BatchExecutor(store, workers=workers)
        else:
            self.engine = None

    # -- single-request entry point ------------------------------------------------

    def handle(self, request_bytes: bytes) -> bytes:
        """One ECALL per request: the naive (unbatched) entry point."""
        self._enter(len(request_bytes))
        try:
            request, _ = protocol.decode_request(request_bytes)
        except ProtocolError:
            return self._exit(Response(Status.BAD_REQUEST).encode())
        response = self._dispatch(request)
        return self._exit(response.encode())

    # -- batched entry point ----------------------------------------------------------

    def handle_batch(self, batch_bytes: bytes) -> bytes:
        """One ECALL amortized over every request in the batch.

        A batch whose framing cannot be parsed is rejected as a unit with
        the canonical single-BAD_REQUEST reply (none of its requests
        executed — see the contract in ``protocol``): the server cannot
        trust the claimed ``count`` of a frame it failed to parse, so it
        never fabricates per-request responses for it.
        """
        boundary = self._enter(len(batch_bytes))
        try:
            requests = protocol.decode_batch(batch_bytes)
        except ProtocolError:
            return self._exit(protocol.encode_batch_rejection())
        responses = self._run(requests)
        payload = protocol.encode_batch_responses(responses)
        boundary += self._charge_copy(len(payload))
        if self.engine is not None:
            self.engine.note_boundary(boundary)
        return payload

    def flush_batch(self, requests: Iterable[Request]) -> list:
        """Batch-flush hook for pre-decoded requests (the cluster path).

        The cluster coordinator decodes frames once at the front door and
        routes ``Request`` objects to shards; re-encoding them per shard
        would be pure Python overhead with no simulated counterpart.  This
        entry point charges exactly what :meth:`handle_batch` would — one
        ECALL plus the boundary copy of the encoded batch in and the
        encoded responses out — and enforces exactly the same caps: a
        batch ``decode_batch`` would reject (oversize count/frame/key/
        value, empty key, value on non-PUT, unknown opcode) is rejected
        as a unit with the whole-batch rejection shape, none of its
        requests executed.  Returns ``Response`` objects.
        """
        requests = list(requests)
        boundary = self._enter(protocol.batch_encoded_size(requests))
        if protocol.batch_violation(requests) is not None:
            responses = [Response(Status.BAD_REQUEST)]
            self._charge_copy(
                protocol.batch_responses_encoded_size(responses))
            return responses
        responses = self._run(requests)
        boundary += self._charge_copy(
            protocol.batch_responses_encoded_size(responses))
        if self.engine is not None:
            self.engine.note_boundary(boundary)
        return responses

    # -- internals ----------------------------------------------------------------------

    def _run(self, requests: list) -> list:
        """Execute a validated batch: the engine when workers > 1."""
        if self.engine is None:
            return [self._dispatch(request) for request in requests]
        return self.engine.execute(requests, self._dispatch)

    def _enter(self, nbytes: int) -> float:
        """Cross into the enclave: one ECALL + the parameter copy.

        Returns the cycles charged (measured, so ``MeterPause`` windows
        report zero), which the engine accounts as serial boundary work.
        """
        before = self._enclave.meter.cycles
        self._enclave.ecall()
        self._charge_copy(nbytes)
        return self._enclave.meter.cycles - before

    def _charge_copy(self, nbytes: int) -> float:
        """The boundary copy charge, shared by every entry/exit point."""
        before = self._enclave.meter.cycles
        self._enclave.meter.charge(
            self._enclave.costs.mem_per_byte * nbytes
        )
        return self._enclave.meter.cycles - before

    def _exit(self, payload: bytes) -> bytes:
        self._charge_copy(len(payload))
        return payload

    def exec_stats(self) -> "dict | None":
        """The batch-execution engine's counters, or ``None`` when serial."""
        if self.engine is None:
            return None
        return self.engine.stats()

    def _dispatch(self, request: Request) -> Response:
        try:
            if request.opcode == OpCode.HEALTH:
                # A liveness ping: reaching this line means the enclave is
                # up.  Never empty-valued BAD_REQUEST, so a one-request
                # batch can't collide with the whole-batch-rejection shape.
                return Response(Status.OK, b"ok")
            if request.opcode == OpCode.GET:
                return Response(Status.OK, self._store.get(request.key))
            if request.opcode == OpCode.PUT:
                self._store.put(request.key, request.value)
                return Response(Status.OK)
            if request.opcode == OpCode.DELETE:
                self._store.delete(request.key)
                return Response(Status.OK)
        except KeyNotFoundError:
            return Response(Status.NOT_FOUND)
        except IntegrityError as exc:
            # An alarm, not a crash: the client learns the store is under
            # attack; the failing state stays quarantined inside the raise.
            return Response(Status.INTEGRITY_FAILURE, str(exc).encode())
        return Response(Status.BAD_REQUEST)


class AriaClient:
    """Client-side convenience wrapper speaking the wire protocol."""

    def __init__(self, server: AriaServer, *, batch_size: int = 1):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._server = server
        self._batch_size = batch_size
        self._pending: list = []
        self._responses: list = []

    def get(self, key: bytes) -> bytes:
        response = self._roundtrip(protocol.get(key))
        if response.status == Status.NOT_FOUND:
            raise KeyNotFoundError(key)
        if response.status == Status.INTEGRITY_FAILURE:
            raise IntegrityError(response.value.decode())
        return response.value

    def put(self, key: bytes, value: bytes) -> None:
        self._roundtrip(protocol.put(key, value))

    def delete(self, key: bytes) -> None:
        response = self._roundtrip(protocol.delete(key))
        if response.status == Status.NOT_FOUND:
            raise KeyNotFoundError(key)

    def _roundtrip(self, request: Request) -> Response:
        if self._batch_size == 1:
            raw = self._server.handle(request.encode())
            response, _ = protocol.decode_response(raw)
            return response
        # Batched mode: queue and flush when the batch fills.
        self._pending.append(request)
        if len(self._pending) >= self._batch_size:
            self.flush()
        # The caller of a batched client reads results via drain(); for
        # simplicity the blocking API flushes immediately when batching.
        self.flush()
        return self._responses.pop(0)

    def flush(self) -> None:
        if not self._pending:
            return
        raw = self._server.handle_batch(protocol.encode_batch(self._pending))
        # expected= keeps request/response correspondence honest: a
        # whole-batch rejection raises instead of misaligning positions.
        self._responses.extend(
            protocol.decode_batch_responses(raw, expected=len(self._pending))
        )
        self._pending.clear()

    def pipeline(self, requests: Iterable[Request]) -> list:
        """Send many requests in max-size batches; returns all responses."""
        responses: list = []
        chunk: list = []
        for request in requests:
            chunk.append(request)
            if len(chunk) >= self._batch_size:
                raw = self._server.handle_batch(protocol.encode_batch(chunk))
                responses.extend(
                    protocol.decode_batch_responses(raw, expected=len(chunk))
                )
                chunk = []
        if chunk:
            raw = self._server.handle_batch(protocol.encode_batch(chunk))
            responses.extend(
                protocol.decode_batch_responses(raw, expected=len(chunk))
            )
        return responses
