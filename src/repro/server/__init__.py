"""Client-server mode: wire protocol + enclave request handler (extension)."""

from repro.server.protocol import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    STATUS_BAD_REQUEST,
    STATUS_INTEGRITY_FAILURE,
    STATUS_NOT_FOUND,
    STATUS_OK,
    ProtocolError,
    Request,
    Response,
    decode_batch,
    decode_batch_responses,
    decode_request,
    decode_response,
    encode_batch,
    encode_batch_responses,
)
from repro.server.server import AriaClient, AriaServer

__all__ = [
    "OP_DELETE",
    "OP_GET",
    "OP_PUT",
    "STATUS_BAD_REQUEST",
    "STATUS_INTEGRITY_FAILURE",
    "STATUS_NOT_FOUND",
    "STATUS_OK",
    "AriaClient",
    "AriaServer",
    "ProtocolError",
    "Request",
    "Response",
    "decode_batch",
    "decode_batch_responses",
    "decode_request",
    "decode_response",
    "encode_batch",
    "encode_batch_responses",
]
