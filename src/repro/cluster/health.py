"""Replica health tracking, restart, and trusted-path re-sync.

Tang et al.'s enclave KV stores treat integrity alarms as runtime events to
recover from; Harnik et al.'s production guidance is that enclaves *will*
restart.  The :class:`HealthMonitor` is the recovery loop that makes both
survivable in this reproduction:

* a replica marked DOWN by its :class:`~repro.cluster.replication
  .ReplicaGroup` (crash or integrity quarantine) is **restarted** — the
  dead enclave is discarded and a fresh one built (new key material, empty
  store; EPC contents never survive);
* the restarted replica enters RECOVERING and is **re-synced** from a live
  peer before it serves a single request: every key is read from the peer
  (index walk + MAC verify + decrypt, charged to the peer's meter) and
  re-put into the newcomer (re-encrypted and re-MACed under *its* keys,
  charged to its meter).  Enclaves share no key material, so state can
  only ever move between them through this verified, re-sealed path — the
  same one the balancer's migrations use;
* only after a complete copy does the replica rejoin as UP, becoming
  eligible for reads and the write fan-out again.

The monitor piggybacks on the serving loop the same way the balancer does:
attach it to the coordinator and it inspects the cluster every
``check_every`` routed requests; or drive :meth:`check` directly from a
test or operations script.  With no live peer in a group, its dead
replicas stay DOWN — an empty restarted enclave must never masquerade as
a copy of data that no longer exists anywhere.

Unless the group has a **durability sidecar** (:mod:`repro.persist`): then
"no live peer" is no longer the end.  One restarted replica is rebuilt
from the verified sealed snapshot + log replay — counter-checked, so a
stale-state rollback or a wiped counter is *rejected* with
:class:`~repro.errors.RollbackDetectedError` and the replicas keep
waiting, exactly as an empty rejoin would have been rejected before.  On
success the rebuilt replica rejoins UP, and its still-RECOVERING peers
re-sync from it over the existing trusted path in the same round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.replication import Replica, ReplicaGroup, ReplicaState
from repro.errors import DurabilityError, RecoveryError, ShardCrashedError

DEFAULT_CHECK_EVERY = 512


@dataclass
class ResyncReport:
    """One completed recovery: which replica, from whom, at what cost."""

    group: str
    replica: str
    source: str
    keys_copied: int
    src_cycles: float    # verified reads charged to the live peer
    dst_cycles: float    # re-sealed puts charged to the recovered replica
    restarted: bool
    #: The replica came back via reconnect (healed partition): the far-side
    #: enclave kept its state, so this re-sync is a catch-up of the writes
    #: missed while unreachable, not a rebuild from empty.
    reconnected: bool = False


@dataclass
class RecoveryReport:
    """One whole-partition rebuild from sealed storage: what and at what cost."""

    group: str
    replica: str
    keys_restored: int
    batches_replayed: int
    epoch: int
    counter: int
    torn_bytes_trimmed: int
    dur_cycles: float    # counter read + unseal/verify on the durability meter
    dst_cycles: float    # re-sealed puts charged to the rebuilt replica


class HealthMonitor:
    """Watches replica groups; restarts and re-syncs DOWN replicas."""

    def __init__(self, coordinator, *, check_every: int = DEFAULT_CHECK_EVERY,
                 auto_restart: bool = True):
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self._coordinator = coordinator
        self.check_every = check_every
        self.auto_restart = auto_restart
        self.history: List[ResyncReport] = []
        self.recoveries: List[RecoveryReport] = []
        self.recovery_failures: List[Tuple[str, DurabilityError]] = []
        self._ops_since_check = 0

    # -- driving ------------------------------------------------------------------

    def observe(self, n_ops: int) -> List[ResyncReport]:
        """Account routed ops; run a health check once per window."""
        self._ops_since_check += n_ops
        if self._ops_since_check < self.check_every:
            return []
        self._ops_since_check = 0
        return self.check()

    def check(self) -> List[ResyncReport]:
        """One inspection round over every replica group.

        Restart pass first; then, for a group with *no* live replica but a
        durability sidecar, one restarted replica is rebuilt from sealed
        storage (a typed failure — rollback detected, torn log under
        strict mode, nothing recoverable — is recorded in
        ``recovery_failures`` and the replicas stay non-UP); finally the
        usual peer re-sync pass, which in the durable case copies from the
        freshly rebuilt replica in the same round.
        """
        reports: List[ResyncReport] = []
        for group in self._coordinator.shard_list():
            replicas = getattr(group, "replicas", None)
            if not replicas:
                continue  # a plain, unreplicated shard: nothing to heal
            restarted_ids = set()
            reconnected_ids = set()
            for replica in replicas:
                if replica.state is not ReplicaState.DOWN \
                        or not self.auto_restart:
                    continue
                if replica.last_reason == "unreachable":
                    # The enclave is (probably) alive behind a partition:
                    # try the cheap path — re-dial, re-handshake, re-attach
                    # — before discarding its state with a restart.
                    if self._reconnect(replica):
                        reconnected_ids.add(id(replica))
                        continue
                    if not getattr(replica.shard, "crashed", False):
                        continue  # heal window still open: retry next round
                if self._restart(replica):
                    restarted_ids.add(id(replica))
            if getattr(group, "durability", None) is not None \
                    and group._first_live() is None:
                try:
                    self.recover_from_storage(group)
                except DurabilityError as exc:
                    self.recovery_failures.append((group.shard_id, exc))
            for replica in replicas:
                if replica.state is ReplicaState.RECOVERING:
                    report = self.resync(group, replica)
                    if report is not None:
                        report.restarted = (id(replica) in restarted_ids
                                            or report.restarted)
                        report.reconnected = id(replica) in reconnected_ids
                        reports.append(report)
        self.history.extend(reports)
        return reports

    # -- recovery -----------------------------------------------------------------

    def _reconnect(self, replica: Replica) -> bool:
        """Re-establish the link to a partitioned replica, state intact.

        Success moves the replica to RECOVERING so the normal re-sync pass
        catches it up on the writes it missed; the far side keeping its
        keys and store is what makes this cheaper than a restart.  Failure
        leaves it DOWN — with ``crashed`` now set if the far side turned
        out to be dead, which routes it to the restart path.
        """
        reconnect = getattr(replica.shard, "reconnect", None)
        if reconnect is None:
            return False
        try:
            ok = bool(reconnect())
        except ShardCrashedError:
            return False
        if ok:
            replica.state = ReplicaState.RECOVERING
        return ok

    def _restart(self, replica: Replica) -> bool:
        """Swap the dead/quarantined enclave for a fresh, empty one."""
        shard = replica.shard
        if not hasattr(shard, "restart"):
            return False  # not restartable: stays DOWN for an operator
        try:
            if not getattr(shard, "crashed", False):
                # Quarantined for integrity, enclave still running: its
                # untrusted state is rotten, so discard it outright rather
                # than trusting a partial heal.
                shard.kill()
            shard.restart()
        except ShardCrashedError:
            return False  # no rebuild recipe
        replica.state = ReplicaState.RECOVERING
        return True

    def resync(self, group: ReplicaGroup,
               replica: Replica) -> Optional[ResyncReport]:
        """Copy the partition's state from a live peer; metered both sides.

        The replica rejoins (UP) only after the full copy lands.  Returns
        None when no live peer exists — there is nothing trustworthy to
        copy, so the replica keeps waiting in RECOVERING.
        """
        peer = group._first_live()
        if peer is None or peer is replica:
            return None
        src_store = peer.shard.store
        dst_store = replica.shard.store
        src_before = peer.shard.meter.cycles
        dst_before = replica.shard.meter.cycles
        copied = 0
        for key in list(src_store.keys()):
            dst_store.put(key, src_store.get(key))
            copied += 1
        replica.state = ReplicaState.UP
        return ResyncReport(
            group=group.shard_id,
            replica=replica.replica_id,
            source=peer.replica_id,
            keys_copied=copied,
            src_cycles=peer.shard.meter.cycles - src_before,
            dst_cycles=replica.shard.meter.cycles - dst_before,
            restarted=False,
        )

    def recover_from_storage(self, group: ReplicaGroup,
                             replica: Optional[Replica] = None
                             ) -> RecoveryReport:
        """Rebuild one replica from the group's sealed snapshot + log.

        Runs the full verified recovery — counter read, snapshot unseal,
        chained log replay (torn tail trimmed), freshness check — and
        loads the result into ``replica`` (default: the first RECOVERING
        one) through metered, re-sealed puts, after which it rejoins UP.

        Raises the typed :class:`~repro.errors.DurabilityError` family on
        anything unacceptable: :class:`~repro.errors.RollbackDetectedError`
        for stale state or a rewound counter,
        :class:`~repro.errors.RecoveryError` when there is no durable
        state, no candidate replica, or the candidate dies mid-rebuild.
        The replicas stay non-UP in every failure case.
        """
        durability = getattr(group, "durability", None)
        if durability is None:
            raise RecoveryError(
                f"{group.shard_id}: no durability attached; a group with "
                "no live peer and no sealed state stays down")
        if replica is None:
            replica = next((r for r in group.replicas
                            if r.state is ReplicaState.RECOVERING), None)
        if replica is None:
            raise RecoveryError(
                f"{group.shard_id}: no restarted replica to rebuild into")
        dur_before = durability.meter.cycles
        state = durability.recover()
        dst_before = replica.shard.meter.cycles
        try:
            store = replica.shard.store
            for key, value in state.pairs.items():
                store.put(key, value)
        except ShardCrashedError as exc:
            group.mark_down(replica, "crash")
            raise RecoveryError(
                f"{group.shard_id}: replica {replica.replica_id} died "
                "during rebuild") from exc
        replica.state = ReplicaState.UP
        report = RecoveryReport(
            group=group.shard_id,
            replica=replica.replica_id,
            keys_restored=len(state.pairs),
            batches_replayed=state.batches_replayed,
            epoch=state.epoch,
            counter=state.counter,
            torn_bytes_trimmed=state.torn_bytes_trimmed,
            dur_cycles=durability.meter.cycles - dur_before,
            dst_cycles=replica.shard.meter.cycles - dst_before,
        )
        self.recoveries.append(report)
        return report

    # -- reporting ----------------------------------------------------------------

    def recovering(self) -> bool:
        """True while any replica is not UP — the brownout signal.

        The overload layer sheds writes while this holds (reads still
        served): a mid-recovery group is one failure away from losing
        the partition, and re-sync traffic is competing with the write
        fan-out for the same enclaves.
        """
        for group in self._coordinator.shard_list():
            replicas = getattr(group, "replicas", None)
            if not replicas:
                continue
            if any(r.state is not ReplicaState.UP for r in replicas):
                return True
        return False

    def total_resyncs(self) -> int:
        return len(self.history)

    def total_reconnects(self) -> int:
        return sum(1 for r in self.history if r.reconnected)

    def total_keys_resynced(self) -> int:
        return sum(r.keys_copied for r in self.history)

    def total_recoveries(self) -> int:
        return len(self.recoveries)
