"""Replica health tracking, restart, and trusted-path re-sync.

Tang et al.'s enclave KV stores treat integrity alarms as runtime events to
recover from; Harnik et al.'s production guidance is that enclaves *will*
restart.  The :class:`HealthMonitor` is the recovery loop that makes both
survivable in this reproduction:

* a replica marked DOWN by its :class:`~repro.cluster.replication
  .ReplicaGroup` (crash or integrity quarantine) is **restarted** — the
  dead enclave is discarded and a fresh one built (new key material, empty
  store; EPC contents never survive);
* the restarted replica enters RECOVERING and is **re-synced** from a live
  peer before it serves a single request: every key is read from the peer
  (index walk + MAC verify + decrypt, charged to the peer's meter) and
  re-put into the newcomer (re-encrypted and re-MACed under *its* keys,
  charged to its meter).  Enclaves share no key material, so state can
  only ever move between them through this verified, re-sealed path — the
  same one the balancer's migrations use;
* only after a complete copy does the replica rejoin as UP, becoming
  eligible for reads and the write fan-out again.

The monitor piggybacks on the serving loop the same way the balancer does:
attach it to the coordinator and it inspects the cluster every
``check_every`` routed requests; or drive :meth:`check` directly from a
test or operations script.  With no live peer in a group, its dead
replicas stay DOWN — an empty restarted enclave must never masquerade as
a copy of data that no longer exists anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.replication import Replica, ReplicaGroup, ReplicaState
from repro.errors import ShardCrashedError

DEFAULT_CHECK_EVERY = 512


@dataclass
class ResyncReport:
    """One completed recovery: which replica, from whom, at what cost."""

    group: str
    replica: str
    source: str
    keys_copied: int
    src_cycles: float    # verified reads charged to the live peer
    dst_cycles: float    # re-sealed puts charged to the recovered replica
    restarted: bool


class HealthMonitor:
    """Watches replica groups; restarts and re-syncs DOWN replicas."""

    def __init__(self, coordinator, *, check_every: int = DEFAULT_CHECK_EVERY,
                 auto_restart: bool = True):
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self._coordinator = coordinator
        self.check_every = check_every
        self.auto_restart = auto_restart
        self.history: List[ResyncReport] = []
        self._ops_since_check = 0

    # -- driving ------------------------------------------------------------------

    def observe(self, n_ops: int) -> List[ResyncReport]:
        """Account routed ops; run a health check once per window."""
        self._ops_since_check += n_ops
        if self._ops_since_check < self.check_every:
            return []
        self._ops_since_check = 0
        return self.check()

    def check(self) -> List[ResyncReport]:
        """One inspection round over every replica group."""
        reports: List[ResyncReport] = []
        for group in self._coordinator.shard_list():
            replicas = getattr(group, "replicas", None)
            if not replicas:
                continue  # a plain, unreplicated shard: nothing to heal
            for replica in replicas:
                restarted = False
                if replica.state is ReplicaState.DOWN and self.auto_restart:
                    restarted = self._restart(replica)
                if replica.state is ReplicaState.RECOVERING:
                    report = self.resync(group, replica)
                    if report is not None:
                        report.restarted = restarted or report.restarted
                        reports.append(report)
        self.history.extend(reports)
        return reports

    # -- recovery -----------------------------------------------------------------

    def _restart(self, replica: Replica) -> bool:
        """Swap the dead/quarantined enclave for a fresh, empty one."""
        shard = replica.shard
        if not hasattr(shard, "restart"):
            return False  # not restartable: stays DOWN for an operator
        try:
            if not getattr(shard, "crashed", False):
                # Quarantined for integrity, enclave still running: its
                # untrusted state is rotten, so discard it outright rather
                # than trusting a partial heal.
                shard.kill()
            shard.restart()
        except ShardCrashedError:
            return False  # no rebuild recipe
        replica.state = ReplicaState.RECOVERING
        return True

    def resync(self, group: ReplicaGroup,
               replica: Replica) -> Optional[ResyncReport]:
        """Copy the partition's state from a live peer; metered both sides.

        The replica rejoins (UP) only after the full copy lands.  Returns
        None when no live peer exists — there is nothing trustworthy to
        copy, so the replica keeps waiting in RECOVERING.
        """
        peer = group._first_live()
        if peer is None or peer is replica:
            return None
        src_store = peer.shard.store
        dst_store = replica.shard.store
        src_before = peer.shard.meter.cycles
        dst_before = replica.shard.meter.cycles
        copied = 0
        for key in list(src_store.keys()):
            dst_store.put(key, src_store.get(key))
            copied += 1
        replica.state = ReplicaState.UP
        return ResyncReport(
            group=group.shard_id,
            replica=replica.replica_id,
            source=peer.replica_id,
            keys_copied=copied,
            src_cycles=peer.shard.meter.cycles - src_before,
            dst_cycles=replica.shard.meter.cycles - dst_before,
            restarted=False,
        )

    # -- reporting ----------------------------------------------------------------

    def total_resyncs(self) -> int:
        return len(self.history)

    def total_keys_resynced(self) -> int:
        return sum(r.keys_copied for r in self.history)
