"""Hot-shard detection and key-range migration between shards.

Consistent hashing balances *key counts*, not *load*: a zipfian workload
(the paper's whole premise) concentrates traffic on few keys, and whichever
shard owns the hot arcs becomes the cluster's straggler — aggregate
throughput is set by the slowest shard (see ``cluster.stats``), so one hot
shard wastes the other N-1 enclaves.

The balancer watches per-shard *cycle* deltas (the
:class:`~repro.sgx.meter.CycleMeter` is the honest load signal: it already
folds in swap storms and cache-miss verification costs, not just op
counts).  When the hottest shard exceeds ``imbalance_threshold`` times the
mean, it moves vnodes — i.e. key ranges — from the hot shard to the
coldest one and migrates the affected keys.

Migration goes through the trusted path on purpose: every key is read
(verified + decrypted) from the source enclave with ``store.get`` and
re-``put`` into the destination enclave, whose own counter, MAC, and
AdField are minted under *its* keys — shards share no key material, so
ciphertext can never be moved between enclaves byte-for-byte.  All of that
work is charged to the two shards' meters: rebalancing is never free in
the simulation, and the benchmarks measure its payback honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class MigrationReport:
    """One rebalancing round: what moved, and what it cost."""

    src: str
    dst: str
    vnodes_moved: int
    keys_moved: int
    src_cycles: float       # scan + re-verify + delete cost on the hot shard
    dst_cycles: float       # re-seal (put) cost on the destination
    loads_before: dict = field(default_factory=dict)


class HotShardBalancer:
    """Periodically inspects shard loads and migrates hot key ranges.

    With a :class:`~repro.cluster.elastic.ReconfigPlanner` attached
    (:meth:`attach_planner`, done by ``ClusterConfig.build`` when elastic
    is armed), the balancer is one cost-aware policy *inside* the
    planner: every proposed vnode move is submitted as a
    :class:`~repro.cluster.elastic.TopologyDelta` with the hot shard's
    excess cycles as the projected straggler savings, and a plan the
    constraint models reject (most often ``migration_cost``: the move
    would not pay for itself) becomes a counted no-op instead of a
    migration.
    """

    def __init__(
        self,
        coordinator,
        *,
        check_every: int = 2048,
        imbalance_threshold: float = 1.5,
        min_window_ops: int = 256,
        planner=None,
    ):
        if imbalance_threshold <= 1.0:
            raise ValueError("imbalance_threshold must exceed 1.0")
        self._coordinator = coordinator
        self.check_every = check_every
        self.imbalance_threshold = imbalance_threshold
        self.min_window_ops = min_window_ops
        self.planner = planner
        #: Moves the planner's constraint models refused (no-ops).
        self.plans_rejected = 0
        self.history: List[MigrationReport] = []
        self._ops_since_check = 0
        self._window_ops = 0
        for shard in coordinator.shard_list():
            shard.mark_load()

    def attach_planner(self, planner) -> None:
        """Route every future move proposal through ``planner``."""
        self.planner = planner

    # -- driving ------------------------------------------------------------------

    def observe(self, n_ops: int) -> Optional[MigrationReport]:
        """Account routed ops; check for imbalance once per window."""
        self._ops_since_check += n_ops
        self._window_ops += n_ops
        if self._ops_since_check < self.check_every:
            return None
        self._ops_since_check = 0
        return self.maybe_rebalance()

    def maybe_rebalance(self) -> Optional[MigrationReport]:
        """One detection + migration round; None if the cluster is balanced."""
        shards = self._coordinator.shard_list()
        window_ops, self._window_ops = self._window_ops, 0
        if len(shards) < 2 or window_ops < self.min_window_ops:
            return None
        loads = {s.shard_id: s.load_since_mark() for s in shards}
        mean = sum(loads.values()) / len(loads)
        hot = max(shards, key=lambda s: loads[s.shard_id])
        cold = min(shards, key=lambda s: loads[s.shard_id])
        for shard in shards:
            shard.mark_load()
        if mean <= 0 or loads[hot.shard_id] < self.imbalance_threshold * mean:
            return None

        ring = self._coordinator.ring
        counts = ring.vnode_counts()
        avg_count = sum(counts.values()) / len(counts)
        # Halve the hot shard's vnode surplus each round: geometric
        # convergence without over-shooting on one noisy window.  No
        # surplus means the heat is key-level (one whale key), which no
        # vnode shuffle can fix: moving an arc anyway just churns keys,
        # so the no-surplus round is a no-op.
        surplus = counts[hot.shard_id] - avg_count
        if surplus <= 0:
            return None
        to_move = max(1, int(surplus // 2))
        if self.planner is not None:
            # The cost-aware gate: a move must project to pay for itself
            # in straggler savings (the hot shard's excess cycles this
            # window) before any key crosses an enclave boundary.
            from repro.errors import PlanRejectedError

            from repro.cluster.elastic import TopologyDelta

            delta = TopologyDelta(
                vnode_moves=((hot.shard_id, cold.shard_id, to_move),))
            savings = loads[hot.shard_id] - mean
            try:
                self.planner.plan(delta, projected_savings=savings)
            except PlanRejectedError:
                self.plans_rejected += 1
                return None
        moved = ring.move_vnodes(hot.shard_id, cold.shard_id, to_move)
        if not moved:
            return None
        report = self._migrate(hot, loads)
        report.vnodes_moved = moved
        self.history.append(report)
        # Migration itself consumed cycles on both shards; restart the load
        # window so the next detection sees serving load, not migration.
        for shard in shards:
            shard.mark_load()
        return report

    # -- migration ----------------------------------------------------------------

    def _migrate(self, src, loads: dict) -> MigrationReport:
        """Move every key the ring no longer assigns to ``src``.

        A full scan of the source shard: with consistent hashing the moved
        arcs are scattered through ``src``'s keyspace, and the index has no
        hash-order iteration, so the scan is the honest cost of migration.
        """
        coordinator = self._coordinator
        src_before = src.meter.cycles
        dst_cycles = 0.0
        keys_moved = 0
        dst_ids = set()
        for key in list(src.store.keys()):
            owner = coordinator.ring.route(key)
            if owner == src.shard_id:
                continue
            dst = coordinator.shards[owner]
            value = src.store.get(key)        # verified read (src enclave)
            before = dst.meter.cycles
            dst.store.put(key, value)         # re-sealed under dst's keys
            dst_cycles += dst.meter.cycles - before
            src.store.delete(key)             # counter back to src free ring
            keys_moved += 1
            dst_ids.add(owner)
        return MigrationReport(
            src=src.shard_id,
            dst=",".join(sorted(dst_ids)) if dst_ids else "",
            vnodes_moved=0,
            keys_moved=keys_moved,
            src_cycles=src.meter.cycles - src_before,
            dst_cycles=dst_cycles,
            loads_before=dict(loads),
        )

    # -- reporting ----------------------------------------------------------------

    def total_keys_moved(self) -> int:
        return sum(r.keys_moved for r in self.history)
