"""One cluster shard: an enclave-backed Aria store plus its request server.

Generalizes the paper's Fig 16a multi-tenant split — where one machine's
EPC is partitioned across 2 or 4 independent enclaves — to N shards whose
per-shard EPC budget is carved out of a cluster-wide budget.  Each shard is
a *separate* :class:`~repro.sgx.enclave.Enclave`: its own cycle meter, its
own EPC budget, its own Secure Cache sized by the same "as large as
possible" rule the single-store benchmarks use (via
:func:`repro.bench.harness.build_aria`).

Shards also keep the small amount of bookkeeping the balancer needs: a
load mark (cycles consumed since the last balancer inspection) so hot-shard
detection can work on windowed deltas rather than lifetime totals.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.bench.harness import build_aria
from repro.cluster.backend import BackendSpec, resolve_backend
from repro.server.server import AriaServer
from repro.sgx.costs import SgxPlatform

#: Floor for a shard's EPC carve-out; below this the Merkle pinning math
#: degenerates (mirrors the scaled_platform floor in the bench harness).
MIN_SHARD_EPC_BYTES = 4096

#: Environment override for the per-shard enclave worker count, consulted
#: by the cluster builders when no explicit ``workers=`` is given (how the
#: CI ``parallel`` job re-runs whole suites at ``workers=4``).
WORKERS_ENV_VAR = "ARIA_SHARD_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument beats ``ARIA_SHARD_WORKERS`` beats 1.

    Resolution happens in the *builder's* process: backends ship the
    resolved integer in their spawn specs, so a shard-host started with a
    different environment still builds the shard the coordinator asked
    for.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR)
        workers = int(raw) if raw else 1
    if workers < 1:
        raise ValueError("shard workers must be >= 1")
    return workers


class Shard:
    """An independent enclave + Aria store serving one ring partition."""

    def __init__(
        self,
        shard_id: str,
        *,
        epc_bytes: int,
        capacity_keys: int,
        index: str = "hash",
        seed: int = 0,
        value_hint: int = 16,
        workers: int = 1,
        **config_overrides,
    ):
        self.shard_id = shard_id
        self.epc_bytes = max(MIN_SHARD_EPC_BYTES, epc_bytes)
        platform = SgxPlatform(epc_bytes=self.epc_bytes)
        # Sized for ``capacity_keys`` — the worst-case ownership, not the
        # expected 1/N share: ring imbalance and balancer migrations can
        # concentrate keys on one shard, and a counter-area expansion is
        # not affordable once the Secure Cache has claimed "as large as
        # possible" (the paper's sizing rule).  Counter capacity is cheap
        # (1 EPC bit per counter); the Secure Cache absorbs the rest.
        self.store = build_aria(
            n_keys=max(64, capacity_keys),
            platform=platform,
            index=index,
            seed=seed,
            value_hint=value_hint,
            **config_overrides,
        )
        self.server = AriaServer(self.store, workers=workers)
        self.workers = workers
        #: Requests routed here since construction (front-door count; the
        #: enclave's own op_* events count executed operations).
        self.ops_routed = 0
        self._load_mark = 0.0

    # -- balancer bookkeeping ----------------------------------------------------

    @property
    def meter(self):
        return self.store.enclave.meter

    def load_since_mark(self) -> float:
        """Cycles consumed since :meth:`mark_load` — the hot-shard signal."""
        return self.meter.cycles - self._load_mark

    def mark_load(self) -> None:
        self._load_mark = self.meter.cycles

    # -- reporting ----------------------------------------------------------------

    def stats(self) -> dict:
        """One shard's row of the cluster report."""
        events = self.meter.events
        cache = self.store.cache_stats()
        row = {
            "shard": self.shard_id,
            "keys": len(self.store),
            "ops_routed": self.ops_routed,
            "ops_executed": (events["op_get"] + events["op_put"]
                             + events["op_delete"]),
            "cycles": self.meter.cycles,
            "ecalls": events["ecall"],
            "page_swaps": events["page_swap"],
            "cache_hit_ratio": cache["hit_ratio"],
            "cache_evictions": cache["evictions"],
            "epc_bytes": self.epc_bytes,
            "epc_used": self.store.enclave.epc.used,
        }
        exec_stats = self.server.exec_stats()
        if exec_stats is not None:
            row["batchexec"] = exec_stats
        return row

    def close(self, timeout: float = 5.0) -> None:
        """Inline shards hold no external resources; process handles do."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Shard({self.shard_id!r}, keys={len(self.store)}, "
                f"epc={self.epc_bytes})")


def build_shards(
    n_shards: int,
    *,
    cluster_epc_bytes: int,
    n_keys: int,
    index: str = "hash",
    seed: int = 0,
    value_hint: int = 16,
    id_prefix: str = "shard",
    backend: BackendSpec = None,
    workers: Optional[int] = None,
    **config_overrides,
) -> List:
    """Carve ``cluster_epc_bytes`` evenly into ``n_shards`` enclaves.

    ``n_keys`` is the *cluster-wide* keyspace.  Every shard gets 1/N of
    the EPC but is provisioned (counters, buckets) for the whole keyspace
    — exactly how the paper's Fig 16a sizes each tenant for its full
    working set while the EPC is split k ways.

    ``backend`` picks who hosts each enclave (see
    :mod:`repro.cluster.backend`): ``"inline"`` returns plain
    :class:`Shard` objects; ``"process"`` returns handles to per-shard
    worker processes satisfying the same contract.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    factory = resolve_backend(backend)
    workers = resolve_workers(workers)
    per_shard_epc = cluster_epc_bytes // n_shards
    return [
        factory.create(
            f"{id_prefix}-{i}",
            epc_bytes=per_shard_epc,
            capacity_keys=n_keys,
            index=index,
            seed=seed + i,
            value_hint=value_hint,
            workers=workers,
            **config_overrides,
        )
        for i in range(n_shards)
    ]
