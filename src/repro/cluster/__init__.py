"""``repro.cluster``: the sharded multi-enclave serving layer.

Turns the single-store :class:`~repro.server.server.AriaServer` into a
routed cluster — the ROADMAP's "sharding, batching, async" axis and the
paper's Fig 16a multi-enclave split generalized to N shards behind one
front door:

* :mod:`~repro.cluster.ring` — consistent-hash routing (virtual nodes);
* :mod:`~repro.cluster.shard` — one enclave + Aria store per shard, EPC
  carved from a cluster-wide budget;
* :mod:`~repro.cluster.coordinator` — request routing and per-shard batch
  accumulation over the ECALL-amortized path;
* :mod:`~repro.cluster.balancer` — hot-shard detection and key-range
  migration (re-sealed through the trusted path);
* :mod:`~repro.cluster.netserver` — the asyncio TCP front door plus a
  synchronous client;
* :mod:`~repro.cluster.stats` — cluster-wide metrics aggregation.
"""

from repro.cluster.balancer import HotShardBalancer, MigrationReport
from repro.cluster.coordinator import (
    ClusterCoordinator,
    DEFAULT_BATCH_WINDOW,
    build_cluster,
)
from repro.cluster.netserver import (
    BackgroundServer,
    ClusterClient,
    ClusterNetServer,
    FRAME_HEADER,
)
from repro.cluster.ring import DEFAULT_VNODES, HashRing, ring_hash
from repro.cluster.shard import Shard, build_shards
from repro.cluster.stats import ClusterStats

__all__ = [
    "BackgroundServer",
    "ClusterClient",
    "ClusterCoordinator",
    "ClusterNetServer",
    "ClusterStats",
    "DEFAULT_BATCH_WINDOW",
    "DEFAULT_VNODES",
    "FRAME_HEADER",
    "HashRing",
    "HotShardBalancer",
    "MigrationReport",
    "Shard",
    "build_cluster",
    "build_shards",
    "ring_hash",
]
