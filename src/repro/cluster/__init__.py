"""``repro.cluster``: the sharded multi-enclave serving layer.

Turns the single-store :class:`~repro.server.server.AriaServer` into a
routed cluster — the ROADMAP's "sharding, batching, async" axis and the
paper's Fig 16a multi-enclave split generalized to N shards behind one
front door:

* :mod:`~repro.cluster.backend` — the ``ShardBackend`` seam: who hosts a
  shard's enclave (``inline`` in-process, ``process`` workers, or
  ``socket`` shard-hosts over TCP);
* :mod:`~repro.cluster.procbackend` — the process backend: one OS worker
  per enclave behind a message pipe, real kills, real parallelism;
* :mod:`~repro.cluster.sockbackend` — the socket backend: shard-host
  processes reachable only over attested, AEAD-framed TCP sessions —
  the multi-host deployment shape, with network partitions as a
  first-class failure mode distinct from crashes;
* :mod:`~repro.cluster.ring` — consistent-hash routing (virtual nodes);
* :mod:`~repro.cluster.shard` — one enclave + Aria store per shard, EPC
  carved from a cluster-wide budget;
* :mod:`~repro.cluster.coordinator` — request routing and per-shard batch
  accumulation over the ECALL-amortized path;
* :mod:`~repro.cluster.balancer` — hot-shard detection and key-range
  migration (re-sealed through the trusted path);
* :mod:`~repro.cluster.netserver` — the asyncio TCP front door plus a
  synchronous client with timeouts and read retries;
* :mod:`~repro.cluster.session` — attested, encrypted v2 wire sessions:
  the gateway enclave's quote-verified handshake and AEAD framing, with
  every wire-crypto op priced on a meter;
* :mod:`~repro.cluster.stats` — cluster-wide metrics aggregation;
* :mod:`~repro.cluster.replication` — per-partition replica groups:
  fan-out writes, preferred-replica reads, automatic failover;
* :mod:`~repro.cluster.faults` — deterministic fault injection
  (kill / corrupt / partition / net delay / drop / close) on replayable
  schedules;
* :mod:`~repro.cluster.health` — replica health tracking, restart, and
  trusted-path re-sync;
* :mod:`~repro.cluster.overload` — admission control and graceful
  degradation: deadline budgets, token buckets, retry budgets, and
  per-shard circuit breakers (see ARCHITECTURE §14);
* :mod:`~repro.cluster.tenancy` — the multi-tenant front door: tenant
  identity bound into the attested handshake, per-principal admission,
  disjoint key namespaces, and Secure-Cache quotas (ARCHITECTURE §16);
* :mod:`~repro.cluster.config` — :class:`ClusterConfig`, the typed
  single construction surface over all of the above (plus
  :func:`serve`), replacing the deprecated factory kwarg sprawl;
* :mod:`~repro.cluster.elastic` — elastic scale-out: the model-checked
  :class:`ReconfigPlanner` (typed constraint rejections) and the
  :class:`ElasticCluster` live migration engine — shard add/remove
  under traffic with dual-applied writes, staged fault injection, and
  abort/rollback (ARCHITECTURE §17).
"""

from repro.cluster.backend import (
    BACKEND_NAMES,
    InlineBackend,
    ShardBackend,
    default_backend_name,
    resolve_backend,
    set_default_backend,
)
from repro.cluster.balancer import HotShardBalancer, MigrationReport
from repro.cluster.config import (
    ClusterConfig,
    DurabilityConfig,
    serve,
)
from repro.cluster.coordinator import (
    ClusterCoordinator,
    DEFAULT_BATCH_WINDOW,
    build_cluster,
)
from repro.cluster.elastic import (
    CONSTRAINT_MODELS,
    MIGRATION_STAGES,
    STAGE_ORDINALS,
    ElasticCluster,
    ReconfigPlan,
    ReconfigPlanner,
    ShardSpec,
    TopologyDelta,
    elastic_target,
)
from repro.errors import PlanRejectedError
from repro.cluster.tenancy import (
    TenancyConfig,
    TenantConfig,
    TenantRegistry,
    default_tenant_secret,
    tenant_credential,
)
from repro.cluster.faults import (
    CAPTURE,
    CHAOS_DUR_KINDS,
    CLOSE,
    CORRUPT,
    CTR_RESET,
    DELAY,
    DOWNGRADE,
    DROP,
    DURABILITY_KINDS,
    IO_ERROR,
    KILL,
    NET_TARGET,
    PARTITION,
    REPLAY,
    ROLLBACK,
    SLOW,
    TAMPER,
    TORN,
    TRUNCATE,
    WIRE_KINDS,
    FaultEvent,
    FaultPlan,
    FaultyShard,
    dur_target,
)
from repro.cluster.health import (
    DEFAULT_CHECK_EVERY,
    HealthMonitor,
    RecoveryReport,
    ResyncReport,
)
from repro.cluster.procbackend import (
    ProcessBackend,
    ProcessShard,
    reap_leaked_workers,
)
from repro.cluster.sockbackend import (
    ShardHost,
    SocketBackend,
    SocketShard,
    SpawnedHost,
    reap_leaked_hosts,
    run_shard_host,
)
from repro.cluster.netserver import (
    BackgroundServer,
    ClusterClient,
    ClusterNetServer,
    DEFAULT_CLIENT_TIMEOUT,
    DEFAULT_RETRY_RATIO,
    FRAME_HEADER,
    SECURITY_POLICIES,
)
from repro.cluster.overload import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    OverloadConfig,
    RetryBudget,
    TokenBucket,
)
from repro.cluster.session import (
    ATTESTATION_ROOT,
    ClientHandshake,
    SecureSession,
    SessionManager,
    make_quote,
    measurement,
    verify_quote,
)
from repro.cluster.replication import (
    DEFAULT_REPLICATION,
    Replica,
    ReplicaGroup,
    ReplicaState,
    build_replica_group,
    build_replicated_cluster,
)
from repro.cluster.ring import DEFAULT_VNODES, HashRing, ring_hash
from repro.cluster.shard import Shard, build_shards
from repro.cluster.stats import ClusterStats

__all__ = [
    "ATTESTATION_ROOT",
    "BACKEND_NAMES",
    "BackgroundServer",
    "CAPTURE",
    "CHAOS_DUR_KINDS",
    "CLOSE",
    "CORRUPT",
    "CTR_RESET",
    "BreakerState",
    "CircuitBreaker",
    "ClientHandshake",
    "ClusterClient",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterNetServer",
    "ClusterStats",
    "CONSTRAINT_MODELS",
    "DurabilityConfig",
    "ElasticCluster",
    "MIGRATION_STAGES",
    "PlanRejectedError",
    "ReconfigPlan",
    "ReconfigPlanner",
    "STAGE_ORDINALS",
    "ShardSpec",
    "TopologyDelta",
    "elastic_target",
    "TenancyConfig",
    "TenantConfig",
    "TenantRegistry",
    "DEFAULT_BATCH_WINDOW",
    "DEFAULT_CHECK_EVERY",
    "DEFAULT_CLIENT_TIMEOUT",
    "DEFAULT_REPLICATION",
    "DEFAULT_RETRY_RATIO",
    "DEFAULT_VNODES",
    "Deadline",
    "DELAY",
    "DOWNGRADE",
    "DROP",
    "DURABILITY_KINDS",
    "FRAME_HEADER",
    "FaultEvent",
    "FaultPlan",
    "FaultyShard",
    "HashRing",
    "HealthMonitor",
    "HotShardBalancer",
    "IO_ERROR",
    "InlineBackend",
    "KILL",
    "MigrationReport",
    "NET_TARGET",
    "OverloadConfig",
    "PARTITION",
    "ProcessBackend",
    "ProcessShard",
    "REPLAY",
    "ROLLBACK",
    "Replica",
    "ReplicaGroup",
    "ReplicaState",
    "RecoveryReport",
    "ResyncReport",
    "RetryBudget",
    "SECURITY_POLICIES",
    "SLOW",
    "SecureSession",
    "SessionManager",
    "Shard",
    "TokenBucket",
    "ShardBackend",
    "ShardHost",
    "SocketBackend",
    "SocketShard",
    "SpawnedHost",
    "TAMPER",
    "TORN",
    "TRUNCATE",
    "WIRE_KINDS",
    "build_cluster",
    "build_replica_group",
    "build_replicated_cluster",
    "build_shards",
    "default_backend_name",
    "default_tenant_secret",
    "dur_target",
    "serve",
    "tenant_credential",
    "make_quote",
    "measurement",
    "reap_leaked_hosts",
    "reap_leaked_workers",
    "resolve_backend",
    "ring_hash",
    "run_shard_host",
    "set_default_backend",
    "verify_quote",
]
