"""The ``ShardBackend`` seam: who actually hosts a shard's enclave.

Everything above a shard — :class:`~repro.cluster.coordinator
.ClusterCoordinator`, :class:`~repro.cluster.replication.ReplicaGroup`,
:class:`~repro.cluster.faults.FaultyShard`, the balancer, health monitor
and stats — talks to an implicit duck-typed contract (``shard_id``,
``store``, ``server.flush_batch``, ``meter``, balancer marks, ``stats``).
This module makes that contract an explicit factory interface with two
interchangeable implementations:

* :class:`InlineBackend` — the original behaviour: the enclave simulation
  lives in the caller's process (zero-copy, deterministic, the default
  for tests and single-machine benchmarks);
* :class:`~repro.cluster.procbackend.ProcessBackend` — each shard/replica
  enclave runs in its own ``multiprocessing`` worker behind a message
  pipe; batch requests, key-migration and re-sync traffic serialize over
  it, so the untrusted front-end work genuinely parallelizes across
  cores and a ``kill`` is a real ``SIGKILL``;
* :class:`~repro.cluster.sockbackend.SocketBackend` — enclaves live in
  shard-host processes reachable only over TCP, behind an attested,
  AEAD-framed session per handle; the distributed deployment shape,
  with network partitions as a first-class failure mode.

Backends are *factories*: they build shard handles but never route
requests, so the coordinator stays backend-agnostic.  Metering is
backend-invariant by construction — the same enclave code runs either
way, only the transport differs — which is what lets the equivalence
tests assert byte-identical responses and identical simulated cycles.

Selection order for :func:`resolve_backend`: an explicit argument (name
or instance) beats the process-wide default set by
:func:`set_default_backend` (how the test suite parametrizes existing
cluster tests over both backends), which beats the
``ARIA_CLUSTER_BACKEND`` environment variable, which beats ``inline``.
"""

from __future__ import annotations

import abc
import os
from typing import Optional, Union

#: Environment override consulted when no explicit/default backend is set.
BACKEND_ENV_VAR = "ARIA_CLUSTER_BACKEND"

BACKEND_NAMES = ("inline", "process", "socket")


class ShardBackend(abc.ABC):
    """Factory for shard handles satisfying the Shard duck-type contract."""

    name: str = "abstract"

    @abc.abstractmethod
    def create(
        self,
        shard_id: str,
        *,
        epc_bytes: int,
        capacity_keys: int,
        index: str = "hash",
        seed: int = 0,
        value_hint: int = 16,
        workers: int = 1,
        **config_overrides,
    ):
        """Build one shard (enclave + store + server) and return its handle.

        ``workers`` is the shard's simulated enclave worker count (the
        intra-shard batch-parallelism knob, see
        :mod:`repro.server.batchexec`); backends that spawn remote
        processes must carry it in their specs so the enclave is built
        identically wherever it lives.
        """

    def close(self, timeout: float = 5.0) -> None:
        """Release whatever the backend holds (worker processes, pipes)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class InlineBackend(ShardBackend):
    """Shards in the caller's process — the original zero-copy behaviour."""

    name = "inline"

    def create(
        self,
        shard_id: str,
        *,
        epc_bytes: int,
        capacity_keys: int,
        index: str = "hash",
        seed: int = 0,
        value_hint: int = 16,
        workers: int = 1,
        **config_overrides,
    ):
        from repro.cluster.shard import Shard

        return Shard(
            shard_id,
            epc_bytes=epc_bytes,
            capacity_keys=capacity_keys,
            index=index,
            seed=seed,
            value_hint=value_hint,
            workers=workers,
            **config_overrides,
        )


BackendSpec = Union[None, str, ShardBackend]

_default_backend: BackendSpec = None


def set_default_backend(backend: BackendSpec) -> BackendSpec:
    """Set the process-wide default backend; returns the previous value.

    Accepts a backend name, an instance (shared by every cluster built
    while it is current — its workers are released by ``backend.close()``),
    or ``None`` to fall back to the environment/``inline``.
    """
    global _default_backend
    previous = _default_backend
    if isinstance(backend, str):
        _check_name(backend)
    _default_backend = backend
    return previous


def default_backend_name() -> str:
    """The name the *next* ``resolve_backend(None)`` call would use."""
    backend = _default_backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "inline"
    return backend if isinstance(backend, str) else backend.name


def resolve_backend(backend: BackendSpec = None) -> ShardBackend:
    """Turn a backend name/instance/None into a ready :class:`ShardBackend`."""
    if backend is None:
        backend = _default_backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "inline"
    if isinstance(backend, ShardBackend):
        return backend
    _check_name(backend)
    if backend == "inline":
        return InlineBackend()
    if backend == "socket":
        from repro.cluster.sockbackend import SocketBackend

        return SocketBackend()
    from repro.cluster.procbackend import ProcessBackend

    return ProcessBackend()


def _check_name(name: str) -> None:
    if name not in BACKEND_NAMES:
        from repro.errors import UnknownBackendError

        raise UnknownBackendError(
            f"unknown shard backend {name!r}; choose from {BACKEND_NAMES}"
        )
