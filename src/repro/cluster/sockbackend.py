"""Socket-backed shards: enclaves in shard-host processes, reached by TCP.

The third :class:`~repro.cluster.backend.ShardBackend` implementation,
and the one that makes the cluster actually *distributed*: each shard or
replica enclave lives inside a **shard-host** process
(``python -m repro shard-host``) that is reachable only over TCP.  The
coordinator's handle, :class:`SocketShard`, speaks the same remote-shard
RPC vocabulary as the process backend (:mod:`repro.cluster.remote`), but
every byte of it crosses an **attested, encrypted session**:

* on connect, the handle runs the v2 handshake of
  :mod:`repro.cluster.session` against the host's gateway identity — DH
  key exchange, a quote bound to the handshake transcript, and the
  attested measurement checked against the deployment's
  **expected-measurement list**.  A host that fails attestation, answers
  in plaintext (downgrade), or is simply not on the list never receives
  a single RPC;
* established frames are AES-CTR + CMAC per direction with strict
  sequence advance, so an on-path adversary tampering or replaying the
  coordinator↔shard hop trips the same typed alarms as the client edge.
  The handle counts the alarm, severs the link, and surfaces
  :class:`~repro.errors.ShardUnreachableError` — the enclave is intact,
  the *link* is compromised, and the health monitor re-handshakes a
  fresh session rather than rebuilding an empty enclave;
* every RPC reply piggybacks the enclave meter's absolute
  :meth:`~repro.sgx.meter.CycleMeter.snapshot`, so simulated cycles stay
  bit-identical across inline, process and socket backends.  The *hop's*
  crypto is charged separately — to the host's
  :class:`~repro.cluster.session.SessionManager` meter and the handle's
  ``wire_meter`` — exactly like the front door's gateway enclave.

Topology: one shard-host serves many enclaves (one per connection, each
``spawn``\\ ed or ``attach``\\ ed by its handle), and one
:class:`SocketBackend` places handles round-robin across its host list.
Consecutive ``create`` calls land on distinct hosts, so a replica
group's members never share a host when at least two hosts exist — a
whole-host ``SIGKILL`` takes out at most one replica per group.

Failure semantics, sharpened by the transport:

* **crash** — the host process (or its enclave) is gone; RPCs fail with
  :class:`~repro.errors.ShardCrashedError`, and recovery means a fresh
  enclave (``spawn`` on a live host) plus a trusted-path re-sync;
* **partition** (:data:`repro.cluster.faults.PARTITION`) — the host is
  alive but unreachable: the handle black-holes frames (and connect
  attempts time out) until the partition heals, raising
  :class:`~repro.errors.ShardUnreachableError` meanwhile.  On heal,
  :meth:`SocketShard.reconnect` re-dials, re-handshakes, and
  ``attach``\\ es to the *same* enclave — state intact, no rebuild —
  after which the health monitor re-syncs only the writes it missed.

Locally spawned hosts (the default when no ``hosts`` are given) are real
OS processes; the parent learns each one's ephemeral port over a one-shot
pipe, and *everything* after that — spawn, flushes, re-sync, teardown —
crosses TCP only.  :func:`reap_leaked_hosts` mirrors
:func:`~repro.cluster.procbackend.reap_leaked_workers` for the test
suite's leak checks.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time
import weakref
from collections import Counter
from typing import List, Optional, Sequence, Tuple, Union

from repro.cluster.backend import ShardBackend
from repro.cluster.netutil import bind_with_retry
from repro.cluster.remote import (
    DEFAULT_CLOSE_TIMEOUT,
    DEFAULT_RPC_TIMEOUT,
    RemoteShardHandle,
    dispatch_shard_rpc,
)
from repro.cluster.session import ClientHandshake, SessionManager, measurement
from repro.crypto.keys import KeyMaterial
from repro.errors import (
    AriaError,
    ClusterConnectionError,
    ClusterTimeoutError,
    HandshakeError,
    ProtocolError,
    ReplayError,
    ShardCrashedError,
    ShardUnreachableError,
    TamperedFrameError,
)
from repro.server import protocol
from repro.sgx.meter import CycleMeter

#: ``host:port[,host:port...]`` — pre-started shard hosts to use when a
#: :class:`SocketBackend` is resolved by name (``ARIA_CLUSTER_BACKEND=socket``)
#: with no explicit host list.  Unset means spawn local hosts.
SHARD_HOSTS_ENV_VAR = "ARIA_SHARD_HOSTS"

#: ``hex[,hex...]`` — the expected-measurement list matching the env hosts.
SHARD_MEASUREMENTS_ENV_VAR = "ARIA_SHARD_MEASUREMENTS"

#: How many local shard-host processes a spawn-mode backend brings up.
DEFAULT_N_HOSTS = 2

DEFAULT_CONNECT_TIMEOUT = 5.0

_FRAME_LEN = struct.Struct("<I")

#: Every live SocketShard handle, whatever backend built it.
_LIVE_HANDLES: "weakref.WeakSet[SocketShard]" = weakref.WeakSet()

#: Every locally spawned shard-host process still possibly running.  A
#: strong set: a dropped backend must not let its hosts leak silently.
_LIVE_HOSTS: set = set()


def reap_leaked_hosts(timeout: float = DEFAULT_CLOSE_TIMEOUT) -> List[str]:
    """Close every socket handle, then stop every spawned shard host.

    Returns ``host:port`` for hosts that were still *running* (genuine
    leaks); already-dead hosts only need their process entry joined.
    The counterpart of :func:`~repro.cluster.procbackend
    .reap_leaked_workers` for the distributed backend's leak checks.
    """
    for handle in list(_LIVE_HANDLES):
        handle.close(timeout)
    leaked = []
    for host in list(_LIVE_HOSTS):
        if host.alive():
            leaked.append(f"{host.host}:{host.port}")
        host.stop(timeout)
    return sorted(leaked)


# ---------------------------------------------------------------------------
# Stream framing (length-prefixed v2 frames, both directions)
# ---------------------------------------------------------------------------


def _write_frame(sock: socket.socket, payload: bytes) -> None:
    try:
        sock.sendall(_FRAME_LEN.pack(len(payload)) + payload)
    except socket.timeout as exc:
        raise ClusterTimeoutError("shard-hop send timed out") from exc
    except OSError as exc:
        raise ClusterConnectionError(
            f"shard-hop send failed: {exc}") from exc


def _read_frame(sock: socket.socket) -> bytes:
    header = _read_exactly(sock, _FRAME_LEN.size)
    (frame_len,) = _FRAME_LEN.unpack(header)
    if frame_len == 0 or frame_len > protocol.MAX_FRAME_BYTES:
        raise ProtocolError(
            f"shard-hop frame of {frame_len} bytes exceeds "
            f"{protocol.MAX_FRAME_BYTES}")
    return _read_exactly(sock, frame_len)


def _read_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as exc:
            raise ClusterTimeoutError("shard-hop receive timed out") from exc
        except OSError as exc:
            raise ClusterConnectionError(
                f"shard-hop receive failed: {exc}") from exc
        if not chunk:
            raise ClusterConnectionError("shard host closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# The shard-host side
# ---------------------------------------------------------------------------


class ShardHost:
    """One shard-host process: a registry of enclaves behind a gateway.

    Accepts TCP connections, runs the v2 attested handshake for each
    (the host's :class:`~repro.cluster.session.SessionManager` *is* its
    gateway-enclave identity, derived from ``seed`` so deployments can
    pin the measurement), then serves sealed RPC frames.  Each
    connection drives exactly one enclave, named by its first command:

    * ``spawn``  — build a fresh :class:`~repro.cluster.shard.Shard`
      from a spec (replacing any previous enclave of that id);
    * ``attach`` — re-bind to an enclave that survived a severed
      connection (the partition-heal path; state intact).

    A connection dying *without* a ``shutdown``/``kill`` command leaves
    its enclave in the registry: losing the link must not lose the
    data — that asymmetry is what distinguishes a partition from a
    crash.  ``kill`` and ``shutdown`` remove the enclave.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 seed: int = 0, crypto: str = "fast"):
        self.host = host
        self.port = port
        self.seed = seed
        self.keys = KeyMaterial.from_seed(seed)
        self.sessions = SessionManager(keys=self.keys, crypto=crypto)
        self.alarms: Counter = Counter()
        self.connections_served = 0
        self._enclaves: dict = {}
        self._registry_lock = threading.Lock()
        self._crypto_lock = threading.Lock()
        self._shard_locks: dict = {}
        self._listener: Optional[socket.socket] = None
        self._conns: set = set()
        self._stopping = threading.Event()

    @property
    def measurement(self) -> bytes:
        """What an honest quote for this host's gateway attests."""
        return measurement(self.keys)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind (with the shared EADDRINUSE retry) and listen."""

        def bind():
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                listener.setsockopt(socket.SOL_SOCKET,
                                    socket.SO_REUSEADDR, 1)
                listener.bind((self.host, self.port))
            except OSError:
                listener.close()
                raise
            return listener

        self._listener = bind_with_retry(bind)
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        return self.host, self.port

    def serve_forever(self, max_conns: Optional[int] = None) -> None:
        """Accept and serve until :meth:`stop` (or ``max_conns`` served)."""
        if self._listener is None:
            self.start()
        served = 0
        while not self._stopping.is_set():
            if max_conns is not None and served >= max_conns:
                break
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            served += 1
            self.connections_served += 1
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for conn in list(self._conns):
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # -- one connection = one enclave's RPC stream --------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        self._conns.add(conn)
        session = None
        try:
            try:
                hello = _read_frame(conn)
                with self._crypto_lock:
                    reply, session = self.sessions.accept(hello)
            except (HandshakeError, ProtocolError):
                self.alarms["handshake"] += 1
                return  # nothing about a bad hello is ever trusted
            except (ClusterConnectionError, ClusterTimeoutError, OSError):
                return
            try:
                _write_frame(conn, reply)
            except (ClusterConnectionError, ClusterTimeoutError):
                return
            self._serve_session(conn, session)
        finally:
            if session is not None:
                with self._crypto_lock:
                    self.sessions.retire(session)
            self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _serve_session(self, conn: socket.socket, session) -> None:
        shard = None
        shard_id = None
        while not self._stopping.is_set():
            try:
                frame = _read_frame(conn)
            except (ClusterConnectionError, ClusterTimeoutError,
                    ProtocolError):
                return  # link gone: the enclave stays in the registry
            try:
                with self._crypto_lock:
                    payload = session.open(frame)
            except (TamperedFrameError, ReplayError):
                # An on-path attacker touched the hop; alarm and hang up.
                self.alarms["wire"] += 1
                return
            except (ProtocolError, AriaError):
                self.alarms["wire"] += 1
                return
            try:
                cmd, args = pickle.loads(payload)
            except Exception:
                self.alarms["wire"] += 1
                return
            if shard is None:
                shard, shard_id = self._bind_enclave(conn, session, cmd, args)
                continue
            if cmd in ("shutdown", "kill"):
                # Both remove the enclave; "kill" models the enclave (not
                # the host) dying, "shutdown" is the graceful release.
                with self._registry_lock:
                    self._enclaves.pop(shard_id, None)
                    self._shard_locks.pop(shard_id, None)
                self._reply(conn, session, "ok", None,
                            shard.meter.snapshot().to_dict())
                return
            lock = self._shard_locks.get(shard_id) or threading.Lock()
            try:
                with lock:
                    result = dispatch_shard_rpc(shard, cmd, args)
            except BaseException as exc:
                self._reply(conn, session, "err", exc,
                            shard.meter.snapshot().to_dict())
            else:
                self._reply(conn, session, "ok", result,
                            shard.meter.snapshot().to_dict())

    def _bind_enclave(self, conn, session, cmd: str, args: tuple):
        """Handle the stream's first command: spawn or attach."""
        from repro.cluster.shard import Shard

        if cmd == "spawn":
            (spec,) = args
            try:
                shard = Shard(
                    spec["shard_id"],
                    epc_bytes=spec["epc_bytes"],
                    capacity_keys=spec["capacity_keys"],
                    index=spec["index"],
                    seed=spec["seed"],
                    value_hint=spec["value_hint"],
                    workers=spec.get("workers", 1),
                    **spec["config_overrides"],
                )
            except BaseException as exc:
                self._reply(conn, session, "err", exc, None)
                return None, None
            with self._registry_lock:
                self._enclaves[shard.shard_id] = shard
                self._shard_locks[shard.shard_id] = threading.Lock()
        elif cmd == "attach":
            (shard_id,) = args
            with self._registry_lock:
                shard = self._enclaves.get(shard_id)
            if shard is None:
                self._reply(conn, session, "err", ShardCrashedError(
                    f"no enclave {shard_id!r} on this host (it was killed, "
                    "released, or the host restarted)"), None)
                return None, None
        else:
            self._reply(conn, session, "err", ProtocolError(
                f"first shard-host RPC must be spawn/attach, not {cmd!r}"),
                None)
            return None, None
        enclave = shard.store.enclave
        info = {
            "shard_id": shard.shard_id,
            "epc_bytes": shard.epc_bytes,
            "pid": os.getpid(),
            "host": (self.host, self.port),
            "cpu_hz": enclave.platform.cpu_hz,
            "encryption_key": enclave.keys.encryption_key,
            "mac_key": enclave.keys.mac_key,
            "config": shard.store.config,
        }
        self._reply(conn, session, "ready", info,
                    shard.meter.snapshot().to_dict())
        return shard, shard.shard_id

    def _reply(self, conn, session, tag, payload, meter_dict) -> None:
        try:
            body = pickle.dumps((tag, payload, meter_dict))
        except Exception:
            body = pickle.dumps((
                "err",
                AriaError(f"unpicklable {tag} payload: {payload!r}"),
                meter_dict,
            ))
        with self._crypto_lock:
            frame = session.seal(body)
        try:
            _write_frame(conn, frame)
        except (ClusterConnectionError, ClusterTimeoutError):
            pass  # peer is gone; nothing left to tell it


def _set_process_name() -> None:
    """Make shard hosts findable by name (``pgrep aria-shard-host``).

    CI sweeps for survivors after the suite, and operators get a
    greppable process table.  Linux-only; 15 chars is the comm limit and
    exactly fits.
    """
    try:
        with open("/proc/self/comm", "w") as fh:
            fh.write("aria-shard-host")
    except OSError:  # pragma: no cover - non-Linux
        pass


def run_shard_host(*, host: str = "127.0.0.1", port: int = 0, seed: int = 0,
                   crypto: str = "fast", max_conns: Optional[int] = None,
                   announce=print) -> ShardHost:
    """Start a shard host, announce its address + measurement, and serve.

    The blocking entrypoint behind ``python -m repro shard-host``.  The
    announced measurement is what operators put on coordinators'
    expected-measurement lists.
    """
    _set_process_name()
    shard_host = ShardHost(host=host, port=port, seed=seed, crypto=crypto)
    bound_host, bound_port = shard_host.start()
    announce(f"shard-host listening on {bound_host}:{bound_port}")
    announce(f"measurement: {shard_host.measurement.hex()}")
    try:
        shard_host.serve_forever(max_conns=max_conns)
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        shard_host.stop()
    return shard_host


def _host_main(pipe, host: str, port: int, seed: int, crypto: str) -> None:
    """Child-process body for a locally spawned shard host.

    The pipe is a one-shot control channel: it reports the bound
    ephemeral port (or a bind failure) back to the parent and is closed
    before the first enclave exists.  All shard traffic crosses TCP.
    """
    _set_process_name()
    shard_host = ShardHost(host=host, port=port, seed=seed, crypto=crypto)
    try:
        address = shard_host.start()
    except BaseException as exc:
        try:
            pipe.send(("err", exc))
        finally:
            pipe.close()
        return
    pipe.send(("ok", address))
    pipe.close()
    shard_host.serve_forever()


class SpawnedHost:
    """Parent-side record of one locally spawned shard-host process."""

    def __init__(self, ctx, *, host: str = "127.0.0.1", port: int = 0,
                 seed: int = 0, crypto: str = "fast"):
        self.seed = seed
        self.measurement = measurement(KeyMaterial.from_seed(seed))
        parent_pipe, child_pipe = ctx.Pipe()
        self.process = ctx.Process(
            target=_host_main,
            args=(child_pipe, host, port, seed, crypto),
            daemon=True,
            name=f"aria-shard-host-{seed}",
        )
        self.process.start()
        child_pipe.close()
        try:
            tag, payload = parent_pipe.recv()
        except (EOFError, OSError) as exc:
            self.stop()
            raise ClusterConnectionError(
                "shard host died before binding") from exc
        finally:
            parent_pipe.close()
        if tag != "ok":
            self.stop()
            raise payload
        self.host, self.port = payload
        _LIVE_HOSTS.add(self)

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the host process: every enclave on it dies at once."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(DEFAULT_CLOSE_TIMEOUT)

    def stop(self, timeout: float = DEFAULT_CLOSE_TIMEOUT) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck host
            self.process.kill()
            self.process.join(timeout)
        _LIVE_HOSTS.discard(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive() else "down"
        return f"SpawnedHost({self.host}:{self.port}, seed={self.seed}, {state})"


# ---------------------------------------------------------------------------
# The parent-side handle
# ---------------------------------------------------------------------------


class SocketShard(RemoteShardHandle):
    """Shard handle for an enclave behind an attested TCP session.

    The same RPC surface as :class:`~repro.cluster.procbackend
    .ProcessShard` — flushes (plain and pipelined), the trusted path, the
    absolute meter mirror — but the transport is a
    :class:`~repro.cluster.session.SecureSession` over TCP, and the
    handle additionally models the link itself: :meth:`partition` black-
    holes frames without touching the enclave, and :meth:`reconnect`
    re-dials, re-handshakes, and re-attaches after a heal.
    """

    def __init__(
        self,
        spec: dict,
        endpoint: Tuple[str, int],
        *,
        expected_measurements: Optional[Sequence[bytes]] = None,
        crypto: str = "fast",
        rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ):
        super().__init__(spec["shard_id"])
        self._spec = spec
        self.endpoint = tuple(endpoint)
        self._expected = (tuple(expected_measurements)
                          if expected_measurements else None)
        self._crypto = crypto
        self._rpc_timeout = rpc_timeout
        self._connect_timeout = connect_timeout
        #: The parent's side of the hop's crypto, priced like the client
        #: edge's accounting — never merged into the shard meter, so the
        #: enclave's simulated cycles stay backend-invariant.
        self.wire_meter = CycleMeter()
        self.wire_alarms: Counter = Counter()
        self.attested_measurement: Optional[bytes] = None
        self.partitioned = False
        self._heal_at = 0.0
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._session = None
        self._dial()
        self._attach(self._call("spawn", (spec,)))
        _LIVE_HANDLES.add(self)

    # -- the attested hop ---------------------------------------------------------

    def _dial(self) -> None:
        """Connect and run the handshake; pins the measurement list."""
        host, port = self.endpoint
        try:
            sock = socket.create_connection((host, port),
                                            timeout=self._connect_timeout)
        except OSError as exc:
            raise ClusterConnectionError(
                f"shard host {host}:{port} unreachable: {exc}") from exc
        try:
            sock.settimeout(self._rpc_timeout)
            handshake = ClientHandshake(crypto=self._crypto,
                                        meter=self.wire_meter)
            _write_frame(sock, handshake.hello())
            try:
                reply = _read_frame(sock)
            except (ClusterConnectionError, ClusterTimeoutError) as exc:
                raise HandshakeError(
                    f"shard host {host}:{port} refused the handshake: {exc}"
                ) from exc
            session = handshake.finish(reply)
            attested = handshake.attested_measurement
            if self._expected is not None and attested not in self._expected:
                raise HandshakeError(
                    f"shard host {host}:{port} attests measurement "
                    f"{attested.hex()}, which is not on the expected-"
                    f"measurement list")
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self._session = session
        self.attested_measurement = attested

    def _sever(self) -> None:
        """Drop the link (and its session), leaving the enclave's fate
        to whoever calls next: reconnect for partitions, restart for
        crashes."""
        self._session = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    # -- RPC plumbing -------------------------------------------------------------

    def _send(self, cmd: str, args: tuple = ()) -> None:
        if self.crashed or self.closed:
            raise ShardCrashedError(
                f"shard {self.shard_id} is down (host connection dead)")
        if self.partitioned:
            raise ShardUnreachableError(
                f"shard {self.shard_id} is unreachable "
                f"(partition: frames black-holed)")
        try:
            frame = self._session.seal(pickle.dumps((cmd, args)))
            _write_frame(self._sock, frame)
        except (ClusterConnectionError, ClusterTimeoutError, AttributeError):
            self._mark_crashed()
            raise ShardCrashedError(
                f"shard {self.shard_id} is down (host connection lost)")

    def _recv(self, timeout: float = DEFAULT_RPC_TIMEOUT):
        if self.partitioned:
            # A pipelined collect racing a partition: the reply frame is
            # black-holed with everything else on the link.
            raise ShardUnreachableError(
                f"shard {self.shard_id} is unreachable "
                f"(partition: frames black-holed)")
        try:
            frame = _read_frame(self._sock)
        except ClusterTimeoutError:
            self._mark_crashed()
            raise ShardCrashedError(
                f"shard {self.shard_id} host unresponsive after "
                f"{self._rpc_timeout}s")
        except (ClusterConnectionError, ProtocolError, AttributeError):
            self._mark_crashed()
            raise ShardCrashedError(
                f"shard {self.shard_id} is down (host connection died)")
        try:
            payload = self._session.open(frame)
        except (TamperedFrameError, ReplayError) as exc:
            # The hop is under attack: alarm, sever the link, and let the
            # health monitor re-handshake — the enclave itself is intact.
            kind = "replay" if isinstance(exc, ReplayError) else "tamper"
            self.wire_alarms[kind] += 1
            self._sever()
            raise ShardUnreachableError(
                f"shard {self.shard_id} link compromised "
                f"({kind}ed frame): {exc}") from exc
        tag, payload, meter_dict = pickle.loads(payload)
        self._absorb_meter(meter_dict)
        if tag == "err":
            if isinstance(payload, BaseException):
                raise payload
            raise AriaError(str(payload))  # pragma: no cover - degraded path
        return payload

    def _mark_crashed(self) -> None:
        self.crashed = True
        self._pending = 0
        self._sever()

    # -- partition / heal / reconnect ----------------------------------------------

    def partition(self, duration: float = 0.0) -> None:
        """Make the host unreachable: frames black-hole, connects fail.

        The enclave keeps running on the far side.  With ``duration`` 0
        the partition is immediately healable (the next
        :meth:`reconnect` succeeds); otherwise reconnect attempts inside
        the window fail like timed-out connects.
        """
        self.partitioned = True
        self._heal_at = time.monotonic() + duration
        self._pending = 0
        self._sever()

    def heal(self) -> None:
        """Lift the partition window (the link becomes dialable again)."""
        self._heal_at = 0.0

    def reconnect(self) -> bool:
        """Re-dial, re-handshake, and re-attach to the same enclave.

        The partition-heal path: returns True when the host answered,
        attested, and still holds this shard's enclave — state intact,
        no re-spawn.  Returns False while the partition persists; marks
        the handle crashed (so the monitor falls back to a full restart
        + re-sync) when the host is genuinely gone, fails attestation,
        or no longer has the enclave.
        """
        if self.closed:
            return False
        if self.partitioned and time.monotonic() < self._heal_at:
            return False  # still black-holed: a connect would time out
        self.partitioned = False  # the link is dialable again
        self._sever()
        try:
            self._dial()
            info = self._call_over_fresh_link("attach", (self.shard_id,))
        except (ShardCrashedError, ClusterConnectionError,
                ClusterTimeoutError, HandshakeError, ProtocolError):
            self._mark_crashed()
            return False
        self._info = info
        self.crashed = False
        self._pending = 0
        self.reconnects += 1
        return True

    def _call_over_fresh_link(self, cmd: str, args: tuple):
        """One RPC bypassing the crashed guard (used only while
        re-establishing the link)."""
        frame = self._session.seal(pickle.dumps((cmd, args)))
        _write_frame(self._sock, frame)
        return self._recv()

    # -- lifecycle ----------------------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        """The shard-host process's pid (shared by its other enclaves)."""
        return self._info.get("pid")

    def kill(self) -> None:
        """Kill the enclave (not the host): it vanishes from the registry.

        Best-effort over the wire — behind a partition the kill cannot be
        delivered, and the stranded enclave is swept when its host stops.
        """
        if (not self.crashed and not self.closed and not self.partitioned
                and self._session is not None):
            try:
                self._send("kill")
                self._recv()
            except (AriaError, OSError):
                pass
        self.crashed = True
        self._pending = 0
        self._sever()

    def close(self, timeout: float = DEFAULT_CLOSE_TIMEOUT) -> None:
        """Graceful release: drain pipelined flushes, free the enclave."""
        if self.closed:
            return
        if (not self.crashed and not self.partitioned
                and self._session is not None):
            try:
                self._sock.settimeout(timeout)
                for _ in range(self._pending):
                    self._recv()
                self._send("shutdown")
                self._recv()
            except (AriaError, OSError):
                pass
        self.closed = True
        self._pending = 0
        self._sever()
        _LIVE_HANDLES.discard(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host, port = self.endpoint
        state = ("closed" if self.closed else
                 "down" if self.crashed else
                 "partitioned" if self.partitioned else "up")
        return (f"SocketShard({self.shard_id!r}, "
                f"host={host}:{port}, {state})")


# ---------------------------------------------------------------------------
# The backend factory
# ---------------------------------------------------------------------------


def _parse_hosts(spec: Union[str, Sequence]) -> List[Tuple[str, int]]:
    """``"h:p,h:p"`` or an iterable of ``"h:p"``/(h, p) → [(h, p), ...]."""
    if isinstance(spec, str):
        spec = [part for part in spec.split(",") if part.strip()]
    endpoints = []
    for entry in spec:
        if isinstance(entry, str):
            host, _, port = entry.strip().rpartition(":")
            if not host or not port.isdigit():
                raise ValueError(f"bad shard host {entry!r}; want host:port")
            endpoints.append((host, int(port)))
        else:
            host, port = entry
            endpoints.append((str(host), int(port)))
    return endpoints


def _parse_measurements(spec: Union[str, Sequence]) -> List[bytes]:
    if isinstance(spec, str):
        spec = [part for part in spec.split(",") if part.strip()]
    parsed = []
    for entry in spec:
        parsed.append(bytes.fromhex(entry) if isinstance(entry, str)
                      else bytes(entry))
    return parsed


class SocketBackend(ShardBackend):
    """Shard enclaves in shard-host processes, reachable only over TCP.

    Two modes:

    * **spawn mode** (default): lazily brings up ``n_hosts`` local
      shard-host processes on ephemeral ports and computes their
      expected measurements from the seeds it chose — a self-contained
      multi-port topology for tests and benchmarks.  A host found dead
      at ``create`` time is respawned (fresh process, same identity
      seed, new port).
    * **static mode** (``hosts=...`` or ``$ARIA_SHARD_HOSTS``): connects
      to pre-started ``python -m repro shard-host`` processes; the
      deployment supplies the expected-measurement list
      (``expected_measurements=`` / ``$ARIA_SHARD_MEASUREMENTS``), and
      ``None`` means trust-on-first-use (quotes still verified against
      the attestation root and transcript).

    Handles are placed round-robin over the host list, so consecutive
    creates — a replica group's members, in particular — land on
    distinct hosts whenever there are at least two.
    """

    name = "socket"

    def __init__(
        self,
        *,
        hosts: Union[None, str, Sequence] = None,
        expected_measurements: Union[None, str, Sequence] = None,
        n_hosts: int = DEFAULT_N_HOSTS,
        seed: int = 0,
        crypto: str = "fast",
        rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        start_method: Optional[str] = None,
    ):
        if hosts is None:
            hosts = os.environ.get(SHARD_HOSTS_ENV_VAR) or None
        if expected_measurements is None:
            expected_measurements = (
                os.environ.get(SHARD_MEASUREMENTS_ENV_VAR) or None)
        self._static_hosts = _parse_hosts(hosts) if hosts else None
        self._pinned = (_parse_measurements(expected_measurements)
                        if expected_measurements else None)
        if n_hosts < 1:
            raise ValueError("a socket backend needs at least one host")
        self._n_hosts = n_hosts
        self._seed = seed
        self._crypto = crypto
        self._rpc_timeout = rpc_timeout
        self._connect_timeout = connect_timeout
        self._spawned: List[SpawnedHost] = []
        self._next = 0
        self._handles: "weakref.WeakSet[SocketShard]" = weakref.WeakSet()
        from repro.cluster.procbackend import default_start_method

        self._ctx = multiprocessing.get_context(
            start_method or default_start_method())

    # -- host pool ----------------------------------------------------------------

    @property
    def spawn_mode(self) -> bool:
        return self._static_hosts is None

    def _ensure_hosts(self) -> None:
        if not self.spawn_mode or self._spawned:
            return
        for i in range(self._n_hosts):
            self._spawned.append(SpawnedHost(
                self._ctx, seed=self._seed + 7321 * i + 1,
                crypto=self._crypto))

    def endpoints(self) -> List[Tuple[str, int]]:
        """The current host list (spawning lazily in spawn mode)."""
        if self._static_hosts is not None:
            return list(self._static_hosts)
        self._ensure_hosts()
        return [(h.host, h.port) for h in self._spawned]

    def hosts(self) -> List[SpawnedHost]:
        """Spawn mode only: the live host records (for chaos tests)."""
        self._ensure_hosts()
        return list(self._spawned)

    def _pick(self, index: int):
        """Endpoint + measurement list for the ``index``-th placement,
        respawning a dead spawned host on the way."""
        if self._static_hosts is not None:
            endpoint = self._static_hosts[index % len(self._static_hosts)]
            return endpoint, self._pinned
        self._ensure_hosts()
        slot = index % len(self._spawned)
        host = self._spawned[slot]
        if not host.alive():
            host.stop()
            host = SpawnedHost(self._ctx, seed=host.seed, crypto=self._crypto)
            self._spawned[slot] = host
        return (host.host, host.port), [h.measurement for h in self._spawned]

    # -- the factory --------------------------------------------------------------

    def create(
        self,
        shard_id: str,
        *,
        epc_bytes: int,
        capacity_keys: int,
        index: str = "hash",
        seed: int = 0,
        value_hint: int = 16,
        workers: int = 1,
        **config_overrides,
    ) -> SocketShard:
        spec = {
            "shard_id": shard_id,
            "epc_bytes": epc_bytes,
            "capacity_keys": capacity_keys,
            "index": index,
            "seed": seed,
            "value_hint": value_hint,
            "workers": workers,
            "config_overrides": config_overrides,
        }
        attempts = max(1, len(self.endpoints()))
        last_error: Optional[Exception] = None
        for _ in range(attempts):
            placement = self._next
            self._next += 1
            endpoint, expected = self._pick(placement)
            try:
                handle = SocketShard(
                    spec, endpoint,
                    expected_measurements=expected,
                    crypto=self._crypto,
                    rpc_timeout=self._rpc_timeout,
                    connect_timeout=self._connect_timeout,
                )
            except (ClusterConnectionError, ClusterTimeoutError) as exc:
                last_error = exc  # host down: try the next one
                continue
            self._handles.add(handle)
            return handle
        raise ClusterConnectionError(
            f"no shard host reachable for {shard_id!r}: {last_error}")

    def close(self, timeout: float = DEFAULT_CLOSE_TIMEOUT) -> None:
        for handle in list(self._handles):
            handle.close(timeout)
        for host in self._spawned:
            host.stop(timeout)
        self._spawned = []
