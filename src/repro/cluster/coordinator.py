"""Routes decoded requests to shards and batch-flushes per shard.

The coordinator is the *untrusted* front half of the serving layer: it
decodes frames once, consults the :class:`~repro.cluster.ring.HashRing`,
and accumulates a per-shard buffer.  When a shard's buffer reaches
``batch_window`` (or the caller drains), the whole buffer crosses that
shard's enclave boundary through the existing ECALL-amortized path
(:meth:`repro.server.server.AriaServer.flush_batch`) — one ECALL per
flush, not per request, which is the whole point (Section II-A: the
boundary crossing dominates; Harnik et al. measure the same on real
hardware).

Ordering contract: responses are returned positionally (response *i*
answers request *i*), and because a key always routes to exactly one shard
whose buffer preserves arrival order, per-key operation order is preserved
even though different shards flush independently.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.bench.harness import PAPER_EPC_BYTES
from repro.cluster.backend import BackendSpec
from repro.cluster.ring import DEFAULT_VNODES, HashRing, VnodeSpec
from repro.cluster.shard import Shard, build_shards
from repro.cluster.stats import ClusterStats
from repro.errors import (
    AriaError,
    IntegrityError,
    KeyNotFoundError,
    ReplicaUnavailableError,
)
from repro.server import protocol
from repro.server.protocol import (
    OpCode,
    Request,
    Response,
    Status,
)

DEFAULT_BATCH_WINDOW = 32


class _Flight:
    """One dispatched shard flush awaiting collection.

    Inline (synchronous) servers execute at dispatch and carry their
    result; process-backed servers carry a ticket, so independent shards'
    batches run concurrently in their workers and are collected after
    the whole stream has been dispatched.
    """

    __slots__ = ("shard_id", "seqs", "flushed", "error", "ticket", "server")

    def __init__(self, shard_id, seqs, *, flushed=None, error=None,
                 ticket=None, server=None):
        self.shard_id = shard_id
        self.seqs = seqs
        self.flushed = flushed
        self.error = error
        self.ticket = ticket
        self.server = server


class ClusterCoordinator:
    """The sharded serving layer's routing + batching brain."""

    def __init__(
        self,
        shards: List[Shard],
        *,
        ring: Optional[HashRing] = None,
        vnodes: VnodeSpec = DEFAULT_VNODES,
        batch_window: int = DEFAULT_BATCH_WINDOW,
    ):
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        if batch_window < 1:
            raise ValueError("batch_window must be >= 1")
        self.shards: Dict[str, Shard] = {s.shard_id: s for s in shards}
        if len(self.shards) != len(shards):
            raise ValueError("duplicate shard ids")
        self.ring = ring or HashRing(self.shards, vnodes=vnodes)
        if set(self.ring.shards()) != set(self.shards):
            raise ValueError("ring membership does not match the shard set")
        self.batch_window = batch_window
        self._balancer = None
        self._health_monitor = None
        #: The ShardBackend that built these shards, when the builder
        #: passed it along; :meth:`close` releases it (worker processes,
        #: spawned shard hosts) after the shards themselves.
        self.backend = None
        self.ops_routed = 0
        #: Whole-flush failures converted to per-request error responses.
        self.flush_failures = 0

    # -- wiring -------------------------------------------------------------------

    def attach_balancer(self, balancer) -> None:
        """Give the balancer a look after every executed batch."""
        self._balancer = balancer

    def attach_health_monitor(self, monitor) -> None:
        """Let a HealthMonitor inspect replicas after every executed batch."""
        self._health_monitor = monitor

    def shard_for(self, key: bytes) -> Shard:
        return self.shards[self.ring.route(key)]

    def shard_list(self) -> List[Shard]:
        return [self.shards[shard_id] for shard_id in sorted(self.shards)]

    # -- the batched request path -------------------------------------------------

    def execute(self, requests: Iterable[Request]) -> List[Response]:
        """Route, batch, flush; returns responses positionally.

        Buffers per shard and flushes a shard the moment its buffer fills,
        so a stream larger than ``batch_window * n_shards`` stays at a
        bounded memory footprint instead of materializing per-shard
        sub-streams.  Inline shards execute at dispatch; process-backed
        shards execute in their workers while dispatch continues, and
        their responses are collected afterwards — either way a shard's
        batches run in dispatch order, preserving per-key ordering.
        """
        requests = list(requests)
        responses: List[Optional[Response]] = [None] * len(requests)
        pending: Dict[str, List[int]] = {sid: [] for sid in self.shards}
        inflight: List[_Flight] = []
        for seq, request in enumerate(requests):
            if request.opcode == OpCode.HEALTH:
                # Answered at the front door, never routed to an enclave.
                responses[seq] = self.health_response()
                continue
            shard_id = self.ring.route(request.key)
            bucket = pending[shard_id]
            bucket.append(seq)
            if len(bucket) >= self.batch_window:
                inflight.append(self._dispatch(shard_id, bucket, requests))
                pending[shard_id] = []
        for shard_id, bucket in pending.items():
            if bucket:
                inflight.append(self._dispatch(shard_id, bucket, requests))
        for flight in inflight:
            self._collect(flight, responses)
        self.ops_routed += len(requests)
        if self._balancer is not None:
            self._balancer.observe(len(requests))
        if self._health_monitor is not None:
            self._health_monitor.observe(len(requests))
        return responses  # type: ignore[return-value]  # all slots filled

    def _dispatch(self, shard_id: str, seqs: List[int],
                  requests: List[Request]) -> _Flight:
        """Hand one shard its batch; pipelined when the server supports it."""
        shard = self.shards[shard_id]
        shard.ops_routed += len(seqs)
        batch = [requests[s] for s in seqs]
        submit = getattr(shard.server, "flush_submit", None)
        try:
            if submit is None:
                return _Flight(shard_id, seqs,
                               flushed=list(shard.server.flush_batch(batch)))
            return _Flight(shard_id, seqs, ticket=submit(batch),
                           server=shard.server)
        except AriaError as exc:
            return _Flight(shard_id, seqs, error=exc)

    def _collect(self, flight: _Flight,
                 responses: List[Optional[Response]]) -> None:
        """Settle one flight; a failing shard costs error responses, not
        the batch: every request it owned gets ``Status.UNAVAILABLE`` and
        the other shards' response slots are untouched."""
        flushed = flight.flushed
        if flight.error is None and flushed is None:
            try:
                flushed = flight.server.flush_collect(flight.ticket)
            except AriaError as exc:
                flight.error = exc
        if flight.error is not None:
            self.flush_failures += 1
            error = Response(
                Status.UNAVAILABLE,
                f"shard {flight.shard_id} failed: "
                f"{type(flight.error).__name__}".encode(),
            )
            for seq in flight.seqs:
                responses[seq] = error
            return
        for seq, response in zip(flight.seqs, flushed):
            responses[seq] = response

    # -- convenience single-request API (one ECALL each, like AriaClient) --------

    def get(self, key: bytes) -> bytes:
        response = self._single(protocol.get(key))
        if response.status == Status.NOT_FOUND:
            raise KeyNotFoundError(key)
        if response.status == Status.INTEGRITY_FAILURE:
            raise IntegrityError(response.value.decode())
        if response.status == Status.UNAVAILABLE:
            raise ReplicaUnavailableError(response.value.decode())
        return response.value

    def put(self, key: bytes, value: bytes) -> None:
        response = self._single(protocol.put(key, value))
        if response.status == Status.INTEGRITY_FAILURE:
            raise IntegrityError(response.value.decode())
        if response.status == Status.UNAVAILABLE:
            raise ReplicaUnavailableError(response.value.decode())

    def delete(self, key: bytes) -> None:
        response = self._single(protocol.delete(key))
        if response.status == Status.NOT_FOUND:
            raise KeyNotFoundError(key)
        if response.status == Status.INTEGRITY_FAILURE:
            raise IntegrityError(response.value.decode())
        if response.status == Status.UNAVAILABLE:
            raise ReplicaUnavailableError(response.value.decode())

    def _single(self, request: Request) -> Response:
        shard = self.shard_for(request.key)
        shard.ops_routed += 1
        self.ops_routed += 1
        try:
            [response] = shard.server.flush_batch([request])
        except AriaError as exc:
            self.flush_failures += 1
            response = Response(
                Status.UNAVAILABLE,
                f"shard {shard.shard_id} failed: "
                f"{type(exc).__name__}".encode(),
            )
        return response

    # -- health -------------------------------------------------------------------

    def health_response(self) -> Response:
        """The OpCode.HEALTH reply: a JSON cluster summary (no enclave touched).

        Per shard: ``"up"``/``"down"`` for plain shards (a plain shard is
        down only when crashed by fault injection), or a replica-state map
        for replica groups.
        """
        shards: Dict[str, object] = {}
        up = 0
        for shard in self.shard_list():
            replicas = getattr(shard, "replicas", None)
            if replicas is not None:
                states = {r.replica_id: r.state.value for r in replicas}
                shards[shard.shard_id] = states
                up += any(state == "up" for state in states.values())
            else:
                alive = not getattr(shard, "crashed", False)
                shards[shard.shard_id] = "up" if alive else "down"
                up += alive
        summary = {
            "shards": shards,
            "n_shards": len(self.shards),
            "n_serving": up,
            "ops_routed": self.ops_routed,
            "flush_failures": self.flush_failures,
        }
        return Response(Status.OK,
                        json.dumps(summary, sort_keys=True).encode())

    # -- bulk load (unmetered, mirrors AriaStore.load) ----------------------------

    def load(self, pairs: Iterable[tuple]) -> None:
        """Partition a dataset by the ring and bulk-load each shard."""
        per_shard: Dict[str, list] = {sid: [] for sid in self.shards}
        for key, value in pairs:
            per_shard[self.ring.route(key)].append((key, value))
        for shard_id, shard_pairs in per_shard.items():
            if shard_pairs:
                self.shards[shard_id].store.load(shard_pairs)

    # -- reporting ----------------------------------------------------------------

    def total_keys(self) -> int:
        return sum(len(s.store) for s in self.shards.values())

    def stats(self) -> ClusterStats:
        """A fresh delta window over every shard (see ClusterStats)."""
        return ClusterStats(self.shard_list())

    # -- lifecycle ----------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Release every shard's backing resources.

        Inline shards are a no-op; process-backed shards get a graceful
        shutdown (join → terminate → kill, each bounded by ``timeout``),
        so callers — and pytest runs — never leak worker processes.
        Idempotent; the coordinator must not be used afterwards.
        """
        for shard in self.shard_list():
            close = getattr(shard, "close", None)
            if close is not None:
                close(timeout)
        if self.backend is not None:
            self.backend.close(timeout)


def build_cluster(
    n_shards: int,
    *,
    n_keys: int,
    cluster_epc_bytes: int = PAPER_EPC_BYTES,
    scale: int = 1,
    index: str = "hash",
    vnodes: VnodeSpec = DEFAULT_VNODES,
    batch_window: int = DEFAULT_BATCH_WINDOW,
    seed: int = 0,
    backend: BackendSpec = None,
    **shard_overrides,
) -> ClusterCoordinator:
    """One-call cluster: N shards splitting one EPC budget, plus a ring.

    ``scale`` divides the EPC budget like the bench harness's
    ``scaled_platform`` (the keyspace is the caller's to scale), so
    ``build_cluster(4, n_keys=10_000, scale=1024)`` is the Fig 16a
    4-tenant operating point generalized to a routed cluster.
    ``backend`` selects ``"inline"``, ``"process"`` or ``"socket"`` shard
    hosting (see :mod:`repro.cluster.backend`); non-inline clusters should
    be released with :meth:`ClusterCoordinator.close`, which also shuts
    down whatever the backend spawned (workers, shard hosts).
    """
    from repro.cluster.backend import resolve_backend

    factory = resolve_backend(backend)
    shards = build_shards(
        n_shards,
        cluster_epc_bytes=max(4096 * n_shards, cluster_epc_bytes // scale),
        n_keys=n_keys,
        index=index,
        seed=seed,
        backend=factory,
        **shard_overrides,
    )
    coordinator = ClusterCoordinator(shards, vnodes=vnodes,
                                     batch_window=batch_window)
    coordinator.backend = factory
    return coordinator
