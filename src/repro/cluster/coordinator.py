"""Routes decoded requests to shards and batch-flushes per shard.

The coordinator is the *untrusted* front half of the serving layer: it
decodes frames once, consults the :class:`~repro.cluster.ring.HashRing`,
and accumulates a per-shard buffer.  When a shard's buffer reaches
``batch_window`` (or the caller drains), the whole buffer crosses that
shard's enclave boundary through the existing ECALL-amortized path
(:meth:`repro.server.server.AriaServer.flush_batch`) — one ECALL per
flush, not per request, which is the whole point (Section II-A: the
boundary crossing dominates; Harnik et al. measure the same on real
hardware).

Ordering contract: responses are returned positionally (response *i*
answers request *i*), and because a key always routes to exactly one shard
whose buffer preserves arrival order, per-key operation order is preserved
even though different shards flush independently.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.bench.harness import PAPER_EPC_BYTES
from repro.cluster.ring import DEFAULT_VNODES, HashRing, VnodeSpec
from repro.cluster.shard import Shard, build_shards
from repro.cluster.stats import ClusterStats
from repro.errors import IntegrityError, KeyNotFoundError
from repro.server import protocol
from repro.server.protocol import (
    STATUS_INTEGRITY_FAILURE,
    STATUS_NOT_FOUND,
    Request,
    Response,
)

DEFAULT_BATCH_WINDOW = 32


class ClusterCoordinator:
    """The sharded serving layer's routing + batching brain."""

    def __init__(
        self,
        shards: List[Shard],
        *,
        ring: Optional[HashRing] = None,
        vnodes: VnodeSpec = DEFAULT_VNODES,
        batch_window: int = DEFAULT_BATCH_WINDOW,
    ):
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        if batch_window < 1:
            raise ValueError("batch_window must be >= 1")
        self.shards: Dict[str, Shard] = {s.shard_id: s for s in shards}
        if len(self.shards) != len(shards):
            raise ValueError("duplicate shard ids")
        self.ring = ring or HashRing(self.shards, vnodes=vnodes)
        if set(self.ring.shards()) != set(self.shards):
            raise ValueError("ring membership does not match the shard set")
        self.batch_window = batch_window
        self._balancer = None
        self.ops_routed = 0

    # -- wiring -------------------------------------------------------------------

    def attach_balancer(self, balancer) -> None:
        """Give the balancer a look after every executed batch."""
        self._balancer = balancer

    def shard_for(self, key: bytes) -> Shard:
        return self.shards[self.ring.route(key)]

    def shard_list(self) -> List[Shard]:
        return [self.shards[shard_id] for shard_id in sorted(self.shards)]

    # -- the batched request path -------------------------------------------------

    def execute(self, requests: Iterable[Request]) -> List[Response]:
        """Route, batch, flush; returns responses positionally.

        Buffers per shard and flushes a shard the moment its buffer fills,
        so a stream larger than ``batch_window * n_shards`` stays at a
        bounded memory footprint instead of materializing per-shard
        sub-streams.
        """
        requests = list(requests)
        responses: List[Optional[Response]] = [None] * len(requests)
        pending: Dict[str, List[int]] = {sid: [] for sid in self.shards}
        for seq, request in enumerate(requests):
            shard_id = self.ring.route(request.key)
            bucket = pending[shard_id]
            bucket.append(seq)
            if len(bucket) >= self.batch_window:
                self._flush(shard_id, bucket, requests, responses)
                pending[shard_id] = []
        for shard_id, bucket in pending.items():
            if bucket:
                self._flush(shard_id, bucket, requests, responses)
        self.ops_routed += len(requests)
        if self._balancer is not None:
            self._balancer.observe(len(requests))
        return responses  # type: ignore[return-value]  # all slots filled

    def _flush(self, shard_id: str, seqs: List[int],
               requests: List[Request],
               responses: List[Optional[Response]]) -> None:
        shard = self.shards[shard_id]
        shard.ops_routed += len(seqs)
        for seq, response in zip(
            seqs, shard.server.flush_batch(requests[s] for s in seqs)
        ):
            responses[seq] = response

    # -- convenience single-request API (one ECALL each, like AriaClient) --------

    def get(self, key: bytes) -> bytes:
        response = self._single(protocol.get(key))
        if response.status == STATUS_NOT_FOUND:
            raise KeyNotFoundError(key)
        if response.status == STATUS_INTEGRITY_FAILURE:
            raise IntegrityError(response.value.decode())
        return response.value

    def put(self, key: bytes, value: bytes) -> None:
        response = self._single(protocol.put(key, value))
        if response.status == STATUS_INTEGRITY_FAILURE:
            raise IntegrityError(response.value.decode())

    def delete(self, key: bytes) -> None:
        response = self._single(protocol.delete(key))
        if response.status == STATUS_NOT_FOUND:
            raise KeyNotFoundError(key)
        if response.status == STATUS_INTEGRITY_FAILURE:
            raise IntegrityError(response.value.decode())

    def _single(self, request: Request) -> Response:
        shard = self.shard_for(request.key)
        shard.ops_routed += 1
        self.ops_routed += 1
        [response] = shard.server.flush_batch([request])
        return response

    # -- bulk load (unmetered, mirrors AriaStore.load) ----------------------------

    def load(self, pairs: Iterable[tuple]) -> None:
        """Partition a dataset by the ring and bulk-load each shard."""
        per_shard: Dict[str, list] = {sid: [] for sid in self.shards}
        for key, value in pairs:
            per_shard[self.ring.route(key)].append((key, value))
        for shard_id, shard_pairs in per_shard.items():
            if shard_pairs:
                self.shards[shard_id].store.load(shard_pairs)

    # -- reporting ----------------------------------------------------------------

    def total_keys(self) -> int:
        return sum(len(s.store) for s in self.shards.values())

    def stats(self) -> ClusterStats:
        """A fresh delta window over every shard (see ClusterStats)."""
        return ClusterStats(self.shard_list())


def build_cluster(
    n_shards: int,
    *,
    n_keys: int,
    cluster_epc_bytes: int = PAPER_EPC_BYTES,
    scale: int = 1,
    index: str = "hash",
    vnodes: VnodeSpec = DEFAULT_VNODES,
    batch_window: int = DEFAULT_BATCH_WINDOW,
    seed: int = 0,
    **shard_overrides,
) -> ClusterCoordinator:
    """One-call cluster: N shards splitting one EPC budget, plus a ring.

    ``scale`` divides the EPC budget like the bench harness's
    ``scaled_platform`` (the keyspace is the caller's to scale), so
    ``build_cluster(4, n_keys=10_000, scale=1024)`` is the Fig 16a
    4-tenant operating point generalized to a routed cluster.
    """
    shards = build_shards(
        n_shards,
        cluster_epc_bytes=max(4096 * n_shards, cluster_epc_bytes // scale),
        n_keys=n_keys,
        index=index,
        seed=seed,
        **shard_overrides,
    )
    return ClusterCoordinator(shards, vnodes=vnodes,
                              batch_window=batch_window)
