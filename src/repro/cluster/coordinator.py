"""Routes decoded requests to shards and batch-flushes per shard.

The coordinator is the *untrusted* front half of the serving layer: it
decodes frames once, consults the :class:`~repro.cluster.ring.HashRing`,
and accumulates a per-shard buffer.  When a shard's buffer reaches
``batch_window`` (or the caller drains), the whole buffer crosses that
shard's enclave boundary through the existing ECALL-amortized path
(:meth:`repro.server.server.AriaServer.flush_batch`) — one ECALL per
flush, not per request, which is the whole point (Section II-A: the
boundary crossing dominates; Harnik et al. measure the same on real
hardware).

Ordering contract: responses are returned positionally (response *i*
answers request *i*), and because a key always routes to exactly one shard
whose buffer preserves arrival order, per-key operation order is preserved
even though different shards flush independently.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.bench.harness import PAPER_EPC_BYTES
from repro.cluster.backend import BackendSpec
from repro.cluster.overload import (
    CircuitBreaker,
    Deadline,
    OverloadConfig,
    TokenBucket,
)
from repro.cluster.tenancy import TenancyConfig, TenantRegistry
from repro.cluster.ring import DEFAULT_VNODES, HashRing, VnodeSpec
from repro.cluster.shard import Shard, build_shards
from repro.cluster.stats import ClusterStats
from repro.errors import (
    AriaError,
    IntegrityError,
    KeyNotFoundError,
    ReplicaUnavailableError,
)
from repro.server import protocol
from repro.server.protocol import (
    OpCode,
    Request,
    Response,
    Status,
)

DEFAULT_BATCH_WINDOW = 32


class _Flight:
    """One dispatched shard flush awaiting collection.

    Inline (synchronous) servers execute at dispatch and carry their
    result; process-backed servers carry a ticket, so independent shards'
    batches run concurrently in their workers and are collected after
    the whole stream has been dispatched.
    """

    __slots__ = ("shard_id", "seqs", "flushed", "error", "ticket", "server",
                 "started", "latency", "sampled")

    def __init__(self, shard_id, seqs, *, flushed=None, error=None,
                 ticket=None, server=None, started=None, latency=None,
                 sampled=False):
        self.shard_id = shard_id
        self.seqs = seqs
        self.flushed = flushed
        self.error = error
        self.ticket = ticket
        self.server = server
        #: Overload bookkeeping: dispatch timestamp, measured flush
        #: latency, and whether this flight feeds a breaker sample (shed
        #: and fallback flights never touched the primary, so they don't).
        self.started = started
        self.latency = latency
        self.sampled = sampled


class _OverloadState:
    """The coordinator's overload machinery: breakers, brownout, counters.

    Created by :meth:`ClusterCoordinator.enable_overload`; all decisions
    are untrusted parent-side work and never charge a shard meter, so a
    cluster with the layer *enabled but unstressed* stays bit-identical to
    one without it on every simulated column.
    """

    def __init__(self, config: OverloadConfig,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config
        self.clock = clock
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.deadline_shed = 0
        self.breaker_shed = 0
        self.brownout_shed = 0
        self.breaker_read_routes = 0
        self.brownout_engagements = 0
        self._brownout_since: Optional[float] = None
        self._brownout_total = 0.0

    def breaker_for(self, shard_id: str) -> CircuitBreaker:
        breaker = self.breakers.get(shard_id)
        if breaker is None:
            breaker = self.config.make_breaker(self.clock)
            self.breakers[shard_id] = breaker
        return breaker

    def update_brownout(self, recovering: bool) -> bool:
        """Track brownout engage/disengage; returns whether it is active."""
        active = recovering and self.config.brownout == "auto"
        now = self.clock()
        if active and self._brownout_since is None:
            self._brownout_since = now
            self.brownout_engagements += 1
        elif not active and self._brownout_since is not None:
            self._brownout_total += now - self._brownout_since
            self._brownout_since = None
        return self._brownout_since is not None

    def brownout_seconds(self) -> float:
        total = self._brownout_total
        if self._brownout_since is not None:
            total += self.clock() - self._brownout_since
        return total

    def shed_response(self, retry_after: float, reason: bytes) -> Response:
        return protocol.overloaded(retry_after or self.config.retry_after,
                                   reason)

    def stats(self) -> dict:
        shed = self.deadline_shed + self.breaker_shed + self.brownout_shed
        return {
            "shed": shed,
            "deadline_shed": self.deadline_shed,
            "breaker_shed": self.breaker_shed,
            "brownout_shed": self.brownout_shed,
            "breaker_read_routes": self.breaker_read_routes,
            "breaker_trips": sum(b.trips for b in self.breakers.values()),
            "breakers_open": sum(
                1 for b in self.breakers.values()
                if b.state.value != "closed"),
            "brownout_engagements": self.brownout_engagements,
            "brownout_seconds": self.brownout_seconds(),
            "breakers": {sid: b.stats()
                         for sid, b in sorted(self.breakers.items())},
        }


class _TenancyState:
    """The coordinator's tenancy machinery: per-tenant buckets + namespaces.

    Created by :meth:`ClusterCoordinator.enable_tenancy`.  Like
    :class:`_OverloadState`, every decision here is untrusted parent-side
    work that never charges a shard meter, so an armed-but-idle tenancy
    layer (no tenant traffic) stays bit-identical to an unarmed cluster on
    every simulated column.  The injectable ``clock`` feeds every
    per-tenant :class:`~repro.cluster.overload.TokenBucket`, which is what
    keeps bucket sheds deterministic across the inline/process/socket
    backends in the T1 experiment.
    """

    def __init__(self, config: TenancyConfig,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config
        self.clock = clock
        self.registry = TenantRegistry(config.tenants)
        self.buckets: Dict[str, TokenBucket] = {}
        self.prefixes: Dict[str, bytes] = {}
        for tenant in config.tenants:
            self.prefixes[tenant.tenant_id] = tenant.prefix
            if tenant.rate is not None:
                self.buckets[tenant.tenant_id] = TokenBucket(
                    tenant.rate, tenant.burst, clock)
        self.admitted: Dict[str, int] = {t.tenant_id: 0
                                         for t in config.tenants}
        self.shed: Dict[str, int] = {t.tenant_id: 0 for t in config.tenants}
        self.unknown_shed = 0
        #: Roster edits applied live through :meth:`repartition`.
        self.repartitions = 0

    def repartition(self, config: TenancyConfig) -> None:
        """Adopt a new roster in place (ARCHITECTURE §16's follow-on).

        Surviving tenants keep their admission history *and* their bucket
        deficit: a tenant whose rate changed gets a new bucket primed with
        its old fill **fraction**, so a roster edit cannot be used to
        instantly refill a drained whale.  Departed tenants' buckets,
        prefixes and counters are dropped; new tenants start fresh.
        """
        old_buckets = self.buckets
        self.config = config
        self.registry = TenantRegistry(config.tenants)
        self.buckets = {}
        self.prefixes = {}
        for tenant in config.tenants:
            self.prefixes[tenant.tenant_id] = tenant.prefix
            if tenant.rate is None:
                continue
            bucket = TokenBucket(tenant.rate, tenant.burst, self.clock)
            old = old_buckets.get(tenant.tenant_id)
            if old is not None:
                fraction = max(0.0, min(1.0, old.available / old.burst))
                bucket._tokens = fraction * bucket.burst
            self.buckets[tenant.tenant_id] = bucket
        self.admitted = {t.tenant_id: self.admitted.get(t.tenant_id, 0)
                         for t in config.tenants}
        self.shed = {t.tenant_id: self.shed.get(t.tenant_id, 0)
                     for t in config.tenants}
        self.repartitions += 1

    def try_admit(self, tenant: str) -> Optional[Response]:
        """One request's admission verdict: ``None`` or a shed response.

        The shed's ``retry_after`` is *this tenant's* bucket refill time
        (``bucket.time_until(1.0)``), never a global gate's countdown — a
        whale's backoff hint must price the whale's own deficit.
        """
        if tenant not in self.prefixes:
            self.unknown_shed += 1
            return protocol.overloaded(0.0, b"unknown tenant")
        bucket = self.buckets.get(tenant)
        if bucket is not None and not bucket.try_acquire(1.0):
            self.shed[tenant] += 1
            return protocol.overloaded(
                bucket.time_until(1.0),
                b"tenant rate limit: " + tenant.encode())
        self.admitted[tenant] += 1
        return None

    def prefix_request(self, tenant: str, request: Request) -> Request:
        """Relocate a request into its tenant's key namespace."""
        return Request(request.opcode,
                       self.prefixes[tenant] + request.key,
                       request.value)

    def retry_after(self, tenant: str) -> float:
        """The tenant-correct backoff hint (0.0 for unlimited tenants)."""
        bucket = self.buckets.get(tenant)
        return bucket.time_until(1.0) if bucket is not None else 0.0

    def stats(self) -> dict:
        return {
            "tenants": sorted(self.prefixes),
            "admitted": {t: n for t, n in sorted(self.admitted.items())},
            "shed": {t: n for t, n in sorted(self.shed.items())},
            "unknown_shed": self.unknown_shed,
            "repartitions": self.repartitions,
        }


class ClusterCoordinator:
    """The sharded serving layer's routing + batching brain."""

    def __init__(
        self,
        shards: List[Shard],
        *,
        ring: Optional[HashRing] = None,
        vnodes: VnodeSpec = DEFAULT_VNODES,
        batch_window: int = DEFAULT_BATCH_WINDOW,
    ):
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        if batch_window < 1:
            raise ValueError("batch_window must be >= 1")
        self.shards: Dict[str, Shard] = {s.shard_id: s for s in shards}
        if len(self.shards) != len(shards):
            raise ValueError("duplicate shard ids")
        self.ring = ring or HashRing(self.shards, vnodes=vnodes)
        if set(self.ring.shards()) != set(self.shards):
            raise ValueError("ring membership does not match the shard set")
        self.batch_window = batch_window
        self._balancer = None
        self._health_monitor = None
        #: The ShardBackend that built these shards, when the builder
        #: passed it along; :meth:`close` releases it (worker processes,
        #: spawned shard hosts) after the shards themselves.
        self.backend = None
        self.ops_routed = 0
        #: Whole-flush failures converted to per-request error responses.
        self.flush_failures = 0
        #: Overload layer (breakers, deadline shedding, brownout); None
        #: until :meth:`enable_overload`.
        self._overload: Optional[_OverloadState] = None
        #: Tenancy layer (per-tenant buckets + key namespaces); None until
        #: :meth:`enable_tenancy`.
        self._tenancy: Optional[_TenancyState] = None
        #: Elastic reconfiguration engine; None until :meth:`attach_elastic`.
        self._elastic = None

    # -- wiring -------------------------------------------------------------------

    def enable_overload(self, config: Optional[OverloadConfig] = None,
                        *, clock: Callable[[], float] = time.monotonic,
                        ) -> "_OverloadState":
        """Arm the overload layer: per-shard breakers, deadline shedding,
        and (with a health monitor attached) automatic brownout.

        Idempotent-ish: calling again replaces the state wholesale, so a
        test can re-arm with a different config.  ``clock`` is injectable
        for deterministic breaker tests.
        """
        self._overload = _OverloadState(config or OverloadConfig(), clock)
        return self._overload

    @property
    def overload(self) -> Optional[_OverloadState]:
        return self._overload

    def enable_tenancy(self, config: TenancyConfig,
                       *, clock: Callable[[], float] = time.monotonic,
                       ) -> "_TenancyState":
        """Arm the tenancy layer: per-tenant admission and key namespaces.

        Like :meth:`enable_overload`, re-arming replaces the state
        wholesale and ``clock`` is injectable — deterministic bucket tests
        and the T1 experiment feed a counting clock so sheds land on the
        same requests across the inline/process/socket backends.

        Shard-side cache partitioning is *not* armed here: quotas travel
        in the shards' :class:`~repro.core.config.AriaConfig`
        (``tenant_quotas``, see ``ClusterConfig.build``), because remote
        backends rebuild their stores from the spawn spec.
        """
        self._tenancy = _TenancyState(config, clock)
        return self._tenancy

    @property
    def tenancy(self) -> Optional[_TenancyState]:
        return self._tenancy

    def attach_balancer(self, balancer) -> None:
        """Give the balancer a look after every executed batch."""
        self._balancer = balancer

    def attach_health_monitor(self, monitor) -> None:
        """Let a HealthMonitor inspect replicas after every executed batch."""
        self._health_monitor = monitor

    def attach_elastic(self, elastic) -> None:
        """Let the reconfiguration engine advance after every batch.

        The engine's :meth:`~repro.cluster.elastic.ElasticCluster
        .after_execute` hook runs right after responses settle — it
        dual-applies acked writes landing in moving key ranges and copies
        one bounded migration batch, so topology changes make progress
        interleaved with serving.
        """
        self._elastic = elastic

    @property
    def elastic(self):
        return self._elastic

    # -- live topology (driven by the elastic engine at cutover) ------------------

    def admit_shard(self, shard, *, ring: HashRing) -> None:
        """Cutover for an add: the shard and the new ring land atomically.

        ``ring`` must be the target ring (old membership plus this shard);
        admitting a shard the ring doesn't route to — or swapping a ring
        that routes to shards the coordinator doesn't hold — would strand
        keys, so membership is revalidated here like in ``__init__``.
        """
        if shard.shard_id in self.shards:
            raise ValueError(f"shard {shard.shard_id!r} already admitted")
        if set(ring.shards()) != set(self.shards) | {shard.shard_id}:
            raise ValueError("ring membership does not match the shard set "
                             "after admission")
        self.shards[shard.shard_id] = shard
        self.ring = ring

    def retire_shard(self, shard_id: str, *, ring: HashRing) -> Shard:
        """Cutover for a remove: unroute and detach the shard atomically.

        Returns the detached shard — still open, still holding its copy
        of the migrated keys — so the caller (the elastic engine's RETIRE
        stage) can release its enclaves *after* the swap is visible.
        """
        if shard_id not in self.shards:
            raise ValueError(f"unknown shard {shard_id!r}")
        if set(ring.shards()) != set(self.shards) - {shard_id}:
            raise ValueError("ring membership does not match the shard set "
                             "after retirement")
        shard = self.shards.pop(shard_id)
        self.ring = ring
        if self._overload is not None:
            self._overload.breakers.pop(shard_id, None)
        return shard

    def on_topology_change(self) -> None:
        """Re-partition roster-derived state after a membership change.

        Pushes the live tenant quota map to every member shard so cache
        partitions agree across old and new members (§16's follow-on:
        no stale static fractions after topology changes).
        """
        if self._tenancy is not None:
            quotas = self._tenancy.config.cache_quota_map()
            self._push_tenant_quotas(quotas or None)

    def retarget_tenancy(self, config: TenancyConfig) -> "_TenancyState":
        """Apply a roster change live (§16's follow-on, the roster half).

        Admission buckets re-partition in place — surviving tenants keep
        their deficit, departed tenants drop, new tenants start fresh —
        and the new cache quota map is pushed to every shard enclave
        through the trusted path, replacing the build-time fractions.
        """
        if self._tenancy is None:
            state = self.enable_tenancy(config)
        else:
            self._tenancy.repartition(config)
            state = self._tenancy
        self._push_tenant_quotas(config.cache_quota_map() or None)
        return state

    def _push_tenant_quotas(self, quotas) -> int:
        """Retarget every live enclave's cache quotas; returns the count.

        Best-effort on purpose: a crashed or partitioned replica misses
        the push but rebuilds from its (stale) spawn spec, and the next
        :meth:`on_topology_change` or roster edit re-pushes.
        """
        pushed = 0
        for shard in self.shard_list():
            replicas = getattr(shard, "replicas", None)
            targets = ([r.shard for r in replicas]
                       if replicas is not None else [shard])
            for target in targets:
                try:
                    target.store.retarget_tenant_quotas(quotas)
                    pushed += 1
                except AriaError:
                    continue
        return pushed

    def shard_for(self, key: bytes) -> Shard:
        return self.shards[self.ring.route(key)]

    def shard_list(self) -> List[Shard]:
        return [self.shards[shard_id] for shard_id in sorted(self.shards)]

    # -- the batched request path -------------------------------------------------

    def execute(self, requests: Iterable[Request],
                *, deadline: Optional[Deadline] = None,
                tenant: Optional[str] = None) -> List[Response]:
        """Route, batch, flush; returns responses positionally.

        Buffers per shard and flushes a shard the moment its buffer fills,
        so a stream larger than ``batch_window * n_shards`` stays at a
        bounded memory footprint instead of materializing per-shard
        sub-streams.  Inline shards execute at dispatch; process-backed
        shards execute in their workers while dispatch continues, and
        their responses are collected afterwards — either way a shard's
        batches run in dispatch order, preserving per-key ordering.

        With the overload layer armed (:meth:`enable_overload`),
        ``deadline`` is the request frame's remaining budget: buckets that
        would dispatch after it expires are shed with
        ``Status.OVERLOADED`` instead of queueing dead work, and remote
        collects are bounded by the remaining budget plus one RPC grace.
        Brownout (health monitor mid-recovery) sheds writes up front, and
        each shard's circuit breaker gates its dispatches.

        With the tenancy layer armed (:meth:`enable_tenancy`) and a
        ``tenant`` presented, each request first passes that tenant's own
        token bucket — sheds are typed ``Status.OVERLOADED`` with the
        *tenant's* bucket refill time as the hint, charged to the
        offending principal — and admitted requests are relocated into the
        tenant's key namespace before the ring routes them.  Anonymous
        requests (``tenant=None``) bypass both, byte-identically to a
        pre-tenancy cluster.
        """
        requests = list(requests)
        responses: List[Optional[Response]] = [None] * len(requests)
        pending: Dict[str, List[int]] = {sid: [] for sid in self.shards}
        inflight: List[_Flight] = []
        over = self._overload
        ten = self._tenancy if tenant is not None else None
        brownout = False
        if over is not None and self._health_monitor is not None:
            brownout = over.update_brownout(self._health_monitor.recovering())
        for seq, request in enumerate(requests):
            if request.opcode == OpCode.HEALTH:
                # Answered at the front door, never routed to an enclave.
                responses[seq] = self.health_response()
                continue
            if ten is not None:
                shed = ten.try_admit(tenant)
                if shed is not None:
                    responses[seq] = shed
                    continue
                request = ten.prefix_request(tenant, request)
                requests[seq] = request  # dispatch batches read requests[s]
            if brownout and request.opcode != OpCode.GET:
                over.brownout_shed += 1
                responses[seq] = over.shed_response(
                    0.0, b"brownout: recovery in progress")
                continue
            shard_id = self.ring.route(request.key)
            bucket = pending[shard_id]
            bucket.append(seq)
            if len(bucket) >= self.batch_window:
                inflight.append(
                    self._dispatch(shard_id, bucket, requests, deadline))
                pending[shard_id] = []
        for shard_id, bucket in pending.items():
            if bucket:
                inflight.append(
                    self._dispatch(shard_id, bucket, requests, deadline))
        for flight in inflight:
            self._collect(flight, responses, deadline)
        if self._elastic is not None:
            # After responses settle: acked writes into moving ranges are
            # dual-applied and one bounded migration batch advances.
            self._elastic.after_execute(requests, responses)
        self.ops_routed += len(requests)
        if self._balancer is not None:
            self._balancer.observe(len(requests))
        if self._health_monitor is not None:
            self._health_monitor.observe(len(requests))
        return responses  # type: ignore[return-value]  # all slots filled

    def _dispatch(self, shard_id: str, seqs: List[int],
                  requests: List[Request],
                  deadline: Optional[Deadline] = None) -> _Flight:
        """Hand one shard its batch; pipelined when the server supports it.

        Overload gates run first: an expired deadline sheds the bucket
        (work that cannot finish in time must not queue behind work that
        can), and an open breaker sheds writes while routing reads to a
        live secondary where the shard is a replica group.
        """
        over = self._overload
        if over is not None:
            if deadline is not None and deadline.expired():
                over.deadline_shed += len(seqs)
                shed = over.shed_response(0.0, b"deadline expired")
                return _Flight(shard_id, seqs, flushed=[shed] * len(seqs))
            breaker = over.breaker_for(shard_id)
            if not breaker.allow():
                return self._breaker_shed(shard_id, seqs, requests,
                                          breaker, over)
        shard = self.shards[shard_id]
        shard.ops_routed += len(seqs)
        batch = [requests[s] for s in seqs]
        submit = getattr(shard.server, "flush_submit", None)
        started = over.clock() if over is not None else None
        try:
            if submit is None:
                flushed = list(shard.server.flush_batch(batch))
                latency = (over.clock() - started
                           if over is not None else None)
                return _Flight(shard_id, seqs, flushed=flushed,
                               latency=latency, sampled=over is not None)
            return _Flight(shard_id, seqs, ticket=submit(batch),
                           server=shard.server, started=started,
                           sampled=over is not None)
        except AriaError as exc:
            latency = over.clock() - started if over is not None else None
            return _Flight(shard_id, seqs, error=exc, latency=latency,
                           sampled=over is not None)

    def _breaker_shed(self, shard_id: str, seqs: List[int],
                      requests: List[Request], breaker: CircuitBreaker,
                      over: "_OverloadState") -> _Flight:
        """The open-breaker path: reads to a secondary, writes shed.

        A replica group exposes :meth:`~repro.cluster.replication
        .ReplicaGroup.flush_reads_fallback`; reads go there (a different
        enclave than the slow primary, so no breaker sample is taken).
        Everything else — writes always, reads on an unreplicated shard —
        is shed with the breaker's own countdown as the retry_after hint.
        """
        shard = self.shards[shard_id]
        shed = over.shed_response(breaker.retry_after(),
                                  b"breaker open: " + shard_id.encode())
        flushed: List[Response] = [shed] * len(seqs)
        fallback = getattr(shard.server, "flush_reads_fallback", None)
        read_pos = [i for i, s in enumerate(seqs)
                    if requests[s].opcode == OpCode.GET]
        if fallback is not None and read_pos:
            try:
                served = list(fallback(
                    [requests[seqs[i]] for i in read_pos]))
            except AriaError:
                served = None
            if served is not None:
                for i, response in zip(read_pos, served):
                    flushed[i] = response
                over.breaker_read_routes += len(read_pos)
                shard.ops_routed += len(read_pos)
        over.breaker_shed += sum(
            1 for r in flushed if r.status == Status.OVERLOADED)
        return _Flight(shard_id, seqs, flushed=flushed)

    def _collect(self, flight: _Flight,
                 responses: List[Optional[Response]],
                 deadline: Optional[Deadline] = None) -> None:
        """Settle one flight; a failing shard costs error responses, not
        the batch: every request it owned gets ``Status.UNAVAILABLE`` and
        the other shards' response slots are untouched."""
        over = self._overload
        flushed = flight.flushed
        if flight.error is None and flushed is None:
            try:
                if over is not None and deadline is not None:
                    # The per-shard RPC deadline: remaining budget plus one
                    # grace period.  Exceeding it treats the shard as hung
                    # (ShardCrashedError), which the breaker then counts.
                    timeout = deadline.remaining() + over.config.rpc_grace
                    try:
                        flushed = flight.server.flush_collect(
                            flight.ticket, timeout=timeout)
                    except TypeError:
                        flushed = flight.server.flush_collect(flight.ticket)
                else:
                    flushed = flight.server.flush_collect(flight.ticket)
            except AriaError as exc:
                flight.error = exc
        if over is not None and flight.sampled:
            latency = flight.latency
            if latency is None:
                latency = over.clock() - flight.started
            over.breaker_for(flight.shard_id).record(
                flight.error is None, latency)
        if flight.error is not None:
            self.flush_failures += 1
            error = Response(
                Status.UNAVAILABLE,
                f"shard {flight.shard_id} failed: "
                f"{type(flight.error).__name__}".encode(),
            )
            for seq in flight.seqs:
                responses[seq] = error
            return
        if len(flushed) != len(flight.seqs) \
                and protocol.is_batch_rejection(flushed):
            # The shard refused the whole batch (a cap violation in the
            # pre-decoded path mirrors decode_batch's rejection contract):
            # none of its requests executed, every slot learns that.  A
            # plain zip would silently leave slots unanswered.
            for seq in flight.seqs:
                responses[seq] = Response(Status.BAD_REQUEST)
            return
        for seq, response in zip(flight.seqs, flushed):
            responses[seq] = response

    # -- convenience single-request API (one ECALL each, like AriaClient) --------

    def get(self, key: bytes) -> bytes:
        response = self._single(protocol.get(key))
        if response.status == Status.NOT_FOUND:
            raise KeyNotFoundError(key)
        if response.status == Status.INTEGRITY_FAILURE:
            raise IntegrityError(response.value.decode())
        if response.status == Status.UNAVAILABLE:
            raise ReplicaUnavailableError(response.value.decode())
        return response.value

    def put(self, key: bytes, value: bytes) -> None:
        response = self._single(protocol.put(key, value))
        if response.status == Status.INTEGRITY_FAILURE:
            raise IntegrityError(response.value.decode())
        if response.status == Status.UNAVAILABLE:
            raise ReplicaUnavailableError(response.value.decode())

    def delete(self, key: bytes) -> None:
        response = self._single(protocol.delete(key))
        if response.status == Status.NOT_FOUND:
            raise KeyNotFoundError(key)
        if response.status == Status.INTEGRITY_FAILURE:
            raise IntegrityError(response.value.decode())
        if response.status == Status.UNAVAILABLE:
            raise ReplicaUnavailableError(response.value.decode())

    def _single(self, request: Request) -> Response:
        shard = self.shard_for(request.key)
        shard.ops_routed += 1
        self.ops_routed += 1
        try:
            [response] = shard.server.flush_batch([request])
        except AriaError as exc:
            self.flush_failures += 1
            response = Response(
                Status.UNAVAILABLE,
                f"shard {shard.shard_id} failed: "
                f"{type(exc).__name__}".encode(),
            )
        return response

    # -- health -------------------------------------------------------------------

    def health_response(self) -> Response:
        """The OpCode.HEALTH reply: a JSON cluster summary (no enclave touched).

        Per shard: ``"up"``/``"down"`` for plain shards (a plain shard is
        down only when crashed by fault injection), or a replica-state map
        for replica groups.
        """
        shards: Dict[str, object] = {}
        up = 0
        for shard in self.shard_list():
            replicas = getattr(shard, "replicas", None)
            if replicas is not None:
                states = {r.replica_id: r.state.value for r in replicas}
                shards[shard.shard_id] = states
                up += any(state == "up" for state in states.values())
            else:
                alive = not getattr(shard, "crashed", False)
                shards[shard.shard_id] = "up" if alive else "down"
                up += alive
        summary = {
            "shards": shards,
            "n_shards": len(self.shards),
            "n_serving": up,
            "ops_routed": self.ops_routed,
            "flush_failures": self.flush_failures,
        }
        batchexec = self._batchexec_health()
        if batchexec:
            summary["batchexec"] = batchexec
        if self._overload is not None:
            summary["overload"] = self._overload.stats()
        if self._tenancy is not None:
            tenancy = self._tenancy.stats()
            denials = self._tenancy_health()
            if denials:
                tenancy["cache_evict_denials"] = denials
            summary["tenancy"] = tenancy
        if self._elastic is not None:
            summary["elastic"] = self._elastic.stats()
        return Response(Status.OK,
                        json.dumps(summary, sort_keys=True).encode())

    def _batchexec_health(self) -> Dict[str, dict]:
        """Per-shard conflict/abort/fallback counters for ``OP_HEALTH``.

        Read off the meters' ``batchexec_*`` events, which piggyback on
        every RPC reply as absolute snapshots: no extra per-shard stats
        RPC, and a crashed or partitioned shard serves its last-known
        mirror instead of failing the health probe.  Empty (and omitted
        from the summary) when no shard runs the parallel engine.
        """
        counters: Dict[str, dict] = {}
        for shard in self.shard_list():
            try:
                events = shard.meter.events
            except AriaError:
                continue
            if not events["batchexec_batch"]:
                continue
            counters[shard.shard_id] = {
                "batches": events["batchexec_batch"],
                "conflicts": (events["batchexec_conflict_raw"]
                              + events["batchexec_conflict_waw"]
                              + events["batchexec_conflict_war"]),
                "deferred": events["batchexec_deferred"],
                "fallback_rounds": events["batchexec_fallback_round"],
            }
        return counters

    def _tenancy_health(self) -> Dict[str, int]:
        """Per-tenant Secure Cache eviction-denial counters for OP_HEALTH.

        Read off the shard meters' ``tenant_evict_denied[:token]`` events,
        which piggyback on every RPC reply as absolute snapshots (the same
        free ride :meth:`_batchexec_health` uses — no extra per-shard
        stats RPC).  Owner tokens map back to tenant ids through the
        registry; an unknown token (a tenant since removed from the
        roster) reports under its raw token.
        """
        ten = self._tenancy
        counters: Dict[str, int] = {}
        prefix = "tenant_evict_denied:"
        for shard in self.shard_list():
            try:
                events = shard.meter.events
            except AriaError:
                continue
            for name, count in list(events.items()):
                if not name.startswith(prefix) or not count:
                    continue
                token = name[len(prefix):]
                label = ten.registry.tenant_for_token(token) or token
                counters[label] = counters.get(label, 0) + count
        return counters

    # -- bulk load (unmetered, mirrors AriaStore.load) ----------------------------

    def load(self, pairs: Iterable[tuple],
             *, tenant: Optional[str] = None) -> None:
        """Partition a dataset by the ring and bulk-load each shard.

        With ``tenant`` (and tenancy armed), keys are relocated into the
        tenant's namespace first — the load-phase mirror of
        :meth:`execute`'s prefixing, so loaded and served keys agree.
        """
        if tenant is not None:
            if self._tenancy is None or tenant not in self._tenancy.prefixes:
                raise AriaError(f"unknown tenant {tenant!r} for load")
            prefix = self._tenancy.prefixes[tenant]
            pairs = ((prefix + key, value) for key, value in pairs)
        per_shard: Dict[str, list] = {sid: [] for sid in self.shards}
        for key, value in pairs:
            per_shard[self.ring.route(key)].append((key, value))
        for shard_id, shard_pairs in per_shard.items():
            if shard_pairs:
                self.shards[shard_id].store.load(shard_pairs)

    # -- reporting ----------------------------------------------------------------

    def total_keys(self) -> int:
        return sum(len(s.store) for s in self.shards.values())

    def stats(self) -> ClusterStats:
        """A fresh delta window over every shard (see ClusterStats)."""
        overload = self._overload.stats if self._overload is not None \
            else None
        tenancy = self._tenancy.stats if self._tenancy is not None \
            else None
        elastic = self._elastic.stats if self._elastic is not None \
            else None
        return ClusterStats(self.shard_list(), overload=overload,
                            tenancy=tenancy, elastic=elastic)

    # -- lifecycle ----------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Release every shard's backing resources.

        Inline shards are a no-op; process-backed shards get a graceful
        shutdown (join → terminate → kill, each bounded by ``timeout``),
        so callers — and pytest runs — never leak worker processes.
        Idempotent; the coordinator must not be used afterwards.
        """
        for shard in self.shard_list():
            close = getattr(shard, "close", None)
            if close is not None:
                close(timeout)
        if self.backend is not None:
            self.backend.close(timeout)


def build_cluster(
    n_shards,
    *,
    n_keys: Optional[int] = None,
    cluster_epc_bytes: int = PAPER_EPC_BYTES,
    scale: int = 1,
    index: str = "hash",
    vnodes: VnodeSpec = DEFAULT_VNODES,
    batch_window: int = DEFAULT_BATCH_WINDOW,
    seed: int = 0,
    backend: BackendSpec = None,
    workers: Optional[int] = None,
    **shard_overrides,
) -> ClusterCoordinator:
    """One-call cluster: N shards splitting one EPC budget, plus a ring.

    The supported calling convention is the typed one — pass a
    :class:`~repro.cluster.config.ClusterConfig` as the only argument and
    every nested sub-system (overload, durability, tenancy) is armed from
    it::

        build_cluster(ClusterConfig(n_shards=4, n_keys=10_000, scale=512))

    The historical keyword spelling ``build_cluster(4, n_keys=..., ...)``
    keeps working, with a :class:`DeprecationWarning` naming the
    replacement (see the README migration guide).

    ``scale`` divides the EPC budget like the bench harness's
    ``scaled_platform`` (the keyspace is the caller's to scale), so
    ``build_cluster(4, n_keys=10_000, scale=1024)`` is the Fig 16a
    4-tenant operating point generalized to a routed cluster.
    ``backend`` selects ``"inline"``, ``"process"`` or ``"socket"`` shard
    hosting (see :mod:`repro.cluster.backend`); non-inline clusters should
    be released with :meth:`ClusterCoordinator.close`, which also shuts
    down whatever the backend spawned (workers, shard hosts).
    """
    from repro.cluster.backend import resolve_backend

    if not isinstance(n_shards, int):
        # The typed door: a ClusterConfig carries everything, so mixing
        # it with keyword overrides would reintroduce the ambiguity the
        # config exists to remove.
        from repro.cluster.config import ClusterConfig

        if not isinstance(n_shards, ClusterConfig):
            raise TypeError(
                "build_cluster takes a ClusterConfig or a shard count, "
                f"not {type(n_shards).__name__}")
        if n_keys is not None or shard_overrides:
            raise ValueError(
                "pass construction options inside the ClusterConfig, not "
                "as build_cluster keywords")
        return n_shards.build()
    if n_keys is None:
        raise TypeError("the keyword factory requires n_keys")
    import warnings as _warnings

    _warnings.warn(
        "build_cluster(n_shards, ...) keyword sprawl is deprecated; "
        "pass a repro.cluster.config.ClusterConfig instead",
        DeprecationWarning,
        stacklevel=2,
    )

    factory = resolve_backend(backend)
    shards = build_shards(
        n_shards,
        cluster_epc_bytes=max(4096 * n_shards, cluster_epc_bytes // scale),
        n_keys=n_keys,
        index=index,
        seed=seed,
        backend=factory,
        workers=workers,
        **shard_overrides,
    )
    coordinator = ClusterCoordinator(shards, vnodes=vnodes,
                                     batch_window=batch_window)
    coordinator.backend = factory
    return coordinator
