"""Consistent-hash request routing across shards (the cluster front door).

Classic Karger-style ring with virtual nodes: every shard owns ``vnodes``
points on a 64-bit circle, and a key is served by the owner of the first
point at or after the key's hash.  Properties the cluster relies on (and
``tests/test_cluster_ring.py`` verifies):

* **Deterministic** — placement is a pure function of the shard ids and
  vnode counts (``blake2b``, never Python's salted ``hash``), so every
  front door, and every restart, routes identically.
* **Balanced** — with >= 128 vnodes per shard the max/min key-load ratio
  stays small even though individual arcs vary wildly.
* **Minimal remap** — adding a shard moves only the keys that fall into
  the new shard's arcs (~``1/(N+1)`` of them); no key moves between two
  surviving shards.

The balancer reshapes load by *moving vnodes between shards*
(:meth:`HashRing.move_vnodes`): reassigning an arc from a hot shard to a
cold one is exactly a key-range migration, and only keys in the moved
arcs change owner.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Mapping, Union

# Tenant key namespaces (ARCHITECTURE §16): the front door relocates every
# tenant's keys behind a fixed-length prefix *before* they reach the ring,
# so one consistent-hash circle serves disjoint per-tenant namespaces —
# re-exported here because prefixing is part of the routing contract.
from repro.core.tenant import (  # noqa: F401  (re-exports)
    TENANT_PREFIX_LEN,
    owner_token_of,
    prefixed_key,
    strip_prefix,
    tenant_prefix,
    tenant_token,
)


def ring_hash(data: bytes) -> int:
    """The ring's 64-bit position hash (stable across processes)."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(),
                          "big")


#: Vnode counts: one int for all shards, or an explicit per-shard mapping
#: (the benchmarks use a skewed mapping to stage a hot shard on purpose).
VnodeSpec = Union[int, Mapping[str, int]]

DEFAULT_VNODES = 128


class HashRing:
    """Consistent-hash ring mapping keys to shard ids."""

    def __init__(self, shard_ids: Iterable[str], *,
                 vnodes: VnodeSpec = DEFAULT_VNODES):
        self._owner: Dict[int, str] = {}       # point -> shard id
        self._points: List[int] = []           # sorted ring positions
        self._owners: List[str] = []           # parallel to _points
        shard_ids = list(shard_ids)
        if not shard_ids:
            raise ValueError("a ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError("duplicate shard ids")
        for shard_id in shard_ids:
            self.add_shard(shard_id, vnodes=self._count_for(shard_id, vnodes))

    @staticmethod
    def _count_for(shard_id: str, vnodes: VnodeSpec) -> int:
        if isinstance(vnodes, int):
            return vnodes
        return vnodes[shard_id]

    # -- membership -------------------------------------------------------------

    def add_shard(self, shard_id: str, *, vnodes: int = DEFAULT_VNODES) -> None:
        """Claim ``vnodes`` new points for ``shard_id`` (minimal remap)."""
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        if any(owner == shard_id for owner in self._owner.values()):
            raise ValueError(f"shard {shard_id!r} already on the ring")
        for i in range(vnodes):
            point = ring_hash(b"%s#%d" % (shard_id.encode(), i))
            # 64-bit collisions are ~impossible, but placement must stay
            # deterministic even then: probe with a replica suffix.
            probe = 0
            while point in self._owner:
                probe += 1
                point = ring_hash(b"%s#%d/%d" % (shard_id.encode(), i, probe))
            self._owner[point] = shard_id
        self._rebuild()

    def remove_shard(self, shard_id: str) -> None:
        points = [p for p, owner in self._owner.items() if owner == shard_id]
        if not points:
            raise KeyError(shard_id)
        if len(points) == len(self._owner):
            raise ValueError("cannot remove the last shard")
        for point in points:
            del self._owner[point]
        self._rebuild()

    def move_vnodes(self, src: str, dst: str, count: int) -> int:
        """Reassign up to ``count`` of ``src``'s vnodes to ``dst``.

        Moves the lowest-positioned vnodes first (deterministic), and
        returns how many actually moved.  Keys in the moved arcs — and only
        those — now route to ``dst``; the caller (the balancer) is
        responsible for migrating the data itself.
        """
        if src == dst:
            return 0
        if dst not in self.shards():
            raise KeyError(dst)
        src_points = sorted(p for p, owner in self._owner.items()
                            if owner == src)
        if not src_points:
            raise KeyError(src)
        # Never strip a shard bare: it must keep at least one vnode so the
        # ring stays total over its members.
        movable = src_points[: max(0, min(count, len(src_points) - 1))]
        for point in movable:
            self._owner[point] = dst
        if movable:
            self._rebuild()
        return len(movable)

    def copy(self) -> "HashRing":
        """An independent clone with identical point ownership.

        Point-for-point, not count-for-count: vnodes moved by
        :meth:`move_vnodes` keep their (reassigned) positions, so a clone
        routes every key exactly like the original.  The reconfiguration
        engine plans against a clone (the *target* ring) while the
        original keeps serving, then swaps atomically at cutover.
        """
        clone = HashRing.__new__(HashRing)
        clone._owner = dict(self._owner)
        clone._rebuild()
        return clone

    # -- routing ----------------------------------------------------------------

    def route(self, key: bytes) -> str:
        """The shard id serving ``key``."""
        index = bisect.bisect_right(self._points, ring_hash(key))
        if index == len(self._points):
            index = 0  # wrap: the first point owns the top arc
        return self._owners[index]

    # -- introspection ----------------------------------------------------------

    def shards(self) -> List[str]:
        """Member shard ids, sorted."""
        return sorted(set(self._owner.values()))

    def vnode_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for owner in self._owner.values():
            counts[owner] = counts.get(owner, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._points)

    def _rebuild(self) -> None:
        self._points = sorted(self._owner)
        self._owners = [self._owner[p] for p in self._points]
