"""Cluster-wide metrics aggregation (a ``memory_report`` for N enclaves).

Shards are independent enclaves running in parallel, so two aggregates
matter and they are *not* the same number:

* ``cycles_sum`` — total work done (what a power/billing view wants);
* ``cycles_max`` — the critical path: wall-clock is set by the slowest
  shard, so aggregate throughput is ``total_ops * hz / cycles_max``.

A perfectly balanced cluster has ``cycles_max ~= cycles_sum / N``; a hot
shard drags ``cycles_max`` toward ``cycles_sum`` and the aggregate
throughput collapses toward single-shard speed — exactly the effect the
balancer exists to fix, and what ``benchmarks/test_cluster_scaling.py``
measures.

:class:`ClusterStats` works on deltas: it snapshots every shard's meter at
construction (and at :meth:`rebaseline`), so load/warmup phases are
excluded the same way the single-store harness excludes them.

Aggregation only ever calls ``meter.snapshot()``, so a shard's ``meter``
may be a live :class:`~repro.sgx.meter.CycleMeter`, a process-backed
shard's mirror, or a frozen :class:`~repro.sgx.meter.MeterSnapshot`
(whose ``snapshot()`` is itself) — snapshots and live meters are
interchangeable, which is what lets metering cross process boundaries.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List

from repro.sgx.meter import MeterSnapshot

_OP_EVENTS = ("op_get", "op_put", "op_delete")

#: Baseline for a shard admitted mid-window by the elastic engine: its
#: whole meter is new work, so it deltas against zero.
_ZERO_BASELINE = MeterSnapshot(cycles=0.0, events=Counter())


class ClusterStats:
    """Delta-based aggregation over a fixed set of shards.

    ``overload`` is an optional counters source — a dict, or a zero-arg
    callable returning one (the coordinator passes its live
    ``overload_stats`` method so :meth:`report` reads counters at report
    time, not at window start).  When present, the report's cluster row
    carries it under ``"overload"`` so operators see shedding, breaker
    trips and brownout time next to throughput.  ``tenancy`` works the
    same way for the multi-tenant front door's per-principal
    admitted/shed counters (``"tenancy"`` row), and ``elastic`` for the
    reconfiguration engine's migration progress/abort counters
    (``"elastic"`` row).
    """

    def __init__(self, shards: Iterable, *, overload=None, tenancy=None,
                 elastic=None):
        self._shards: List = list(shards)
        if not self._shards:
            raise ValueError("no shards to aggregate")
        self._overload = overload
        self._tenancy = tenancy
        self._elastic = elastic
        self._baselines: Dict[str, MeterSnapshot] = {}
        self.rebaseline()

    def rebaseline(self) -> None:
        """Restart the measurement window at the current meter state."""
        self._baselines = {
            shard.shard_id: shard.meter.snapshot() for shard in self._shards
        }

    # -- internals ----------------------------------------------------------------

    def _delta(self, shard) -> MeterSnapshot:
        baseline = self._baselines.get(shard.shard_id, _ZERO_BASELINE)
        return baseline.delta(shard.meter.snapshot())

    @staticmethod
    def _ops(delta: MeterSnapshot) -> int:
        return sum(delta.events[e] for e in _OP_EVENTS)

    # -- aggregates ---------------------------------------------------------------

    def total_ops(self) -> int:
        return sum(self._ops(self._delta(s)) for s in self._shards)

    def cycles_max(self) -> float:
        return max(self._delta(s).cycles for s in self._shards)

    def cycles_sum(self) -> float:
        return sum(self._delta(s).cycles for s in self._shards)

    def aggregate_throughput(self) -> float:
        """Cluster ops/s: total ops over the slowest shard's cycles.

        Shards are parallel enclaves, so the straggler sets wall-clock —
        simulated cycles through the platform clock, like every other
        throughput figure in this repo.
        """
        cycles = self.cycles_max()
        ops = self.total_ops()
        if cycles <= 0 or ops <= 0:
            return 0.0
        hz = self._shards[0].store.enclave.platform.cpu_hz
        return hz * ops / cycles

    def ops_share(self) -> Dict[str, float]:
        """Each shard's fraction of executed ops in the current window."""
        per_shard = {s.shard_id: self._ops(self._delta(s))
                     for s in self._shards}
        total = sum(per_shard.values())
        if not total:
            return {shard_id: 0.0 for shard_id in per_shard}
        return {shard_id: n / total for shard_id, n in per_shard.items()}

    def report(self) -> dict:
        """Cluster snapshot: per-shard rows plus the cluster-level totals."""
        per_shard = {}
        for shard in self._shards:
            row = shard.stats()
            delta = self._delta(shard)
            row["window_cycles"] = delta.cycles
            row["window_ops"] = self._ops(delta)
            row["window_ecalls"] = delta.events["ecall"]
            if delta.events["batchexec_batch"]:
                # The parallel engine's windowed view, off the same meter
                # delta as everything else (events cross backends on
                # snapshots, so these are identical inline/process/socket).
                row["window_conflicts"] = (
                    delta.events["batchexec_conflict_raw"]
                    + delta.events["batchexec_conflict_waw"]
                    + delta.events["batchexec_conflict_war"])
                row["window_deferred"] = delta.events["batchexec_deferred"]
                row["window_fallback_rounds"] = \
                    delta.events["batchexec_fallback_round"]
            per_shard[shard.shard_id] = row
        ops = self.total_ops()
        cycles_max = self.cycles_max()
        # A shard that crashed before its first stats() call serves a
        # minimal fallback row (remote.py): default the derived fields
        # rather than blowing up the report a crash made interesting.
        weighted_hits = sum(
            row.get("cache_hit_ratio", 0.0) * row.get("keys", 0)
            for row in per_shard.values()
        )
        total_keys = sum(row.get("keys", 0) for row in per_shard.values())
        # Replica-aware extras: present only when at least one "shard" is a
        # ReplicaGroup (duck-checked, so plain clusters pay nothing).
        replicas = 0
        replicas_down = 0
        failovers = 0
        for shard in self._shards:
            group = getattr(shard, "replicas", None)
            if group is None:
                continue
            replicas += len(group)
            replicas_down += sum(
                1 for r in group if r.state.value != "up"
            )
            failovers += getattr(shard, "failovers", 0)
        cluster = {
            "n_shards": len(self._shards),
            "keys": total_keys,
            "window_ops": ops,
            "cycles_max": cycles_max,
            "cycles_sum": self.cycles_sum(),
            "parallel_efficiency": (
                self.cycles_sum() / (cycles_max * len(self._shards))
                if cycles_max > 0 else 0.0
            ),
            "aggregate_throughput": self.aggregate_throughput(),
            "ecalls": sum(row["window_ecalls"]
                          for row in per_shard.values()),
            "cache_hit_ratio": (weighted_hits / total_keys
                                if total_keys else 0.0),
        }
        if replicas:
            cluster["replicas"] = replicas
            cluster["replicas_down"] = replicas_down
            cluster["failovers"] = failovers
        # Intra-shard parallelism aggregate: present when any shard (for
        # replica groups: any primary) runs the batchexec engine.
        exec_rows = [row["batchexec"] for row in per_shard.values()
                     if "batchexec" in row]
        if exec_rows:
            serial = sum(r["serial_cycles"] for r in exec_rows)
            critical = sum(r["critical_cycles"] for r in exec_rows)
            cluster["batchexec"] = {
                "workers": max(r["workers"] for r in exec_rows),
                "batches": sum(r["batches"] for r in exec_rows),
                "conflicts": sum(r["conflicts_raw"] + r["conflicts_waw"]
                                 + r["conflicts_war"] for r in exec_rows),
                "deferred": sum(r["deferred"] for r in exec_rows),
                "fallback_rounds": sum(r["fallback_rounds"]
                                       for r in exec_rows),
                "serial_cycles": serial,
                "critical_cycles": critical,
                "speedup": serial / critical if critical > 0 else 1.0,
            }
        if self._overload is not None:
            counters = self._overload() if callable(self._overload) \
                else self._overload
            cluster["overload"] = dict(counters)
        if self._tenancy is not None:
            counters = self._tenancy() if callable(self._tenancy) \
                else self._tenancy
            cluster["tenancy"] = dict(counters)
            # Shard-side eviction isolation, off the same window deltas as
            # everything else: how often a tenant's miss was denied an
            # eviction because the victim was another tenant's protected
            # entry (events ride MeterSnapshot, identical on all backends).
            cluster["tenancy"]["window_evict_denied"] = sum(
                self._delta(s).events["tenant_evict_denied"]
                for s in self._shards)
        if self._elastic is not None:
            counters = self._elastic() if callable(self._elastic) \
                else self._elastic
            cluster["elastic"] = dict(counters)
        return {"shards": per_shard, "cluster": cluster}
