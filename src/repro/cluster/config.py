"""Typed cluster construction: one config object instead of kwarg sprawl.

The cluster grew factory by factory — ``build_cluster(n_shards, ...)``,
``build_replicated_cluster(..., replication=...)``, ``enable_overload``,
``attach_cluster_durability``, ``enable_tenancy`` — each with its own
keyword surface, plus ``ARIA_CLUSTER_BACKEND``/``ARIA_SHARD_WORKERS``
environment fallbacks sprinkled through the call sites.
:class:`ClusterConfig` is the single construction surface over all of it
(ARCHITECTURE §16):

>>> config = ClusterConfig(n_shards=2, n_keys=5_000, scale=2048,
...                        tenancy=TenancyConfig(tenants=(
...                            TenantConfig("acme", rate=200.0, burst=50.0,
...                                         cache_quota=0.4),
...                            TenantConfig("blue"),
...                        )))
>>> coordinator = build_cluster(config)     # or config.build()

Sub-systems nest as typed sub-configs, each ``None`` (disarmed) by
default: :class:`~repro.cluster.overload.OverloadConfig` for admission/
degradation, :class:`DurabilityConfig` for the sealed WAL sidecars, and
:class:`~repro.cluster.tenancy.TenancyConfig` for the multi-tenant front
door.  A config with every sub-config ``None`` builds a cluster
bit-identical to the pre-config factories — the typed surface is
packaging, never semantics.

**Precedence** is explicit argument > config > environment: a value you
pass always wins; a field left at its default defers to the config; the
``ARIA_*`` environment variables are consulted only when the field is
``None`` (the same fallback the untyped factories always had —
:meth:`ClusterConfig.from_env` pins the environment's answer into the
config at construction time so later ``os.environ`` churn cannot change
what you build).

The legacy keyword factories keep working through
:meth:`ClusterConfig.from_kwargs`, with a :class:`DeprecationWarning`
naming the replacement — see the migration guide in the README.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional

from repro.bench.harness import PAPER_EPC_BYTES
from repro.cluster.backend import BACKEND_ENV_VAR, BackendSpec
from repro.cluster.overload import OverloadConfig
from repro.cluster.ring import DEFAULT_VNODES, VnodeSpec
from repro.cluster.shard import WORKERS_ENV_VAR
from repro.cluster.tenancy import TenancyConfig
from repro.errors import ConfigurationError

#: build_cluster's historical defaults, preserved verbatim.
DEFAULT_N_SHARDS = 4
DEFAULT_N_KEYS = 20_000
DEFAULT_EPOCH_EVERY = 32


@dataclass(frozen=True)
class DurabilityConfig:
    """Sealed-WAL persistence for every partition (ARCHITECTURE §12).

    Durability rides replica-group batch boundaries, so a config carrying
    one requires ``replication >= 1`` groups (``ClusterConfig.build``
    builds replica groups even at R=1, exactly like ``serve --durable``).
    """

    #: Directory for the sealed snapshot/log blobs and the monotonic
    #: counter store.
    data_dir: str
    #: Group commits between monotonic-counter bindings (lower = smaller
    #: offline-rollback window, higher amortized counter cost).
    epoch_every: int = DEFAULT_EPOCH_EVERY
    #: Restore partitions from existing on-disk state before serving.
    restore: bool = True

    def __post_init__(self):
        if not self.data_dir:
            raise ConfigurationError("durability needs a data_dir")
        if self.epoch_every < 1:
            raise ConfigurationError(
                f"epoch_every must be >= 1, not {self.epoch_every}")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to build (and serve) one cluster, in one place."""

    n_shards: int = DEFAULT_N_SHARDS
    #: Cluster-wide keyspace the shards are provisioned for.
    n_keys: int = DEFAULT_N_KEYS
    cluster_epc_bytes: int = PAPER_EPC_BYTES
    #: EPC scale divisor, as in the bench harness's ``scaled_platform``.
    scale: int = 1
    index: str = "hash"
    vnodes: VnodeSpec = DEFAULT_VNODES
    batch_window: int = 32  # coordinator.DEFAULT_BATCH_WINDOW
    seed: int = 0
    #: Shard hosting: "inline" / "process" / "socket", a ShardBackend, or
    #: None to defer to ``ARIA_CLUSTER_BACKEND`` (then "inline").
    backend: BackendSpec = None
    #: Simulated enclave workers per shard; None defers to
    #: ``ARIA_SHARD_WORKERS`` (then 1).
    workers: Optional[int] = None
    #: Replicas per partition; > 1 (or any durability) builds replica
    #: groups via ``build_replicated_cluster``.
    replication: int = 1
    overload: Optional[OverloadConfig] = None
    durability: Optional[DurabilityConfig] = None
    tenancy: Optional[TenancyConfig] = None
    #: EPC headroom for elastic scale-out: the reconfiguration planner
    #: budgets the cluster's EPC envelope for up to this many shards, so
    #: live adds up to ``max_shards`` pass the ``epc_budget`` model.
    #: None provisions exactly ``n_shards`` — the envelope is fully
    #: consumed at build and the planner refuses every add.
    max_shards: Optional[int] = None
    #: Extra AriaConfig field overrides applied to every shard store
    #: (``value_hint``, ``crypto_backend``, ...), exactly the ``**kwargs``
    #: tail of the old factories.
    shard_overrides: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, not {self.n_shards}")
        if self.n_keys < 1:
            raise ConfigurationError(
                f"n_keys must be >= 1, not {self.n_keys}")
        if self.scale < 1:
            raise ConfigurationError(
                f"scale must be >= 1, not {self.scale}")
        if self.batch_window < 1:
            raise ConfigurationError(
                f"batch_window must be >= 1, not {self.batch_window}")
        if self.replication < 1:
            raise ConfigurationError(
                f"replication must be >= 1, not {self.replication}")
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, not {self.workers}")
        if self.max_shards is not None and self.max_shards < self.n_shards:
            raise ConfigurationError(
                f"max_shards ({self.max_shards}) must be >= n_shards "
                f"({self.n_shards})")

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def from_env(cls, **overrides) -> "ClusterConfig":
        """A config with the ``ARIA_*`` environment resolved *now*.

        Precedence: an explicit keyword here beats the environment, which
        beats the field default — and the environment's answer is frozen
        into the returned config, so later ``os.environ`` changes cannot
        retroactively alter what gets built.
        """
        if overrides.get("backend") is None:
            env_backend = os.environ.get(BACKEND_ENV_VAR)
            if env_backend:
                overrides["backend"] = env_backend
        if overrides.get("workers") is None:
            env_workers = os.environ.get(WORKERS_ENV_VAR)
            if env_workers:
                try:
                    overrides["workers"] = int(env_workers)
                except ValueError:
                    pass  # malformed env is ignored, like resolve_workers
        return cls(**overrides)

    #: Legacy factory keywords that map onto ClusterConfig fields;
    #: anything else in the kwarg tail is a shard override.
    _FIELD_KWARGS = ("n_keys", "cluster_epc_bytes", "scale", "index",
                     "vnodes", "batch_window", "seed", "backend", "workers",
                     "replication")

    @classmethod
    def from_kwargs(cls, n_shards: int, *, _warn: bool = True,
                    **kwargs) -> "ClusterConfig":
        """Adapt the deprecated ``build_cluster(n, key=value, ...)`` sprawl.

        Known factory keywords become config fields; the remainder is the
        shard-override tail, exactly as the old ``**shard_overrides``
        behaved.  Emits a :class:`DeprecationWarning` naming the typed
        replacement (suppressed for internal adapter calls).
        """
        if _warn:
            warnings.warn(
                "keyword-sprawl cluster factories are deprecated; build a "
                "repro.cluster.config.ClusterConfig and pass it to "
                "build_cluster(config) / serve(config)",
                DeprecationWarning,
                stacklevel=3,
            )
        fields = {name: kwargs.pop(name) for name in cls._FIELD_KWARGS
                  if name in kwargs}
        return cls(n_shards=n_shards, shard_overrides=kwargs, **fields)

    def with_overrides(self, **changes) -> "ClusterConfig":
        """A copy with fields replaced (frozen-dataclass convenience)."""
        return replace(self, **changes)

    # -- derived values -----------------------------------------------------------

    def resolved_shard_overrides(self) -> dict:
        """The shard-override tail with tenancy's cache quotas injected.

        Secure Cache partitioning arms *inside* each shard's
        :class:`~repro.core.config.AriaConfig` (``tenant_quotas``), so the
        quotas must travel with the shard spec — remote backends rebuild
        their stores from it, which is what keeps partitioning identical
        across the inline/process/socket backends.  An explicit
        ``tenant_quotas`` in ``shard_overrides`` wins (explicit > config).
        """
        overrides = dict(self.shard_overrides)
        if self.tenancy is not None and "tenant_quotas" not in overrides:
            quotas = self.tenancy.cache_quota_map()
            if quotas:
                overrides["tenant_quotas"] = quotas
        return overrides

    def per_enclave_epc_bytes(self) -> int:
        """The EPC carve each enclave gets under this config's build path.

        Mirrors the builders exactly: replica-group builds divide the
        scaled envelope by ``n_shards * replication``; plain builds clamp
        the scaled envelope at 4096 bytes/shard first (the legacy
        ``build_cluster`` formula), then divide by ``n_shards``.
        """
        from repro.cluster.shard import MIN_SHARD_EPC_BYTES

        if self.replication > 1 or self.durability is not None:
            return max(MIN_SHARD_EPC_BYTES,
                       self.cluster_epc_bytes // self.scale
                       // (self.n_shards * self.replication))
        scaled = max(MIN_SHARD_EPC_BYTES * self.n_shards,
                     self.cluster_epc_bytes // self.scale)
        return scaled // self.n_shards

    def elastic_spec(self, *, durability_factory=None):
        """The :class:`~repro.cluster.elastic.ShardSpec` this config implies.

        New shards are provisioned exactly like the built ones (same EPC
        carve, capacity, index, workers, override tail), and the
        planner's EPC envelope covers ``max_shards`` shards — leave
        ``max_shards`` unset and the envelope is already fully consumed,
        so the ``epc_budget`` model rejects every add.
        """
        from repro.cluster.elastic import ShardSpec
        from repro.cluster.shard import resolve_workers

        overrides = self.resolved_shard_overrides()
        fault_plan = overrides.pop("fault_plan", None)
        value_hint = overrides.pop("value_hint", 16)
        per_enclave = self.per_enclave_epc_bytes()
        budget_shards = self.max_shards if self.max_shards is not None \
            else self.n_shards
        return ShardSpec(
            epc_bytes=per_enclave,
            capacity_keys=self.n_keys,
            cluster_epc_bytes=per_enclave * self.replication * budget_shards,
            index=self.index,
            seed=self.seed,
            value_hint=value_hint,
            workers=resolve_workers(self.workers),
            replication=self.replication,
            shard_overrides=overrides,
            fault_plan=fault_plan,
            durability_factory=durability_factory,
        )

    # -- the build path -----------------------------------------------------------

    def build(self, *, clock: Callable[[], float] = time.monotonic):
        """Build the coordinator this config describes, fully armed.

        Plain shards by default; replica groups when ``replication > 1``
        or ``durability`` is set (the sealed sidecar commits on the group
        batch boundary).  ``overload``/``tenancy`` sub-configs arm the
        matching coordinator layers; ``clock`` feeds both (injectable so
        bucket/breaker decisions are deterministic in tests and in the T1
        experiment's cross-backend cycle-identity check).
        """
        from repro.cluster.coordinator import build_cluster as _build
        from repro.cluster.replication import build_replicated_cluster

        overrides = self.resolved_shard_overrides()
        common = dict(
            n_keys=self.n_keys,
            cluster_epc_bytes=self.cluster_epc_bytes,
            scale=self.scale,
            index=self.index,
            vnodes=self.vnodes,
            batch_window=self.batch_window,
            seed=self.seed,
            backend=self.backend,
            workers=self.workers,
        )
        with warnings.catch_warnings():
            # The typed door funnels through the legacy factory bodies;
            # only direct keyword-spelling callers hear the deprecation.
            warnings.simplefilter("ignore", DeprecationWarning)
            if self.replication > 1 or self.durability is not None:
                coordinator = build_replicated_cluster(
                    self.n_shards, replication=self.replication,
                    **common, **overrides)
            else:
                coordinator = _build(self.n_shards, **common, **overrides)
        try:
            if self.overload is not None:
                coordinator.enable_overload(self.overload, clock=clock)
            if self.tenancy is not None:
                coordinator.enable_tenancy(self.tenancy, clock=clock)
            if self.durability is not None:
                self._attach_durability(coordinator)
            self._attach_elastic(coordinator)
        except BaseException:
            # Arming failed (e.g. rollback detected on restore): release
            # whatever the backend spawned before surfacing the refusal.
            coordinator.close()
            raise
        return coordinator

    def _attach_elastic(self, coordinator) -> None:
        """Arm the reconfiguration engine (a no-op until a plan begins).

        Idle, the engine adds nothing to the request path — no meter is
        charged, no ring is touched — so an armed-but-unused cluster
        stays bit-identical to a pre-elastic one on every simulated
        column.
        """
        from repro.cluster.elastic import ElasticCluster, ReconfigPlanner

        spec = self.elastic_spec(
            durability_factory=getattr(coordinator, "_durability_factory",
                                       None))
        planner = ReconfigPlanner(coordinator, spec)
        vnodes = self.vnodes if isinstance(self.vnodes, int) \
            else DEFAULT_VNODES
        coordinator.attach_elastic(
            ElasticCluster(coordinator, spec, planner=planner,
                           vnodes=vnodes))

    def _attach_durability(self, coordinator) -> None:
        from repro.cluster.health import HealthMonitor
        from repro.persist import (
            FileDisk,
            attach_cluster_durability,
            restore_cluster_from_storage,
        )
        from repro.sgx.monotonic import MonotonicCounterService

        dur = self.durability
        disk = FileDisk(dur.data_dir)
        counters = MonotonicCounterService(
            path=os.path.join(dur.data_dir, "counters.json"))
        attach_cluster_durability(coordinator, disk, counters,
                                  seed=self.seed,
                                  epoch_every=dur.epoch_every)

        def durability_factory(group):
            # Mints a sealed snapshot + WAL epoch sidecar for a shard the
            # elastic engine adds later, on the same disk and counter
            # service as the built shards — the planner's
            # durability-continuity model requires exactly this.
            from repro.persist import attach_partition_durability

            return attach_partition_durability(
                group, disk, counters,
                seed=self.seed, epoch_every=dur.epoch_every)

        coordinator._durability_factory = durability_factory
        restored = {}
        if dur.restore:
            restored = restore_cluster_from_storage(coordinator)
        #: What recovery replayed, for operators (the CLI prints it).
        coordinator.durability_restored = restored
        coordinator.attach_health_monitor(HealthMonitor(coordinator))


def build_cluster(config: ClusterConfig, *,
                  clock: Callable[[], float] = time.monotonic):
    """Build a coordinator from a :class:`ClusterConfig` (the typed door).

    :func:`repro.cluster.coordinator.build_cluster` accepts the same
    config as its first argument and lands here; this module-level spelling
    exists so new code never has to touch the legacy keyword surface.
    """
    return config.build(clock=clock)


def serve(
    config: ClusterConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    security: str = "optional",
    max_requests: Optional[int] = None,
    max_inflight: Optional[int] = None,
    max_connections: Optional[int] = None,
    clock: Callable[[], float] = time.monotonic,
):
    """Build the cluster *and* its front door; returns a started
    :class:`~repro.cluster.netserver.BackgroundServer`.

    With ``config.tenancy`` armed, the front door's gateway
    :class:`~repro.cluster.session.SessionManager` is constructed around
    the tenancy roster, so v2 handshakes authenticate tenant claims
    (``require_auth`` in the tenancy config makes a tenant block
    mandatory).  The caller owns shutdown: ``server.close()`` stops the
    door and releases the shard backends.
    """
    from repro.cluster.netserver import BackgroundServer
    from repro.cluster.session import SessionManager

    coordinator = config.build(clock=clock)
    sessions = None
    if config.tenancy is not None and security != "plaintext":
        sessions = SessionManager(
            registry=coordinator.tenancy.registry,
            require_tenant=config.tenancy.require_auth,
        )
    server = BackgroundServer(
        coordinator,
        host=host,
        port=port,
        max_requests=max_requests,
        security=security,
        sessions=sessions,
        max_inflight=max_inflight,
        max_connections=max_connections,
    )
    try:
        server.start()
    except BaseException:
        coordinator.close()
        raise
    return server
