"""Overload control primitives: deadlines, token buckets, circuit breakers.

The paper's premise is that skew is the hard case for a secure in-memory
KV store; this module is the cluster's answer to skew pushed past capacity.
Everything here is *untrusted* control-plane work — admission decisions run
outside the enclave and are never allowed to touch sealed state, so an
attacker who games the control loop can only make the cluster do *less*
work, never leak or corrupt data (see ARCHITECTURE §14 for the threat
model).

Four primitives, composed by the layers above:

* :class:`Deadline` — a relative remaining-time budget that travels with a
  request (clients attach it as a wire envelope, the coordinator derives
  per-shard RPC deadlines from what is left).
* :class:`TokenBucket` — the classic rate limiter: refills at ``rate``
  tokens/second up to ``burst``, admits while a token is available.
* :class:`RetryBudget` — a token bucket over *fresh-request count* instead
  of time: every fresh request deposits ``ratio`` tokens, every retry
  spends one, so retries can never exceed a fixed fraction of fresh load —
  the anti-retry-storm invariant (retry amplification is bounded by
  ``1 + ratio``).
* :class:`CircuitBreaker` — per-shard CLOSED → OPEN → HALF_OPEN containment
  that trips on consecutive errors *or* slow responses ("slow is the new
  down"), sheds while open, and probes with a single request before
  closing.

Every class takes an injectable ``clock`` so tests drive time
deterministically; production uses ``time.monotonic``.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError, DeadlineExceededError

__all__ = [
    "Deadline",
    "TokenBucket",
    "RetryBudget",
    "BreakerState",
    "CircuitBreaker",
    "OverloadConfig",
]


class Deadline:
    """A relative time budget: "this work is worthless after ``budget`` s".

    Deadlines are *budgets*, never absolute timestamps — client and server
    clocks are not assumed synchronized, so what crosses the wire is the
    remaining budget in milliseconds and each hop restarts its own local
    countdown (:meth:`repro.server.protocol.wrap_deadline`).  The budget
    can therefore only shrink as it propagates; a malicious client
    inflating it merely wastes its own time.
    """

    __slots__ = ("_clock", "_expires_at", "budget")

    def __init__(self, budget: float,
                 clock: Callable[[], float] = time.monotonic):
        if budget < 0:
            raise ConfigurationError(f"deadline budget {budget} < 0")
        self.budget = float(budget)
        self._clock = clock
        self._expires_at = clock() + self.budget

    @classmethod
    def from_budget_ms(cls, budget_ms: int,
                       clock: Callable[[], float] = time.monotonic,
                       ) -> "Deadline":
        """The receiving side of the wire envelope: restart the countdown."""
        return cls(budget_ms / 1000.0, clock=clock)

    def remaining(self) -> float:
        """Seconds left, clamped at 0.0 once expired."""
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def budget_ms(self) -> int:
        """Remaining budget as whole milliseconds for the wire envelope.

        Floors, so the budget monotonically shrinks across hops; a deadline
        with under 1 ms left encodes as 0 and is shed at the next hop.
        """
        return int(self.remaining() * 1000.0)

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is gone."""
        if self.expired():
            raise DeadlineExceededError(
                f"{what} deadline exceeded ({self.budget * 1000.0:.0f} ms "
                "budget exhausted)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline(budget={self.budget:.3f}s, "
                f"remaining={self.remaining():.3f}s)")


class TokenBucket:
    """A token bucket: sustained ``rate`` tokens/second, bursts of ``burst``.

    Two invariants the hypothesis suite pins down:

    * **Never above rate**: over any window, admissions <= burst + rate x
      window (the bucket can never hold more than ``burst`` tokens, and
      refill is linear in elapsed time).
    * **Recovers after burst**: after draining, waiting ``burst / rate``
      seconds restores the full burst.
    """

    __slots__ = ("rate", "burst", "_tokens", "_clock", "_last")

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ConfigurationError(f"token bucket rate {rate} <= 0")
        if burst <= 0:
            raise ConfigurationError(f"token bucket burst {burst} <= 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Admit (and spend) if at least ``tokens`` are available."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def time_until(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0.0 if already are).

        This is the honest ``retry_after`` hint for a bucket-shed request.
        """
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


class RetryBudget:
    """Retries as a fixed fraction of fresh load (a counting token bucket).

    Every *fresh* request deposits ``ratio`` tokens (capped at ``cap``);
    every retry spends one.  Retries are therefore bounded by
    ``cap + ratio x fresh_requests`` no matter how hard the cluster is
    failing — the client can never amplify an overload by more than
    ``ratio``.  Deterministic: no clock involved.
    """

    __slots__ = ("ratio", "cap", "_tokens", "fresh", "retries", "denied")

    def __init__(self, ratio: float = 0.1, cap: float = 10.0):
        if not 0.0 < ratio <= 1.0:
            raise ConfigurationError(f"retry ratio {ratio} not in (0, 1]")
        if cap < 1.0:
            raise ConfigurationError(f"retry budget cap {cap} < 1")
        self.ratio = float(ratio)
        self.cap = float(cap)
        self._tokens = float(cap)  # start full: a cold client may retry
        self.fresh = 0
        self.retries = 0
        self.denied = 0

    def on_fresh(self) -> None:
        """Record a fresh (non-retry) request: deposit ``ratio`` tokens."""
        self.fresh += 1
        self._tokens = min(self.cap, self._tokens + self.ratio)

    def try_retry(self) -> bool:
        """Spend one token for a retry; False = budget exhausted, fail fast."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.retries += 1
            return True
        self.denied += 1
        return False

    @property
    def available(self) -> float:
        return self._tokens


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-shard containment: trip on errors *or* latency, probe, close.

    State machine::

        CLOSED --(failure_threshold consecutive bad samples)--> OPEN
        OPEN --(recovery_time elapsed)--> HALF_OPEN (one probe admitted)
        HALF_OPEN --(probe good)--> CLOSED
        HALF_OPEN --(probe bad)--> OPEN (countdown restarts)

    A *bad sample* is an error **or** a success slower than
    ``latency_threshold`` — a stalled-but-alive shard must trip the breaker
    exactly like a dead one, because a slow shard stalls whole batches
    (the original sin this layer exists to contain).  Thresholds count
    consecutive samples, so tripping is deterministic given the sample
    stream; only re-arming (OPEN -> HALF_OPEN) consults the clock.
    """

    __slots__ = ("failure_threshold", "latency_threshold", "recovery_time",
                 "_clock", "state", "_consecutive_bad", "_opened_at",
                 "_probing", "trips", "probes", "shed")

    def __init__(self, *, failure_threshold: int = 3,
                 latency_threshold: float = 0.25,
                 recovery_time: float = 0.5,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"breaker failure_threshold {failure_threshold} < 1")
        if latency_threshold <= 0:
            raise ConfigurationError(
                f"breaker latency_threshold {latency_threshold} <= 0")
        if recovery_time <= 0:
            raise ConfigurationError(
                f"breaker recovery_time {recovery_time} <= 0")
        self.failure_threshold = int(failure_threshold)
        self.latency_threshold = float(latency_threshold)
        self.recovery_time = float(recovery_time)
        self._clock = clock
        self.state = BreakerState.CLOSED
        self._consecutive_bad = 0
        self._opened_at = 0.0
        self._probing = False
        #: CLOSED/HALF_OPEN -> OPEN transitions.
        self.trips = 0
        #: HALF_OPEN probes admitted.
        self.probes = 0
        #: Requests refused by :meth:`allow` while OPEN.
        self.shed = 0

    def allow(self) -> bool:
        """May a request be dispatched to this shard right now?

        OPEN sheds everything until ``recovery_time`` has elapsed, then
        admits exactly one probe (HALF_OPEN); further requests keep being
        shed until the probe's outcome is recorded.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self._clock() - self._opened_at >= self.recovery_time:
                self.state = BreakerState.HALF_OPEN
                self._probing = False
            else:
                self.shed += 1
                return False
        # HALF_OPEN: one probe in flight at a time.
        if self._probing:
            self.shed += 1
            return False
        self._probing = True
        self.probes += 1
        return True

    def record(self, ok: bool, latency: float) -> None:
        """Record a dispatched request's outcome (call exactly once each)."""
        good = ok and latency <= self.latency_threshold
        if self.state is BreakerState.HALF_OPEN:
            self._probing = False
            if good:
                self.state = BreakerState.CLOSED
                self._consecutive_bad = 0
            else:
                self._trip()
            return
        if good:
            self._consecutive_bad = 0
            return
        self._consecutive_bad += 1
        if (self.state is BreakerState.CLOSED
                and self._consecutive_bad >= self.failure_threshold):
            self._trip()

    def _trip(self) -> None:
        self.state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._consecutive_bad = 0
        self._probing = False
        self.trips += 1

    def retry_after(self) -> float:
        """Seconds until the next probe could be admitted (the shed hint)."""
        if self.state is not BreakerState.OPEN:
            return 0.0
        return max(0.0, self.recovery_time
                   - (self._clock() - self._opened_at))

    def stats(self) -> dict:
        return {
            "state": self.state.value,
            "trips": self.trips,
            "probes": self.probes,
            "shed": self.shed,
        }


@dataclass
class OverloadConfig:
    """Knobs for the coordinator's overload layer (see `enable_overload`).

    Defaults are tuned for the simulated cluster's scale: breakers trip
    after ``breaker_failures`` consecutive bad samples, a sample is bad
    above ``breaker_latency`` seconds, and an open breaker re-arms after
    ``breaker_recovery`` seconds.  ``brownout`` engages write shedding
    automatically while the health monitor reports a replica mid-recovery.
    """

    breaker_failures: int = 3
    breaker_latency: float = 0.25
    breaker_recovery: float = 0.5
    #: "auto" sheds writes while recovery is in progress; "off" never does.
    brownout: str = "auto"
    #: Default retry_after hint (seconds) for deadline/brownout sheds,
    #: where no breaker countdown supplies a better number.
    retry_after: float = 0.05
    #: Slack added to a request's remaining budget when deriving a
    #: per-shard RPC collect timeout — the "one RPC timeout" a deadline
    #: may be exceeded by at most.
    rpc_grace: float = 1.0

    def __post_init__(self) -> None:
        if self.brownout not in ("auto", "off"):
            raise ConfigurationError(
                f"brownout mode {self.brownout!r} not in ('auto', 'off')")
        # Delegate range validation to the primitives' own constructors.
        CircuitBreaker(failure_threshold=self.breaker_failures,
                       latency_threshold=self.breaker_latency,
                       recovery_time=self.breaker_recovery)
        if self.retry_after < 0:
            raise ConfigurationError(
                f"retry_after {self.retry_after} < 0")
        if self.rpc_grace <= 0:
            raise ConfigurationError(
                f"rpc_grace {self.rpc_grace} <= 0")

    def make_breaker(self, clock: Callable[[], float] = time.monotonic,
                     ) -> CircuitBreaker:
        return CircuitBreaker(failure_threshold=self.breaker_failures,
                              latency_threshold=self.breaker_latency,
                              recovery_time=self.breaker_recovery,
                              clock=clock)
