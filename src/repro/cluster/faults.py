"""Deterministic fault injection for the cluster serving layer.

The paper's threat model (Section II-B) makes the *host* adversarial; a
production deployment additionally has to survive the mundane versions of
the same events — enclaves dying, untrusted memory rotting, connections
hanging.  This module stages both kinds on a fixed, replayable schedule:

* :class:`FaultPlan` — an ordered schedule of :class:`FaultEvent`\\ s, each
  addressed to a target (a replica's shard id, or ``"net"`` for the TCP
  front door) and triggered when that target's own operation/frame counter
  reaches ``at``.  Plans are pure data: the same plan against the same
  workload produces the same failure history, which is what makes chaos
  tests assertable.
* :class:`FaultyShard` — a drop-in :class:`~repro.cluster.shard.Shard`
  wrapper whose server counts the requests it flushes and consults the
  plan before every flush: a due ``kill`` raises
  :class:`~repro.errors.ShardCrashedError` (and keeps raising until
  :meth:`FaultyShard.restart`), a due ``corrupt`` flips a ciphertext bit
  in the shard's untrusted memory via ``repro.attacks`` so the *next*
  touch of that record trips an integrity alarm.
* net faults (``delay`` / ``drop`` / ``close``) are consumed by
  :class:`~repro.cluster.netserver.ClusterNetServer`, keyed by its served
  frame count.
* wire attacks (``tamper`` / ``replay`` / ``downgrade``) are the on-path
  adversary of the v2 session layer, also played by the front door:
  tamper flips a ciphertext bit in an outgoing sealed frame, replay
  resends the previously sent frame, downgrade answers a v2 hello with a
  plaintext rejection.  All three must surface client-side as typed
  errors (``TamperedFrameError`` / ``ReplayError`` / ``HandshakeError``),
  never as decoded garbage.

A **kill** models the loss of the enclave, not of the host: EPC contents
and trust anchors are gone, so :meth:`FaultyShard.restart` brings up a
*fresh* enclave (new keys, empty store) that must re-sync from a live
replica through the trusted path before serving again (see
``repro.cluster.health``).  Harnik et al. plan for exactly this restart
path in production SGX storage.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import (
    ShardCrashedError,
    ShardUnreachableError,
    UnknownFaultKindError,
)

KILL = "kill"
CORRUPT = "corrupt"
# The host is alive but unreachable: frames black-hole and connects time
# out until the partition heals.  Distinct from KILL — the enclave and
# its state survive on the far side, so recovery is a reconnect +
# re-handshake + delta re-sync, never a rebuild.
PARTITION = "partition"
# The enclave is alive and correct but *stalled*: every flush takes
# ``seconds`` of extra wall-clock (EPC thrashing, a paging storm, a noisy
# neighbour).  Distinct from KILL (nothing died) and PARTITION (frames
# are answered, just late) — the failure mode circuit breakers exist
# for, because a slow shard stalls whole batches without tripping any
# crash or integrity alarm.
SLOW = "slow"
DELAY = "delay"
DROP = "drop"
CLOSE = "close"
# Wire attacks (an on-path adversary, played by the server itself so the
# schedule stays deterministic): flip a ciphertext bit in the outgoing
# frame, resend a recorded frame, or answer a v2 hello in plaintext.
TAMPER = "tamper"
REPLAY = "replay"
DOWNGRADE = "downgrade"
# Durability faults, consumed by repro.persist.PartitionDurability at its
# commit boundaries (and, for the attacker-strikes-during-downtime kinds,
# at recovery start).  ``at`` counts the partition's commit attempts.
TORN = "torn"            # append half a record, then "crash" the write
TRUNCATE = "truncate"    # cut the on-disk log in half
IO_ERROR = "io_error"    # the commit write fails before any byte lands
CAPTURE = "capture"      # attacker snapshots the whole untrusted disk
ROLLBACK = "rollback"    # attacker restores the captured disk state
CTR_RESET = "ctr_reset"  # attacker wipes the monotonic counter

#: The FaultPlan target consumed by the TCP front door.
NET_TARGET = "net"

_SHARD_KINDS = {KILL, CORRUPT, PARTITION, SLOW}
_NET_KINDS = {DELAY, DROP, CLOSE, TAMPER, REPLAY, DOWNGRADE}
_DUR_KINDS = {TORN, TRUNCATE, IO_ERROR, CAPTURE, ROLLBACK, CTR_RESET}

#: Net kinds that act on an established session's data frames.
WIRE_KINDS = frozenset({TAMPER, REPLAY})

#: Kinds the durability layer consumes (see repro.persist.durability).
DURABILITY_KINDS = frozenset(_DUR_KINDS)

#: Durability kinds safe inside a serving-phase chaos schedule: each is
#: detected at the next commit and repaired from live state, so the
#: zero-acked-write-loss invariant stays assertable.  ROLLBACK/CTR_RESET
#: belong in downtime scenarios where recovery must *reject* the state.
CHAOS_DUR_KINDS = (TORN, TRUNCATE, IO_ERROR)


def dur_target(group_id: str) -> str:
    """The FaultPlan target addressing a partition's durability sidecar."""
    return f"{group_id}/dur"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is a per-target trigger point: for shard faults, the number of
    requests the target has flushed; for net faults, the number of frames
    the server has served.  Each event fires exactly once.
    """

    kind: str
    target: str
    at: int
    key: bytes = b""        # CORRUPT: record to tamper (b"" = first key)
    seconds: float = 0.0    # DELAY/SLOW: stall; PARTITION: heal window
    ops: int = 0            # SLOW: flushes to stall (0 = until heal())

    def __post_init__(self):
        if self.kind not in _SHARD_KINDS | _NET_KINDS | _DUR_KINDS:
            raise UnknownFaultKindError(
                f"unknown fault kind {self.kind!r}; an event that can "
                "never fire is a schedule bug, not a no-op"
            )
        if self.at < 0:
            raise ValueError("fault trigger point must be >= 0")


class FaultPlan:
    """An immutable schedule of faults plus the fired-state bookkeeping."""

    def __init__(self, events: Iterable[FaultEvent] = (), *, spec: str = ""):
        self._by_target: Dict[str, List[FaultEvent]] = {}
        known = _SHARD_KINDS | _NET_KINDS | _DUR_KINDS
        for event in sorted(events, key=lambda e: (e.at, e.kind)):
            if event.kind not in known:
                # FaultEvent validates at construction, but a duck-typed
                # stand-in (or a future kind removed from the sets) must
                # not slip into a schedule as a never-firing ghost.
                raise UnknownFaultKindError(
                    f"unknown fault kind {event.kind!r} in plan event "
                    f"for target {event.target!r}"
                )
            self._by_target.setdefault(event.target, []).append(event)
        self._fired: set = set()
        #: How this plan was built (chaos() records its full argument list)
        #: so a failing chaos run can name its schedule in the assertion.
        self.spec = spec

    # -- fluent construction ------------------------------------------------------

    def _add(self, event: FaultEvent) -> "FaultPlan":
        self._by_target.setdefault(event.target, []).append(event)
        self._by_target[event.target].sort(key=lambda e: (e.at, e.kind))
        return self

    def kill(self, target: str, at: int) -> "FaultPlan":
        return self._add(FaultEvent(KILL, target, at))

    def corrupt(self, target: str, at: int, key: bytes = b"") -> "FaultPlan":
        return self._add(FaultEvent(CORRUPT, target, at, key=key))

    def partition(self, target: str, at: int,
                  seconds: float = 0.0) -> "FaultPlan":
        """Cut the target's host off the network at the ``at``-th op.

        ``seconds`` is the heal window: reconnect attempts inside it fail
        like timed-out connects; 0 means the partition is healable as
        soon as the health monitor notices (transient blip).
        """
        return self._add(FaultEvent(PARTITION, target, at, seconds=seconds))

    def slow(self, target: str, at: int, seconds: float,
             ops: int = 0) -> "FaultPlan":
        """Stall every flush of ``target`` by ``seconds`` from the
        ``at``-th op on.  ``ops`` bounds how many flushes stall (0 = the
        stall persists until :meth:`FaultyShard.heal`)."""
        return self._add(FaultEvent(SLOW, target, at, seconds=seconds,
                                    ops=ops))

    def delay(self, at: int, seconds: float,
              target: str = NET_TARGET) -> "FaultPlan":
        return self._add(FaultEvent(DELAY, target, at, seconds=seconds))

    def drop(self, at: int, target: str = NET_TARGET) -> "FaultPlan":
        return self._add(FaultEvent(DROP, target, at))

    def close(self, at: int, target: str = NET_TARGET) -> "FaultPlan":
        return self._add(FaultEvent(CLOSE, target, at))

    def tamper(self, at: int, target: str = NET_TARGET) -> "FaultPlan":
        """Flip a bit of the ``at``-th served frame's payload in flight."""
        return self._add(FaultEvent(TAMPER, target, at))

    def replay(self, at: int, target: str = NET_TARGET) -> "FaultPlan":
        """Resend the previous wire frame after the ``at``-th one."""
        return self._add(FaultEvent(REPLAY, target, at))

    def downgrade(self, at: int, target: str = NET_TARGET) -> "FaultPlan":
        """Answer the next v2 client hello with a plaintext rejection."""
        return self._add(FaultEvent(DOWNGRADE, target, at))

    def torn(self, target: str, at: int) -> "FaultPlan":
        """Tear the ``at``-th commit's append: half the record, then crash."""
        return self._add(FaultEvent(TORN, target, at))

    def truncate(self, target: str, at: int) -> "FaultPlan":
        """Cut the partition's on-disk log in half at the ``at``-th commit."""
        return self._add(FaultEvent(TRUNCATE, target, at))

    def io_error(self, target: str, at: int) -> "FaultPlan":
        """Fail the ``at``-th commit's write before any byte lands."""
        return self._add(FaultEvent(IO_ERROR, target, at))

    def capture(self, target: str, at: int) -> "FaultPlan":
        """Attacker snapshots the untrusted disk at the ``at``-th commit."""
        return self._add(FaultEvent(CAPTURE, target, at))

    def rollback(self, target: str, at: int) -> "FaultPlan":
        """Attacker restores the captured disk state (stale-state replay)."""
        return self._add(FaultEvent(ROLLBACK, target, at))

    def ctr_reset(self, target: str, at: int) -> "FaultPlan":
        """Attacker wipes the partition's monotonic counter."""
        return self._add(FaultEvent(CTR_RESET, target, at))

    # -- consumption --------------------------------------------------------------

    def events_for(self, target: str) -> List[FaultEvent]:
        return list(self._by_target.get(target, ()))

    def pop_due(self, target: str, counter: int,
                kinds: Optional[Iterable[str]] = None) -> List[FaultEvent]:
        """Events for ``target`` with ``at <= counter`` not yet fired.

        ``kinds`` restricts which kinds may fire (and be consumed) at this
        call site: the front door pops DOWNGRADE only while a handshake is
        in flight and TAMPER/REPLAY only on established-session frames, so
        an event never burns itself at a point where it cannot act.
        """
        wanted = None if kinds is None else set(kinds)
        due = []
        for event in self._by_target.get(target, ()):
            if wanted is not None and event.kind not in wanted:
                continue
            if event.at <= counter and id(event) not in self._fired:
                self._fired.add(id(event))
                due.append(event)
        return due

    def fired(self) -> int:
        """How many of the plan's events have been consumed so far."""
        return len(self._fired)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_target.values())

    # -- reproducibility ----------------------------------------------------------

    def describe(self) -> str:
        """The plan, human-readably: spec line plus every event and its
        fired state.  Chaos tests put this in their assertion messages so a
        red CI run can be replayed locally without bisecting seeds."""
        lines = [self.spec or f"FaultPlan({len(self)} events)"]
        for target in sorted(self._by_target):
            for event in self._by_target[target]:
                fired = "fired" if id(event) in self._fired else "pending"
                extra = ""
                if event.key:
                    extra += f" key={event.key.hex()}"
                if event.seconds:
                    extra += f" seconds={event.seconds}"
                if event.ops:
                    extra += f" ops={event.ops}"
                lines.append(f"  {event.kind:>9} @ {event.at:<6} "
                             f"-> {target} [{fired}]{extra}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-ready form (the CI fault-plan artifact on failure)."""
        return {
            "spec": self.spec,
            "fired": self.fired(),
            "events": [
                {
                    "kind": e.kind,
                    "target": e.target,
                    "at": e.at,
                    "key": e.key.hex(),
                    "seconds": e.seconds,
                    "ops": e.ops,
                    "fired": id(e) in self._fired,
                }
                for events in self._by_target.values() for e in events
            ],
        }

    # -- randomized-but-deterministic schedules -----------------------------------

    @classmethod
    def chaos(
        cls,
        targets: List[str],
        *,
        horizon: int,
        n_kills: int = 2,
        n_corrupts: int = 2,
        n_partitions: int = 0,
        n_slows: int = 0,
        slow_seconds: float = 0.02,
        slow_ops: int = 8,
        min_gap: int = 0,
        seed: int = 0,
        dur_targets: Optional[List[str]] = None,
        n_dur: int = 0,
        dur_horizon: Optional[int] = None,
    ) -> "FaultPlan":
        """A seeded random kill/corrupt schedule over ``targets``.

        Trigger points are drawn uniformly from ``[1, horizon)`` and then
        spaced at least ``min_gap`` ops apart *globally*, so a recovery
        pass (health check + re-sync) scheduled between faults gets a
        chance to run before the next one lands — the chaos test's
        "killing any *single* replica" regime rather than a simultaneous
        multi-kill.  Same (targets, horizon, counts, seed) → same plan.

        With ``dur_targets`` (each a :func:`dur_target` address) and
        ``n_dur`` > 0, the schedule also draws durability faults from
        :data:`CHAOS_DUR_KINDS` — torn appends, log truncation, commit I/O
        errors — with trigger points in ``[1, dur_horizon)`` counted in
        *commit attempts* (one per batch with acked writes, far fewer than
        ops; default ``max(2, horizon // 16)``).
        """
        if not targets:
            raise ValueError("chaos needs at least one target")
        rng = random.Random(seed)
        kinds = ([KILL] * n_kills + [CORRUPT] * n_corrupts
                 + [PARTITION] * n_partitions + [SLOW] * n_slows)
        rng.shuffle(kinds)
        points: List[int] = []
        at = 0
        for i, _ in enumerate(kinds):
            at = max(at + min_gap, rng.randrange(1, max(2, horizon)))
            points.append(at)
        events = [
            FaultEvent(kind, rng.choice(targets), at,
                       seconds=slow_seconds if kind == SLOW else 0.0,
                       ops=slow_ops if kind == SLOW else 0)
            for kind, at in zip(kinds, sorted(points))
        ]
        if dur_targets and n_dur:
            span = dur_horizon if dur_horizon is not None \
                else max(2, horizon // 16)
            for _ in range(n_dur):
                events.append(FaultEvent(
                    rng.choice(CHAOS_DUR_KINDS),
                    rng.choice(dur_targets),
                    rng.randrange(1, max(2, span)),
                ))
        spec = (f"FaultPlan.chaos(targets={targets!r}, horizon={horizon}, "
                f"n_kills={n_kills}, n_corrupts={n_corrupts}, "
                f"n_partitions={n_partitions}, n_slows={n_slows}, "
                f"min_gap={min_gap}, seed={seed}")
        if dur_targets and n_dur:
            spec += (f", dur_targets={dur_targets!r}, n_dur={n_dur}, "
                     f"dur_horizon={dur_horizon!r}")
        spec += ")"
        return cls(events, spec=spec)


def plant_corruption(store, key: bytes = b"") -> bool:
    """Flip a ciphertext bit of one record in ``store``'s untrusted memory.

    The whole plant — victim selection (unmetered: it is the attacker's
    work) plus the bit flip — runs against the *real* store, so it must
    execute wherever the enclave lives: inline shards call it directly,
    process-backed shards run it inside the worker via the
    ``plant_corruption`` RPC.  Returns whether a corruption landed (an
    empty store, a vanished key, or a previously-tripped alarm all mean
    there was nothing to tamper with).
    """
    from repro.attacks.scenarios import corrupt_record_in_place
    from repro.errors import AriaError
    from repro.sgx.meter import MeterPause

    if len(store) == 0:
        return False
    try:
        with MeterPause(store.enclave.meter):
            victim = key or next(iter(store.keys()))
        corrupt_record_in_place(store, victim)
    except AriaError:
        return False
    return True


class _FaultyServer:
    """The request-path interposer: counts flushes, fires due faults."""

    def __init__(self, owner: "FaultyShard"):
        self._owner = owner

    def flush_batch(self, requests) -> list:
        requests = list(requests)
        owner = self._owner
        owner.ops_flushed += len(requests)
        for event in owner.plan.pop_due(owner.shard_id, owner.ops_flushed):
            owner.apply(event)
        if owner.crashed:
            raise ShardCrashedError(
                f"shard {owner.shard_id} is down (enclave killed)"
            )
        if owner.partitioned:
            raise ShardUnreachableError(
                f"shard {owner.shard_id} is unreachable (partitioned)"
            )
        # A SLOW stall happens here, in the parent-side request path, so the
        # failure signature — the flush call takes `seconds` longer, nothing
        # raises — is identical across inline/process/socket backends, just
        # like PARTITION black-holing.
        if owner.stalled:
            owner.stalls += 1
            if owner._stall_ops_left is not None:
                owner._stall_ops_left -= 1
            time.sleep(owner._stall_seconds)
        return owner.inner.server.flush_batch(requests)


class FaultyShard:
    """A Shard wrapper that injects the plan's faults into its own path.

    Duck-types :class:`~repro.cluster.shard.Shard` (``shard_id``, ``store``,
    ``server``, ``meter``, balancer marks, ``stats``) so coordinators,
    replica groups, balancers and stats aggregation all work unchanged.
    Touching the ``store`` or ``server`` of a crashed shard raises
    :class:`~repro.errors.ShardCrashedError` — dead enclaves don't answer.
    """

    def __init__(
        self,
        shard,
        plan: Optional[FaultPlan] = None,
        *,
        rebuild: Optional[Callable[[], object]] = None,
    ):
        self.inner = shard
        self.plan = plan or FaultPlan()
        self._rebuild = rebuild
        self.crashed = False
        self.ops_flushed = 0
        self.restarts = 0
        self.corruptions = 0
        self.partitions = 0
        self.reconnects = 0
        self.stalls = 0
        self._partitioned = False
        self._heal_at = 0.0
        self._stall_seconds = 0.0
        self._stall_ops_left: Optional[int] = None
        self._server = _FaultyServer(self)

    # -- fault application --------------------------------------------------------

    def apply(self, event: FaultEvent) -> None:
        if event.kind == KILL:
            self.kill()
        elif event.kind == CORRUPT:
            self.corrupt(event.key)
        elif event.kind == PARTITION:
            self.partition(event.seconds)
        elif event.kind == SLOW:
            self.stall(event.seconds, event.ops)
        else:  # pragma: no cover - plans are validated at construction
            raise ValueError(f"shard cannot apply fault {event.kind!r}")

    def kill(self) -> None:
        """Kill the enclave: every later touch raises ShardCrashedError.

        On a process-backed shard this is a real ``SIGKILL`` of the
        worker — the enclave, its keys and its EPC contents die with the
        OS process, not as a flag in the parent.
        """
        self.crashed = True
        kill = getattr(self.inner, "kill", None)
        if kill is not None:
            kill()

    def corrupt(self, key: bytes = b"") -> None:
        """Flip a ciphertext bit of one record in untrusted memory.

        With no explicit ``key``, the first key the index yields is hit —
        deterministic for a given store history.  A corrupt on an empty
        (or crashed) shard is a no-op: there is nothing to tamper with.
        The plant runs wherever the enclave lives (see
        :func:`plant_corruption`), so inline and process shards meter the
        attacker's walk identically.
        """
        if self.crashed:
            return
        remote = getattr(self.inner, "plant_corruption", None)
        if remote is not None:
            planted = remote(key)
        else:
            planted = plant_corruption(self.inner.store, key)
        if planted:
            self.corruptions += 1

    def restart(self):
        """Replace the dead enclave with a fresh, *empty* one.

        EPC contents (keys, trust anchors, Secure Cache) did not survive,
        so the replacement shares nothing with its predecessor; the health
        monitor must re-sync it from a live replica before it serves.
        Returns the new inner shard.
        """
        if not self.crashed:
            raise ShardCrashedError(
                f"shard {self.shard_id} is not down; nothing to restart"
            )
        if self._rebuild is None:
            raise ShardCrashedError(
                f"shard {self.shard_id} has no rebuild recipe"
            )
        old = self.inner
        self.inner = self._rebuild()
        self.crashed = False
        self._partitioned = False
        self._heal_at = 0.0
        self._stall_seconds = 0.0
        self._stall_ops_left = None
        self.restarts += 1
        close = getattr(old, "close", None)
        if close is not None:
            close()  # reap the dead worker's process entry and pipe
        return self.inner

    # -- stalls -------------------------------------------------------------------

    def stall(self, seconds: float, ops: int = 0) -> None:
        """Make every flush take ``seconds`` of extra wall-clock.

        The enclave stays alive, correct, and metered exactly as before —
        only the *latency* of the parent-side flush changes, which is what
        makes SLOW invisible to crash/integrity alarms and the reason
        circuit breakers key on latency.  ``ops`` bounds how many flushes
        stall (0 = until :meth:`heal`).
        """
        if self.crashed:
            return
        self._stall_seconds = float(seconds)
        self._stall_ops_left = int(ops) if ops > 0 else None

    @property
    def stalled(self) -> bool:
        if self._stall_seconds <= 0.0:
            return False
        if self._stall_ops_left is not None and self._stall_ops_left <= 0:
            self._stall_seconds = 0.0
            self._stall_ops_left = None
            return False
        return True

    # -- partitions ---------------------------------------------------------------

    def partition(self, duration: float = 0.0) -> None:
        """Cut the shard off without killing it: frames black-hole.

        Socket-backed shards partition for real (the link is severed and
        the far-side enclave keeps its state); for inline/process shards
        the wrapper black-holes its own request path so the *failure
        signature* — :class:`~repro.errors.ShardUnreachableError`, enclave
        state intact — is identical across backends.  ``duration`` is the
        heal window: :meth:`reconnect` refuses until it has elapsed.
        """
        if self.crashed:
            return
        self.partitions += 1
        inner = getattr(self.inner, "partition", None)
        if inner is not None:
            inner(duration)
            return
        self._partitioned = True
        self._heal_at = time.monotonic() + duration

    def heal(self) -> None:
        """Collapse the remaining heal window; the next reconnect succeeds.

        Also lifts any :meth:`stall`: a healed shard serves at full speed.
        """
        self._heal_at = 0.0
        self._stall_seconds = 0.0
        self._stall_ops_left = None
        heal = getattr(self.inner, "heal", None)
        if heal is not None:
            heal()

    def reconnect(self) -> bool:
        """Try to re-establish the link to a partitioned shard.

        Returns ``True`` when the shard is reachable again — state intact,
        no restart or re-sync-from-scratch needed.  Returns ``False``
        while the heal window is still open, or when the far side turned
        out to be dead (in which case ``crashed`` is now set and the
        normal restart path applies).
        """
        if self.crashed:
            return False
        inner = getattr(self.inner, "reconnect", None)
        if inner is not None:
            ok = bool(inner())
            if ok:
                self._partitioned = False
                self.reconnects += 1
            elif getattr(self.inner, "crashed", False):
                self.crashed = True
            return ok
        if not self._partitioned:
            return True
        if time.monotonic() < self._heal_at:
            return False
        self._partitioned = False
        self.reconnects += 1
        return True

    @property
    def partitioned(self) -> bool:
        return self._partitioned or getattr(self.inner, "partitioned", False)

    # -- Shard duck-typing --------------------------------------------------------

    @property
    def shard_id(self) -> str:
        return self.inner.shard_id

    @property
    def store(self):
        if self.crashed:
            raise ShardCrashedError(
                f"shard {self.shard_id} is down (enclave killed)"
            )
        if self.partitioned:
            raise ShardUnreachableError(
                f"shard {self.shard_id} is unreachable (partitioned)"
            )
        return self.inner.store

    @property
    def server(self):
        return self._server

    @property
    def epc_bytes(self) -> int:
        return self.inner.epc_bytes

    @property
    def meter(self):
        return self.inner.meter

    @property
    def ops_routed(self) -> int:
        return self.inner.ops_routed

    @ops_routed.setter
    def ops_routed(self, value: int) -> None:
        self.inner.ops_routed = value

    def load_since_mark(self) -> float:
        return self.inner.load_since_mark()

    def mark_load(self) -> None:
        self.inner.mark_load()

    def stats(self) -> dict:
        row = self.inner.stats()
        row["crashed"] = self.crashed
        row["restarts"] = self.restarts
        row["partitions"] = self.partitions
        row["reconnects"] = self.reconnects
        row["stalls"] = self.stalls
        return row

    def close(self, timeout: float = 5.0) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "down" if self.crashed else "up"
        return f"FaultyShard({self.shard_id!r}, {state})"
