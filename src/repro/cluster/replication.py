"""Per-shard replication: R independent enclaves behind one ring partition.

The ROADMAP's top open item, and the piece that turns a shard crash or a
tampered record from a lost batch into a served request.  One
:class:`ReplicaGroup` owns a ring partition and duck-types
:class:`~repro.cluster.shard.Shard`, so the coordinator, balancer and stats
layers work unchanged; inside, it holds R replicas, each a *separate*
:class:`~repro.sgx.enclave.Enclave` with its own key material — enclaves
share no secrets, so a write is applied to every live replica through the
trusted path and re-sealed under each replica's own keys, with every cycle
metered on that replica's meter.  Replication is never free here: the
benchmarks measure its write amplification honestly.

Request semantics (:meth:`ReplicaGroup.flush_batch`):

* the **primary** — the first live replica — executes the full batch in
  arrival order, preserving the per-key ordering contract even for
  read/write interleavings within one batch;
* every other live replica then executes the batch's *writes* (in order),
  converging on the same end state;
* a replica that **crashes** (:class:`~repro.errors.ShardCrashedError`) is
  marked DOWN and the batch is retried on the next live replica — the
  caller never sees the crash;
* a replica that raises an **integrity alarm** is quarantined (marked DOWN
  for re-sync) and the failing *reads* fail over to a peer — unless it is
  the group's last live replica, in which case the alarm surfaces to the
  client (``Status.INTEGRITY_FAILURE``) rather than silently going dark:
  an attacked-but-alive store is still more useful than no store;
* with **no live replica at all**, every request in the batch gets
  ``Status.UNAVAILABLE`` — an error response, never a lost slot.

A DOWN replica stays out of the read and write paths until the
:class:`~repro.cluster.health.HealthMonitor` restarts it and re-syncs its
state from a live peer (verified reads on the peer, re-sealed puts on the
newcomer — the same trusted path the balancer's migrations use).
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.bench.harness import PAPER_EPC_BYTES
from repro.cluster.backend import BackendSpec, resolve_backend
from repro.cluster.coordinator import (
    ClusterCoordinator,
    DEFAULT_BATCH_WINDOW,
)
from repro.cluster.faults import FaultPlan, FaultyShard
from repro.cluster.ring import DEFAULT_VNODES, VnodeSpec
from repro.cluster.shard import MIN_SHARD_EPC_BYTES, resolve_workers
from repro.errors import (
    IntegrityError,
    KeyNotFoundError,
    ReplicaUnavailableError,
    ShardCrashedError,
    ShardUnreachableError,
)
from repro.server.protocol import (
    OpCode,
    Request,
    Response,
    Status,
)
from repro.sgx.meter import CycleMeter, MeterSnapshot

DEFAULT_REPLICATION = 2


def _down_reason(exc: BaseException) -> str:
    """``"unreachable"`` for partitions, ``"crash"`` for dead enclaves.

    The distinction drives recovery: an unreachable replica's enclave is
    still alive on the far side, so the health monitor tries a reconnect
    (re-dial + re-handshake + delta re-sync) before falling back to the
    full restart-and-rebuild path a crash requires.
    """
    return "unreachable" if isinstance(exc, ShardUnreachableError) else "crash"


class ReplicaState(enum.Enum):
    UP = "up"
    DOWN = "down"
    RECOVERING = "recovering"


class Replica:
    """One copy of a partition: a shard plus its health bookkeeping."""

    def __init__(self, shard):
        self.shard = shard
        self.state = ReplicaState.UP
        self.downs = 0
        self.last_reason = ""

    @property
    def replica_id(self) -> str:
        return self.shard.shard_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Replica({self.replica_id!r}, {self.state.value})"


def _unavailable(group_id: str) -> Response:
    return Response(Status.UNAVAILABLE,
                    b"no live replica in " + group_id.encode())


class ReplicaGroup:
    """R replica shards serving one ring partition, Shard-duck-typed."""

    def __init__(self, group_id: str, shards: List):
        if not shards:
            raise ValueError("a replica group needs at least one replica")
        self.shard_id = group_id
        self.replicas = [Replica(s) for s in shards]
        self.ops_routed = 0
        self.failovers = 0
        self.unavailable_requests = 0
        #: Optional sealed-durability sidecar (repro.persist); when set,
        #: every batch's acked writes are group-committed to it before the
        #: responses leave this group.
        self.durability = None
        self.durability_failures = 0
        self.durability_repairs = 0
        #: Reads served on a secondary while the primary's circuit breaker
        #: was open (see :meth:`flush_reads_fallback`).
        self.read_fallbacks = 0
        self._store = _GroupStore(self)
        self._meter = _GroupMeter(self)

    # -- membership ---------------------------------------------------------------

    def live_replicas(self) -> List[Replica]:
        return [r for r in self.replicas if r.state is ReplicaState.UP]

    def _first_live(self) -> Optional[Replica]:
        for replica in self.replicas:
            if replica.state is ReplicaState.UP:
                return replica
        return None

    def mark_down(self, replica: Replica, reason: str) -> None:
        if replica.state is ReplicaState.DOWN:
            return
        replica.state = ReplicaState.DOWN
        replica.downs += 1
        replica.last_reason = reason

    # -- the replicated request path ----------------------------------------------

    @property
    def server(self) -> "ReplicaGroup":
        return self  # the group is its own flush_batch endpoint

    def flush_batch(self, requests) -> List[Response]:
        requests = list(requests)
        if not requests:
            return []
        write_positions = [i for i, r in enumerate(requests)
                           if r.opcode != OpCode.GET]
        writes = [requests[i] for i in write_positions]

        # 1. Primary pass: the full batch, in order, on the first live
        #    replica; crashes promote the next replica transparently.
        primary = None
        responses: Optional[List[Response]] = None
        while primary is None:
            replica = self._first_live()
            if replica is None:
                self.unavailable_requests += len(requests)
                return [_unavailable(self.shard_id)] * len(requests)
            try:
                responses = list(replica.shard.server.flush_batch(requests))
            except ShardCrashedError as exc:
                self.mark_down(replica, _down_reason(exc))
                self.failovers += 1
                continue
            primary = replica

        # 2. Write fan-out: every other live replica applies the writes in
        #    order, re-sealing each record under its own keys.  The first
        #    peer's acks are kept so a rotten primary's write responses can
        #    be substituted below.
        peer_write_responses: Optional[List[Response]] = None
        if writes:
            for replica in list(self.live_replicas()):
                if replica is primary:
                    continue
                try:
                    peer = list(replica.shard.server.flush_batch(writes))
                except ShardCrashedError as exc:
                    self.mark_down(replica, _down_reason(exc))
                    continue
                if any(r.status == Status.INTEGRITY_FAILURE for r in peer):
                    # This replica's untrusted memory is rotten; quarantine
                    # it for re-sync rather than let it diverge.
                    self.mark_down(replica, "integrity")
                    continue
                if peer_write_responses is None:
                    peer_write_responses = peer

        # 3. Integrity failover off the primary: quarantine it and re-serve
        #    the alarmed requests from peers (writes from the fan-out acks,
        #    reads by re-execution) — unless the primary is the last live
        #    replica, in which case the alarm surfaces.
        alarmed = [i for i, r in enumerate(responses)
                   if r.status == Status.INTEGRITY_FAILURE]
        if alarmed and len(self.live_replicas()) > 1:
            self.mark_down(primary, "integrity")
            if peer_write_responses is not None:
                write_index = {pos: j
                               for j, pos in enumerate(write_positions)}
                for i in alarmed:
                    if i in write_index:
                        responses[i] = peer_write_responses[write_index[i]]
                        self.failovers += 1
            alarmed_reads = [i for i in alarmed
                             if requests[i].opcode == OpCode.GET]
            self._failover_reads(alarmed_reads, requests, responses)

        # 4. Group commit: exactly the writes about to be positively acked
        #    are sealed into one durable log record.  A write that cannot
        #    be made durable is not acked — its slot becomes UNAVAILABLE.
        if self.durability is not None:
            self._commit_durable(requests, write_positions, responses)
        return responses

    def flush_reads_fallback(self, requests) -> List[Response]:
        """Serve a read-only batch while *avoiding* the primary.

        The overload layer's escape hatch for an open circuit breaker: the
        primary is slow-but-alive (tripping the breaker), so reads are
        routed to the first live secondary — same verified read path, same
        metering, different enclave.  Crashed secondaries fail over to the
        next; with no live secondary at all the primary serves after all
        (a slow read beats no read).  Writes never take this path: they
        must land on every live replica in order, which is exactly what a
        stalled primary cannot guarantee in time.
        """
        requests = list(requests)
        if any(r.opcode != OpCode.GET and r.opcode != OpCode.HEALTH
               for r in requests):
            raise ValueError("flush_reads_fallback only serves reads")
        if not requests:
            return []
        live = self.live_replicas()
        primary = self._first_live()
        for replica in live:
            if replica is primary:
                continue
            try:
                responses = list(replica.shard.server.flush_batch(requests))
            except ShardCrashedError as exc:
                self.mark_down(replica, _down_reason(exc))
                continue
            if any(r.status == Status.INTEGRITY_FAILURE for r in responses):
                # Rotten secondary: quarantine it and keep looking.
                self.mark_down(replica, "integrity")
                continue
            self.read_fallbacks += len(requests)
            return responses
        return self.flush_batch(requests)

    def _commit_durable(self, requests: List[Request],
                        write_positions: List[int],
                        responses: List[Response]) -> None:
        """Group-commit the batch's acked writes; un-ack them on failure.

        Deletes that found no key (NOT_FOUND) changed no state and are not
        logged.  On a :class:`~repro.errors.DurabilityError` the partition
        repairs durability from its own live state — authoritative while
        any replica is up — with a full snapshot, then retries once; if
        that also fails, the affected writes are answered UNAVAILABLE so
        the client never holds an ack the disk doesn't.
        """
        from repro.errors import DurabilityError

        acked = [i for i in write_positions
                 if responses[i].status == Status.OK]
        if not acked:
            return
        batch = [requests[i] for i in acked]
        try:
            self.durability.commit(batch)
            return
        except DurabilityError:
            pass
        if self._repair_durability():
            self.durability_repairs += 1
            try:
                self.durability.commit(batch)
                return
            except DurabilityError:
                pass
        self.durability_failures += len(acked)
        self.unavailable_requests += len(acked)
        for i in acked:
            responses[i] = Response(
                Status.UNAVAILABLE,
                b"durability commit failed in " + self.shard_id.encode())

    def _repair_durability(self) -> bool:
        """Re-establish durability from live state with a full snapshot.

        Covers every mid-run disk misadventure — a torn append, an
        injected I/O error, truncation or rollback of the log while the
        partition is alive: the primary's verified reads rebuild the full
        pair set and :meth:`~repro.persist.durability.PartitionDurability
        .snapshot` atomically replaces the on-disk state and resets the
        chain.  Metered honestly on both sides (reads on the primary,
        sealing on the durability meter).
        """
        from repro.errors import DurabilityError

        primary = self._first_live()
        if primary is None:
            return False
        try:
            store = primary.shard.store
            pairs = [(key, store.get(key)) for key in list(store.keys())]
            self.durability.snapshot(pairs)
            return True
        except (DurabilityError, ShardCrashedError, IntegrityError):
            return False

    def _failover_reads(self, positions: List[int],
                        requests: List[Request],
                        responses: List[Response]) -> None:
        """Re-serve the reads at ``positions`` on successive live replicas."""
        remaining = list(positions)
        while remaining:
            replica = self._first_live()
            if replica is None:
                for i in remaining:
                    responses[i] = _unavailable(self.shard_id)
                self.unavailable_requests += len(remaining)
                return
            try:
                retried = list(replica.shard.server.flush_batch(
                    [requests[i] for i in remaining]
                ))
            except ShardCrashedError as exc:
                self.mark_down(replica, _down_reason(exc))
                continue
            self.failovers += len(remaining)
            for i, response in zip(remaining, retried):
                responses[i] = response
            still_bad = [i for i, r in zip(remaining, retried)
                         if r.status == Status.INTEGRITY_FAILURE]
            if not still_bad or len(self.live_replicas()) <= 1:
                return  # clean, or the last live replica: surface the alarm
            self.mark_down(replica, "integrity")
            remaining = still_bad

    # -- Shard duck-typing: store facade, meter, balancer marks -------------------

    @property
    def store(self) -> "_GroupStore":
        return self._store

    @property
    def meter(self) -> "_GroupMeter":
        return self._meter

    @property
    def epc_bytes(self) -> int:
        return sum(r.shard.epc_bytes for r in self.replicas)

    def load_since_mark(self) -> float:
        return max(r.shard.load_since_mark() for r in self.replicas)

    def mark_load(self) -> None:
        for replica in self.replicas:
            replica.shard.mark_load()

    def close(self, timeout: float = 5.0) -> None:
        """Release every replica's backing resources (see Shard.close)."""
        for replica in self.replicas:
            close = getattr(replica.shard, "close", None)
            if close is not None:
                close(timeout)

    def _commit_single(self, request: Request) -> None:
        """Durably log one trusted-path write (migration / direct put).

        Same repair-then-retry policy as the batch hook, but there is no
        response to un-ack here: a persistent failure surfaces as the
        typed :class:`~repro.errors.DurabilityError` to the caller.
        """
        if self.durability is None:
            return
        from repro.errors import DurabilityError

        try:
            self.durability.commit([request])
            return
        except DurabilityError:
            pass
        if self._repair_durability():
            self.durability_repairs += 1
            self.durability.commit([request])
            return
        self.durability_failures += 1
        raise DurabilityError(
            f"durability commit failed in {self.shard_id} and live-state "
            "repair was impossible")

    def stats(self) -> dict:
        primary = self._first_live() or self.replicas[0]
        row = primary.shard.stats()
        row["shard"] = self.shard_id
        row["ops_routed"] = self.ops_routed
        row["replication"] = len(self.replicas)
        row["replicas_up"] = len(self.live_replicas())
        row["failovers"] = self.failovers
        row["read_fallbacks"] = self.read_fallbacks
        if self.durability is not None:
            row["durability"] = dict(
                self.durability.stats(),
                failures=self.durability_failures,
                repairs=self.durability_repairs,
            )
        row["replicas"] = {
            r.replica_id: {"state": r.state.value, "downs": r.downs,
                           "reason": r.last_reason,
                           "cycles": r.shard.meter.cycles}
            for r in self.replicas
        }
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = ",".join(r.state.value for r in self.replicas)
        return f"ReplicaGroup({self.shard_id!r}, [{states}])"


class _GroupStore:
    """Store facade: verified reads off the primary, writes fanned out.

    Gives the coordinator's ``load``/``total_keys`` and the balancer's
    trusted-path migration an unchanged API over the whole group: a
    migration Put lands on (and is re-sealed by) *every* live replica.
    """

    def __init__(self, group: ReplicaGroup):
        self._group = group

    # -- reads --------------------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        group = self._group
        while True:
            replica = group._first_live()
            if replica is None:
                raise ReplicaUnavailableError(
                    f"no live replica in {group.shard_id}")
            try:
                return replica.shard.store.get(key)
            except ShardCrashedError as exc:
                group.mark_down(replica, _down_reason(exc))
                group.failovers += 1
            except IntegrityError:
                if len(group.live_replicas()) <= 1:
                    raise
                group.mark_down(replica, "integrity")
                group.failovers += 1

    def keys(self):
        return self._primary_store().keys()

    def __len__(self) -> int:
        replica = self._group._first_live()
        if replica is None:
            return 0
        return len(replica.shard.store)

    def __contains__(self, key: bytes) -> bool:
        return key in self._primary_store()

    # -- writes -------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        group = self._group
        applied = 0
        for replica in list(group.live_replicas()):
            try:
                replica.shard.store.put(key, value)
                applied += 1
            except ShardCrashedError as exc:
                group.mark_down(replica, _down_reason(exc))
        if not applied:
            raise ReplicaUnavailableError(
                f"no live replica in {group.shard_id}")
        group._commit_single(Request(OpCode.PUT, key, value))

    def delete(self, key: bytes) -> None:
        group = self._group
        applied = 0
        deleted = 0
        for replica in list(group.live_replicas()):
            try:
                replica.shard.store.delete(key)
                deleted += 1
                applied += 1
            except KeyNotFoundError:
                applied += 1
            except ShardCrashedError as exc:
                group.mark_down(replica, _down_reason(exc))
        if not applied:
            raise ReplicaUnavailableError(
                f"no live replica in {group.shard_id}")
        if not deleted:
            raise KeyNotFoundError(key)
        group._commit_single(Request(OpCode.DELETE, key))

    def load(self, pairs) -> None:
        """Bulk-load every (non-crashed) replica — unmetered setup.

        With durability attached the load is committed too (chunked to the
        protocol's batch cap): a preloaded key is as acked as a written
        one, so it must survive whole-group death like any other.
        """
        pairs = list(pairs)
        for replica in self._group.replicas:
            try:
                replica.shard.store.load(pairs)
            except ShardCrashedError as exc:  # pragma: no cover - load-time kill
                self._group.mark_down(replica, _down_reason(exc))
        durability = self._group.durability
        if durability is not None:
            durability.commit_load(pairs)

    # -- plumbing -----------------------------------------------------------------

    def _primary_store(self):
        replica = self._group._first_live()
        if replica is None:
            raise ReplicaUnavailableError(
                f"no live replica in {self._group.shard_id}")
        return replica.shard.store

    @property
    def enclave(self):
        """Any replica's enclave (for platform constants in stats)."""
        replica = self._group._first_live()
        if replica is not None:
            return replica.shard.store.enclave
        shard = self._group.replicas[0].shard
        return getattr(shard, "inner", shard).store.enclave


class _GroupMeter:
    """A merged meter view so ``ClusterStats`` can aggregate groups.

    Replicas run in parallel, so the group's wall-clock contribution is
    its *slowest* replica: ``cycles`` is the max over replica meters.
    Event counts are summed — executed ops across a replicated group
    genuinely exceed routed ops (write amplification), and the stats layer
    reports that honestly.  After a replica restart (fresh meter) the max
    and the sums can dip; windows that span a restart are approximate.
    """

    def __init__(self, group: ReplicaGroup):
        self._group = group

    def _meters(self):
        return [r.shard.meter for r in self._group.replicas]

    @property
    def cycles(self) -> float:
        return max(m.cycles for m in self._meters())

    @property
    def events(self):
        return self.snapshot().events

    def snapshot(self) -> MeterSnapshot:
        # One snapshot per replica (a single RPC each for process-backed
        # shards), merged via the meter's own serialization-friendly path.
        snaps = [m.snapshot() for m in self._meters()]
        merged = CycleMeter()
        for snap in snaps:
            merged.merge(snap)
        return MeterSnapshot(cycles=max(s.cycles for s in snaps),
                             events=merged.events)


# -- construction ---------------------------------------------------------------


def build_replica_group(
    group_id: str,
    replication: int,
    *,
    epc_bytes: int,
    capacity_keys: int,
    index: str = "hash",
    seed: int = 0,
    value_hint: int = 16,
    fault_plan: Optional[FaultPlan] = None,
    backend: BackendSpec = None,
    workers: Optional[int] = None,
    **config_overrides,
) -> ReplicaGroup:
    """R independent enclaves for one partition, each with its own keys.

    Replica ids are ``<group_id>/r<j>`` (the FaultPlan's addressing).
    Every replica gets a distinct seed, hence distinct
    :class:`~repro.crypto.keys.KeyMaterial`; a restart mints yet another
    seed, because a fresh enclave never inherits its predecessor's keys.
    Both initial construction and restarts go through the shard
    ``backend``, so a restarted process-backed replica is a genuinely new
    OS process; the seed policy is backend-independent, keeping key
    material and metering identical across backends.
    """
    if replication < 1:
        raise ValueError("replication factor must be >= 1")
    factory = resolve_backend(backend)
    # Resolved once, captured by the rebuild closures: a restarted replica
    # keeps its group's worker count even if the environment changed.
    workers = resolve_workers(workers)
    shards = []
    for j in range(replication):
        replica_id = f"{group_id}/r{j}"
        replica_seed = seed + 17 * j + 1

        def make_rebuild(rid: str, base_seed: int) -> Callable[[], object]:
            incarnation = {"n": 0}

            def rebuild():
                incarnation["n"] += 1
                return factory.create(
                    rid,
                    epc_bytes=epc_bytes,
                    capacity_keys=capacity_keys,
                    index=index,
                    seed=base_seed + 7919 * incarnation["n"],
                    value_hint=value_hint,
                    workers=workers,
                    **config_overrides,
                )

            return rebuild

        rebuild = make_rebuild(replica_id, replica_seed)
        shard = factory.create(
            replica_id,
            epc_bytes=epc_bytes,
            capacity_keys=capacity_keys,
            index=index,
            seed=replica_seed,
            value_hint=value_hint,
            workers=workers,
            **config_overrides,
        )
        shards.append(FaultyShard(shard, fault_plan, rebuild=rebuild))
    return ReplicaGroup(group_id, shards)


def build_replicated_cluster(
    n_shards: int,
    *,
    replication: int = DEFAULT_REPLICATION,
    n_keys: int,
    cluster_epc_bytes: int = PAPER_EPC_BYTES,
    scale: int = 1,
    index: str = "hash",
    vnodes: VnodeSpec = DEFAULT_VNODES,
    batch_window: int = DEFAULT_BATCH_WINDOW,
    seed: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    backend: BackendSpec = None,
    workers: Optional[int] = None,
    **shard_overrides,
) -> ClusterCoordinator:
    """A cluster of N partitions × R replica enclaves behind one ring.

    Like :func:`~repro.cluster.coordinator.build_cluster`, but the EPC
    budget is carved across *all* ``n_shards * replication`` enclaves —
    replication's memory cost is paid inside the same envelope, so R=2
    halves each enclave's share rather than conjuring free hardware.
    """
    total_enclaves = n_shards * replication
    per_enclave = max(MIN_SHARD_EPC_BYTES,
                      cluster_epc_bytes // scale // total_enclaves)
    factory = resolve_backend(backend)
    groups = [
        build_replica_group(
            f"shard-{i}",
            replication,
            epc_bytes=per_enclave,
            capacity_keys=n_keys,
            index=index,
            seed=seed + 101 * i,
            fault_plan=fault_plan,
            backend=factory,
            workers=workers,
            **shard_overrides,
        )
        for i in range(n_shards)
    ]
    coordinator = ClusterCoordinator(groups, vnodes=vnodes,
                                     batch_window=batch_window)
    coordinator.backend = factory
    return coordinator
