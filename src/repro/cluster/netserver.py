"""Asyncio TCP front door for the sharded cluster.

Speaks ``repro.server.protocol`` frames over a stream with a 4-byte
little-endian length prefix::

    wire frame := frame_len (u32 LE) | payload
    payload    := v1 plaintext batch, or a v2 session frame
                  (see repro.server.protocol / repro.cluster.session)

* **Pipelining** — a client may write any number of request frames without
  waiting; responses come back in frame order (and positionally within a
  frame, per the protocol contract).
* **Bounded allocation** — ``frame_len`` is attacker-supplied, so it is
  checked against ``protocol.MAX_FRAME_BYTES`` *before* the payload is
  read; an oversized or zero length gets the canonical batch rejection and
  the connection is closed (there is no way to resynchronize a stream
  whose framing is untrusted).
* **Encrypted sessions** — a connection may open with a v2 handshake frame
  (:mod:`repro.cluster.session`): the front door's gateway
  :class:`~repro.cluster.session.SessionManager` answers with a
  transcript-bound quote, and every later frame on that connection is
  AEAD-protected.  The ``security`` policy decides what else is allowed:

  ==============  ====================================================
  ``"optional"``  (default) v1 plaintext and v2 sessions both served
  ``"required"``  v1 plaintext data frames are rejected and the
                  connection closed — encrypted or nothing
  ``"plaintext"`` v2 hellos are refused (the ``--insecure`` front
                  door that prices the v1 baseline)
  ==============  ====================================================

  Wire attacks from the fault plan (``tamper``/``replay``/``downgrade``)
  are staged here, acting as the deterministic on-path adversary; the
  matching alarms count what the session layer caught.
* **Bounded admission** — ``max_inflight`` caps how many request frames
  may be admitted (executing or queued) at once; excess frames wait on a
  LIFO stack and are shed with ``STATUS_OVERLOADED`` + ``retry_after``
  when the stack is full or their deadline budget runs out while queued
  (newest-first service: under overload the freshest work has the most
  budget left).  ``max_connections`` refuses connections beyond the cap
  outright.  Clients attach deadline budgets as a wire envelope
  (:func:`repro.server.protocol.wrap_deadline`); the front door strips
  the envelope, sheds already-expired frames without executing them, and
  hands the remaining budget to the coordinator's overload layer.
* **Graceful shutdown** — :meth:`ClusterNetServer.stop` stops accepting,
  lets in-flight frames finish, closes every connection, and wakes
  :meth:`serve_forever`.

:class:`ClusterClient` is the matching synchronous client (plain stdlib
sockets — examples, tests, and CLI tooling shouldn't need an event loop),
and :class:`BackgroundServer` runs the whole server on a daemon thread for
the same audiences.
"""

from __future__ import annotations

import asyncio
import errno
import socket
import struct
import threading
import time
import warnings
from typing import Callable, List, Optional, Tuple

from repro.cluster import netutil
from repro.cluster.faults import (
    CLOSE,
    DELAY,
    DOWNGRADE,
    DROP,
    NET_TARGET,
    REPLAY,
    TAMPER,
    WIRE_KINDS,
    FaultPlan,
)
from repro.cluster.overload import Deadline, RetryBudget
from repro.cluster.session import ClientHandshake, SecureSession, SessionManager
from repro.errors import (
    ClusterConnectionError,
    ClusterTimeoutError,
    ConfigurationError,
    DeadlineExceededError,
    HandshakeError,
    OverloadedError,
    ProtocolError,
    ReplayError,
    StaleSessionError,
    TamperedFrameError,
)
from repro.server import protocol
from repro.server.protocol import Request, Response
from repro.sgx.meter import CycleMeter

FRAME_HEADER = struct.Struct("<I")

#: Client-side defaults: a hung server must never block a caller forever.
DEFAULT_CLIENT_TIMEOUT = 5.0
DEFAULT_READ_RETRIES = 2
DEFAULT_BACKOFF = 0.05
DEFAULT_BACKOFF_CAP = 1.0
#: Retries may never exceed this fraction of fresh load (anti-retry-storm).
DEFAULT_RETRY_RATIO = 0.1

#: retry_after hint (seconds) on frames the front door sheds itself.
DEFAULT_SHED_RETRY_AFTER = 0.05

SECURITY_POLICIES = ("optional", "required", "plaintext")

#: The classic net fault kinds, consumed after a frame is served.
_CONNECTION_KINDS = frozenset({DELAY, DROP, CLOSE})

_UNSET = object()


def _flip_bit(frame: bytes) -> bytes:
    """The on-path adversary's tamper: one bit of the last byte (the tag)."""
    return frame[:-1] + bytes([frame[-1] ^ 0x01])


class _AdmissionGate:
    """A global in-flight cap with LIFO queueing and deadline shedding.

    A frame holds a slot from admission until its response is written.
    When every slot is busy, new frames wait on a *stack*: service is
    newest-first, because under sustained overload the freshest frame has
    the most deadline budget left and FIFO would drain the queue in
    oldest-first order — serving exactly the work most likely to be dead
    on arrival.  The queue is bounded at ``capacity`` waiters; when it
    fills, the *oldest* waiter is shed (it has waited longest and is the
    least likely to make its deadline).  A waiter whose own deadline
    expires while queued is shed the moment a slot would reach it, or by
    its wait timeout — whichever comes first.

    Single event loop, no locks: slots hand over directly from
    :meth:`release` to the newest live waiter, so ``inflight`` can never
    overshoot ``capacity`` (``max_seen`` records the high-water mark for
    the acceptance test's cap assertion).
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.inflight = 0
        self.max_seen = 0
        self._waiters: List[Tuple[asyncio.Future, Optional[Deadline]]] = []
        self.shed_queue_full = 0
        self.shed_expired = 0

    def _admit(self) -> None:
        self.inflight += 1
        if self.inflight > self.max_seen:
            self.max_seen = self.inflight

    async def acquire(self, deadline: Optional[Deadline]) -> bool:
        """Wait for a slot; False = shed (answer OVERLOADED, don't run)."""
        if self.inflight < self.capacity:
            self._admit()
            return True
        if deadline is not None and deadline.expired():
            self.shed_expired += 1
            return False
        if len(self._waiters) >= self.capacity:
            victim, _ = self._waiters.pop(0)
            if not victim.done():
                victim.set_result(False)
                self.shed_queue_full += 1
        future = asyncio.get_running_loop().create_future()
        self._waiters.append((future, deadline))
        timeout = deadline.remaining() if deadline is not None else None
        try:
            if timeout is None:
                return bool(await future)
            return bool(await asyncio.wait_for(future, timeout))
        except asyncio.TimeoutError:
            self._waiters = [w for w in self._waiters if w[0] is not future]
            if future.done() and not future.cancelled() and future.result():
                return True  # the slot arrived in the same tick: keep it
            self.shed_expired += 1
            return False

    def release(self) -> None:
        """Free a slot — handed to the newest live waiter when one exists."""
        while self._waiters:
            future, deadline = self._waiters.pop()  # LIFO: newest first
            if future.done():
                continue  # already timed out or shed; stale entry
            if deadline is not None and deadline.expired():
                future.set_result(False)
                self.shed_expired += 1
                continue
            future.set_result(True)  # slot transfers; inflight unchanged
            return
        self.inflight -= 1

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "inflight": self.inflight,
            "max_inflight_seen": self.max_seen,
            "shed_queue_full": self.shed_queue_full,
            "shed_expired": self.shed_expired,
        }


class ClusterNetServer:
    """Serves a :class:`~repro.cluster.coordinator.ClusterCoordinator`."""

    def __init__(
        self,
        coordinator,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_requests: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        security: str = "optional",
        sessions: Optional[SessionManager] = None,
        max_inflight: Optional[int] = None,
        max_connections: Optional[int] = None,
        shed_retry_after: float = DEFAULT_SHED_RETRY_AFTER,
    ):
        if security not in SECURITY_POLICIES:
            raise ConfigurationError(
                f"security must be one of {SECURITY_POLICIES}, "
                f"not {security!r}"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, not {max_inflight}")
        if max_connections is not None and max_connections < 1:
            raise ConfigurationError(
                f"max_connections must be >= 1, not {max_connections}")
        if shed_retry_after < 0:
            raise ConfigurationError(
                f"shed_retry_after must be >= 0, not {shed_retry_after}")
        self._coordinator = coordinator
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._writers: set = set()
        #: Stop after this many request frames (None = serve forever).
        #: Handshake frames are not request frames and never count.
        self.max_requests = max_requests
        #: Deterministic fault injection addressed to ``faults.NET_TARGET``,
        #: keyed by the served-frame counter: connection faults (``delay``/
        #: ``drop``/``close``) fire after a frame is served; wire attacks
        #: (``tamper``/``replay``) act on outgoing v2 session frames and
        #: ``downgrade`` on the next handshake attempt.
        self.fault_plan = fault_plan
        self.security = security
        #: The gateway enclave terminating v2 sessions (None on a
        #: plaintext-only front door).
        self.sessions = (
            sessions if sessions is not None
            else (SessionManager() if security != "plaintext" else None)
        )
        self.frames_served = 0
        self.requests_served = 0
        self.frames_dropped = 0
        self.connections_closed_by_fault = 0
        # What the session layer caught (inbound frames that failed).
        self.tamper_alarms = 0
        self.replay_alarms = 0
        self.stale_session_alarms = 0
        self.handshake_failures = 0
        # Policy refusals.
        self.hellos_refused = 0
        self.plaintext_rejections = 0
        # Sealed frames whose tenant envelope named a principal the
        # handshake did not authenticate (confused-deputy attempts).
        self.tenant_rejections = 0
        # What the fault plan staged (outbound attacks actually played).
        self.tamper_injections = 0
        self.replay_injections = 0
        self.downgrade_injections = 0
        # Overload admission: the in-flight gate (None = unlimited), the
        # connection cap, and the front door's own shedding ledger.
        self.max_inflight = max_inflight
        self.max_connections = max_connections
        self.shed_retry_after = shed_retry_after
        self._gate = (_AdmissionGate(max_inflight)
                      if max_inflight is not None else None)
        self.frames_shed = 0
        self.requests_shed = 0
        self.deadline_shed_frames = 0
        self.connections_refused = 0

    @property
    def coordinator(self):
        return self._coordinator

    # -- lifecycle ----------------------------------------------------------------

    #: Bind attempts before giving up on an address already in use.  A
    #: fixed port raced by a just-closed test server lingers in TIME_WAIT
    #: briefly; bounded retry with a short backoff deflakes that without
    #: masking a genuinely occupied port.  Shared with the shard-host
    #: listener (see :mod:`repro.cluster.netutil`).
    BIND_RETRIES = netutil.BIND_RETRIES
    BIND_RETRY_DELAY = netutil.BIND_RETRY_DELAY

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port).

        Retries ``EADDRINUSE`` up to :data:`BIND_RETRIES` times (ephemeral
        port 0 never collides, so in practice this only fires for fixed
        ports); any other bind error surfaces immediately.
        """
        self._stop_event = asyncio.Event()
        for attempt in range(self.BIND_RETRIES):
            try:
                self._server = await asyncio.start_server(
                    self._handle_connection, self._host, self._port
                )
                break
            except OSError as exc:
                if exc.errno != errno.EADDRINUSE \
                        or attempt == self.BIND_RETRIES - 1:
                    raise
                await asyncio.sleep(self.BIND_RETRY_DELAY * (attempt + 1))
        self._host, self._port = self._server.sockets[0].getsockname()[:2]
        return self._host, self._port

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or the ``max_requests`` limit)."""
        if self._server is None:
            await self.start()
        if self._limit_reached():
            await self.stop()
            return
        await self._stop_event.wait()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, close connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Request handling is synchronous within a connection task, so by
        # the time this coroutine runs no frame is mid-execution; closing
        # the transports ends every connection loop cleanly.
        for writer in list(self._writers):
            writer.close()
        for writer in list(self._writers):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        self._writers.clear()
        if self._stop_event is not None:
            self._stop_event.set()

    async def close(self, timeout: float = 5.0) -> None:
        """Full shutdown: drain and stop serving, then release the shards.

        :meth:`stop` already guarantees no frame is mid-execution when it
        returns (request handling is synchronous within a connection
        task), so by the time the coordinator is closed every in-flight
        batch has been answered.  Closing the coordinator joins/terminates
        any process-backed shard workers with ``timeout`` bounding each
        escalation step — after this, the process tree is clean.
        """
        await self.stop()
        close = getattr(self._coordinator, "close", None)
        if close is not None:
            close(timeout)

    def _limit_reached(self) -> bool:
        return (self.max_requests is not None
                and self.frames_served >= self.max_requests)

    def wire_stats(self) -> dict:
        """The front door's security ledger: alarms, refusals, injections."""
        row = {
            "security": self.security,
            "tamper_alarms": self.tamper_alarms,
            "replay_alarms": self.replay_alarms,
            "stale_session_alarms": self.stale_session_alarms,
            "handshake_failures": self.handshake_failures,
            "hellos_refused": self.hellos_refused,
            "plaintext_rejections": self.plaintext_rejections,
            "tamper_injections": self.tamper_injections,
            "replay_injections": self.replay_injections,
            "downgrade_injections": self.downgrade_injections,
        }
        overload = {
            "max_inflight": self.max_inflight,
            "max_connections": self.max_connections,
            "frames_shed": self.frames_shed,
            "requests_shed": self.requests_shed,
            "deadline_shed_frames": self.deadline_shed_frames,
            "connections_refused": self.connections_refused,
            "max_inflight_seen": (self._gate.max_seen
                                  if self._gate is not None else 0),
            "queue_shed": (self._gate.shed_queue_full
                           if self._gate is not None else 0),
            "expired_shed": (self._gate.shed_expired
                             if self._gate is not None else 0),
        }
        row["overload"] = overload
        if self.sessions is not None:
            row["gateway"] = self.sessions.stats()
        tenancy = getattr(self._coordinator, "tenancy", None)
        if tenancy is not None:
            # Armed front doors only: an unarmed server's ledger keeps its
            # pre-tenancy shape.
            row["tenancy"] = dict(tenancy.stats())
            row["tenancy"]["tenant_rejections"] = self.tenant_rejections
        return row

    # -- per-connection loop ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if (self.max_connections is not None
                and len(self._writers) >= self.max_connections):
            # Over the connection cap: refuse without reply.  Any answer
            # (even a rejection frame) would let a connection flood buy
            # server work; a silent close costs one accept.
            self.connections_refused += 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            return
        self._writers.add(writer)
        session: Optional[SecureSession] = None
        last_reply: Optional[bytes] = None  # REPLAY's recorded frame
        try:
            while not self._stop_event.is_set():
                try:
                    header = await reader.readexactly(FRAME_HEADER.size)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                (frame_len,) = FRAME_HEADER.unpack(header)
                if frame_len == 0 or frame_len > protocol.MAX_FRAME_BYTES:
                    # The length itself is hostile: reject without reading
                    # (or allocating) the claimed payload, then hang up —
                    # the stream cannot be resynchronized.
                    await self._send(writer, protocol.encode_batch_rejection())
                    break
                try:
                    payload = await reader.readexactly(frame_len)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    fheader, _ = protocol.decode_frame(payload)
                except ProtocolError:
                    # Carries the v2 magic but is not a well-formed v2
                    # frame: hostile framing, hang up.
                    await self._send(writer, protocol.encode_batch_rejection())
                    break
                if (fheader.version == protocol.WIRE_V2
                        and fheader.flags & protocol.FLAG_HANDSHAKE):
                    session, keep = await self._serve_handshake(
                        writer, payload, session
                    )
                    if not keep:
                        break
                    continue
                if fheader.version == protocol.WIRE_V2:
                    plain = await self._open_session_frame(
                        writer, payload, session
                    )
                    if plain is None:
                        break  # alarm raised; the stream is under attack
                else:
                    # v1 plaintext payload.
                    if session is not None or self.security == "required":
                        # Plaintext mid-session is a downgrade attempt;
                        # plaintext on a v2-only front door is policy.
                        self.plaintext_rejections += 1
                        await self._send(
                            writer, protocol.encode_batch_rejection()
                        )
                        break
                    plain = payload
                try:
                    claimed, plain = protocol.split_tenant(plain)
                    budget_ms, plain = protocol.split_deadline(plain)
                    requests = protocol.decode_batch(plain)
                except ProtocolError:
                    await self._send_in_session(
                        writer, protocol.encode_batch_rejection(), session
                    )
                    continue
                if (session is not None and claimed is not None
                        and claimed != session.tenant):
                    # A sealed frame may only claim the principal its
                    # handshake authenticated; anything else (including a
                    # claim on a tenant-less session) is a confused-deputy
                    # attempt and is refused per-frame.
                    self.tenant_rejections += 1
                    await self._send_in_session(
                        writer, protocol.encode_batch_rejection(), session
                    )
                    continue
                # v2: the handshake-authenticated identity is authoritative.
                # v1 plaintext: the claim rides unauthenticated, like
                # everything else on the priced baseline.
                tenant = session.tenant if session is not None else claimed
                deadline = (Deadline.from_budget_ms(budget_ms)
                            if budget_ms is not None else None)
                responses = await self._admit_and_execute(
                    requests, deadline, tenant
                )
                self.frames_served += 1
                self.requests_served += len(requests)
                action = await self._apply_net_faults()
                if action == CLOSE:
                    self.connections_closed_by_fault += 1
                    break  # hang up without answering
                if action == DROP:
                    self.frames_dropped += 1
                    continue  # swallow the response; the client times out
                reply = protocol.encode_batch_responses(responses)
                if session is not None:
                    reply = session.seal(reply)
                    last_reply = await self._play_wire_attacks(
                        writer, reply, last_reply
                    )
                else:
                    await self._send(writer, reply)
                if self._limit_reached():
                    asyncio.get_running_loop().create_task(self.stop())
                    break
        except ConnectionError:  # pragma: no cover - peer vanished mid-write
            pass
        finally:
            if session is not None and self.sessions is not None:
                self.sessions.retire(session)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _admit_and_execute(
        self,
        requests: List[Request],
        deadline: Optional[Deadline],
        tenant: Optional[str] = None,
    ) -> List[Response]:
        """Run one frame through admission control, then the coordinator.

        Three shed points, all answered with ``STATUS_OVERLOADED`` +
        ``retry_after`` instead of silence (a shed client must learn to
        back off, not time out): the frame arrived with its budget already
        spent; the admission gate refused it (queue full, or its deadline
        ran out while queued); or — past admission — the coordinator's own
        overload layer sheds individual requests.  With a ``tenant``, the
        coordinator additionally runs per-principal admission (tenancy
        token buckets) and key prefixing, so a shed there is charged to —
        and its ``retry_after`` reflects — the offending principal's own
        bucket, not the global gate.
        """
        if deadline is not None and deadline.expired():
            self.deadline_shed_frames += 1
            return self._shed(len(requests), b"deadline expired on arrival")
        if self._gate is not None:
            if not await self._gate.acquire(deadline):
                return self._shed(len(requests), b"admission queue full")
        try:
            kwargs = {}
            if deadline is not None:
                kwargs["deadline"] = deadline
            if tenant is not None:
                kwargs["tenant"] = tenant
            return self._coordinator.execute(requests, **kwargs)
        finally:
            if self._gate is not None:
                self._gate.release()

    def _shed(self, n: int, reason: bytes) -> List[Response]:
        self.frames_shed += 1
        self.requests_shed += n
        shed = protocol.overloaded(self.shed_retry_after, reason)
        return [shed] * n

    async def _serve_handshake(
        self,
        writer: asyncio.StreamWriter,
        payload: bytes,
        session: Optional[SecureSession],
    ) -> Tuple[Optional[SecureSession], bool]:
        """Answer a v2 client hello; returns (session, keep-connection).

        A policy refusal (plaintext-only front door) and an injected
        downgrade both answer in plaintext — exactly what an on-path
        attacker stripping the handshake looks like — and a client that
        wants encryption must treat that reply as fatal.
        """
        downgraded = self.sessions is not None and self._pop_downgrade()
        if self.sessions is None or downgraded:
            if downgraded:
                self.downgrade_injections += 1
            self.hellos_refused += 1
            await self._send(writer, protocol.encode_batch_rejection())
            return session, True
        if session is not None:
            # Rekey: a repeated hello on one connection replaces (and
            # retires) the previous session.
            self.sessions.retire(session)
        try:
            reply, session = self.sessions.accept(payload)
        except HandshakeError:
            self.handshake_failures += 1
            await self._send(writer, protocol.encode_batch_rejection())
            return None, False  # hostile hello: hang up
        await self._send(writer, reply)
        return session, True

    async def _open_session_frame(
        self,
        writer: asyncio.StreamWriter,
        payload: bytes,
        session: Optional[SecureSession],
    ) -> Optional[bytes]:
        """Authenticate + decrypt an inbound v2 data frame.

        Returns the plaintext, or None after raising the matching alarm —
        in which case the connection is torn down: a stream that carried a
        forged, replayed, or stale frame is not resynchronizable.
        """
        if session is None:
            # A data frame with no handshake on this connection: a frame
            # recorded from an earlier (now rekeyed) session being played
            # into a fresh connection.
            self.stale_session_alarms += 1
            await self._send(writer, protocol.encode_batch_rejection())
            return None
        try:
            return session.open(payload)
        except TamperedFrameError:
            self.tamper_alarms += 1
        except StaleSessionError:
            self.stale_session_alarms += 1
        except ReplayError:
            self.replay_alarms += 1
        except ProtocolError:  # pragma: no cover - headers checked above
            pass
        await self._send(writer, protocol.encode_batch_rejection())
        return None

    async def _play_wire_attacks(
        self,
        writer: asyncio.StreamWriter,
        reply: bytes,
        last_reply: Optional[bytes],
    ) -> bytes:
        """Send a sealed reply, staging any due tamper/replay attack.

        A replay re-sends the *recorded previous* frame ahead of the real
        reply (the client sees a frame whose sequence number went
        backwards); a tamper flips one bit of the outgoing frame's tag.
        Returns the clean frame to record for the next replay.
        """
        tamper = replay = False
        if self.fault_plan is not None:
            for event in self.fault_plan.pop_due(
                NET_TARGET, self.frames_served, kinds=WIRE_KINDS
            ):
                if event.kind == TAMPER:
                    tamper = True
                elif event.kind == REPLAY:
                    replay = True
        if replay and last_reply is not None:
            self.replay_injections += 1
            await self._send(writer, last_reply)
        if tamper:
            self.tamper_injections += 1
            await self._send(writer, _flip_bit(reply))
        else:
            await self._send(writer, reply)
        if replay and last_reply is None:
            # Nothing recorded yet: duplicate the frame just sent — the
            # duplicate is the replay the client must catch next read.
            self.replay_injections += 1
            await self._send(writer, reply)
        return reply

    def _pop_downgrade(self) -> bool:
        if self.fault_plan is None:
            return False
        return bool(self.fault_plan.pop_due(
            NET_TARGET, self.frames_served, kinds=(DOWNGRADE,)
        ))

    async def _apply_net_faults(self) -> Optional[str]:
        """Fire due connection faults; returns CLOSE/DROP to suppress the
        response, None to serve normally (delays just stall in place)."""
        if self.fault_plan is None:
            return None
        action: Optional[str] = None
        for event in self.fault_plan.pop_due(
            NET_TARGET, self.frames_served, kinds=_CONNECTION_KINDS
        ):
            if event.kind == DELAY:
                await asyncio.sleep(event.seconds)
            elif event.kind == DROP:
                action = action or DROP
            elif event.kind == CLOSE:
                action = CLOSE
        return action

    async def _send_in_session(
        self,
        writer: asyncio.StreamWriter,
        payload: bytes,
        session: Optional[SecureSession],
    ) -> None:
        if session is not None:
            payload = session.seal(payload)
        await self._send(writer, payload)

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: bytes) -> None:
        writer.write(FRAME_HEADER.pack(len(payload)) + payload)
        await writer.drain()


class ClusterClient:
    """Synchronous wire client: encrypted sessions, typed errors, retries.

    By default (``secure=True``) the client opens every connection with the
    attested v2 handshake (:mod:`repro.cluster.session`): it verifies the
    gateway's quote — pinning ``expected_measurement`` when given — and
    seals/opens every frame thereafter.  A server or on-path attacker that
    answers the hello in plaintext raises
    :class:`~repro.errors.HandshakeError`; a secure client **never** falls
    back to plaintext.  ``secure=False`` speaks the v1 plaintext protocol
    (the priced baseline; the CLI exposes it as ``--insecure``).

    Every socket operation carries ``timeout`` (connect *and* read), so a
    hung or fault-injected server surfaces as
    :class:`~repro.errors.ClusterTimeoutError` instead of blocking the
    caller forever.  A timeout desynchronizes the stream (the response may
    still be in flight), so recovery always reconnects — and, when secure,
    re-handshakes under a fresh session — before retrying.

    Retries are **reads only**: :meth:`get` (and :meth:`health`) re-issue
    up to ``retries`` times with exponential backoff (``backoff * 2**n``,
    capped at ``backoff_cap``) on timeout, connection loss, or a wire
    attack caught by the session layer (tampered/replayed response) —
    idempotent, so at-least-once delivery is safe.  :meth:`put`/
    :meth:`delete` and :meth:`request_batch` never auto-retry: a write
    whose ack was lost (or forged) may still have executed, and only the
    caller knows whether replaying it is acceptable.

    Two overload-era bounds sit on top:

    * **Deadlines** — ``deadline`` (a default budget in seconds, or a
      per-call override on every request method) rides each frame as the
      wire envelope, caps the socket wait, and caps retry *backoff*: a
      sleep that would overrun the remaining budget raises
      :class:`~repro.errors.DeadlineExceededError` instead of sleeping
      through it, so total attempt wall-time never exceeds the caller's
      deadline by more than one in-flight RPC.
    * **Retry budget** — every retry spends a token from a
      :class:`~repro.cluster.overload.RetryBudget` (``retry_ratio``
      tokens deposited per fresh request), so a failing cluster can never
      be amplified by more than that fraction of fresh load.  A read shed
      by the server (``STATUS_OVERLOADED``) is retried after its
      ``retry_after`` hint while retries and budget last, then surfaces
      as :class:`~repro.errors.OverloadedError`; a shed *write* comes
      back as the raw OVERLOADED :class:`Response` — never auto-retried.

    Construct via :meth:`connect`; passing socket/retry tuning directly to
    the constructor is deprecated.  Every error this client raises is part
    of the :mod:`repro.errors` tree.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        secure: bool = True,
        expected_measurement: Optional[bytes] = None,
        crypto: str = "fast",
        tenant: Optional[str] = None,
        credential: Optional[bytes] = None,
        timeout: float = _UNSET,
        retries: int = _UNSET,
        backoff: float = _UNSET,
        backoff_cap: float = _UNSET,
        sleep: Callable[[float], None] = _UNSET,
        deadline: Optional[float] = _UNSET,
        retry_ratio: float = _UNSET,
    ):
        tuning = {
            name: value
            for name, value in (
                ("timeout", timeout), ("retries", retries),
                ("backoff", backoff), ("backoff_cap", backoff_cap),
                ("sleep", sleep), ("deadline", deadline),
                ("retry_ratio", retry_ratio),
            )
            if value is not _UNSET
        }
        if tuning:
            warnings.warn(
                "passing socket/retry tuning "
                f"({', '.join(sorted(tuning))}) to ClusterClient() is "
                "deprecated; use the ClusterClient.connect() factory",
                DeprecationWarning,
                stacklevel=2,
            )
        timeout = tuning.get("timeout", DEFAULT_CLIENT_TIMEOUT)
        retries = tuning.get("retries", DEFAULT_READ_RETRIES)
        deadline = tuning.get("deadline", None)
        if timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if deadline is not None and deadline <= 0:
            raise ConfigurationError("deadline must be positive")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = retries
        self._backoff = tuning.get("backoff", DEFAULT_BACKOFF)
        self._backoff_cap = tuning.get("backoff_cap", DEFAULT_BACKOFF_CAP)
        self._sleep = tuning.get("sleep", time.sleep)
        #: Default per-call deadline budget (seconds); None = no envelope.
        self._deadline = deadline
        #: Shared across this client's reads: bounds retry amplification.
        self.retry_budget = RetryBudget(
            ratio=tuning.get("retry_ratio", DEFAULT_RETRY_RATIO))
        if credential is not None and tenant is None:
            raise ConfigurationError(
                "credential requires a tenant id")
        self._secure = secure
        self._expected_measurement = expected_measurement
        self._crypto = crypto
        #: The principal this client acts as.  Secure connections bind it
        #: (with the credential) into the attested handshake; insecure v1
        #: connections claim it per-frame via the tenant envelope,
        #: unauthenticated like the rest of the plaintext baseline.
        self._tenant = tenant
        self._credential = credential
        self._session: Optional[SecureSession] = None
        #: Accumulates this client's share of wire crypto (handshakes plus
        #: per-frame AEAD) across the connection's whole life.
        self.wire_meter = CycleMeter()
        self.handshakes = 0
        self._last_handshake_cycles = 0.0
        self.reconnects = 0
        self.retried_reads = 0
        self.overload_retries = 0
        self._sock = self._connect()

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        *,
        secure: bool = True,
        expected_measurement: Optional[bytes] = None,
        crypto: str = "fast",
        tenant: Optional[str] = None,
        credential: Optional[bytes] = None,
        timeout: float = DEFAULT_CLIENT_TIMEOUT,
        retries: int = DEFAULT_READ_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        sleep: Callable[[float], None] = time.sleep,
        deadline: Optional[float] = None,
        retry_ratio: float = DEFAULT_RETRY_RATIO,
    ) -> "ClusterClient":
        """The factory: connect (and, unless ``secure=False``, handshake).

        This is the supported home for socket/retry tuning; the
        constructor accepts the same keywords only for backward
        compatibility, with a :class:`DeprecationWarning`.
        ``deadline`` is a default budget (seconds) attached to every
        frame; ``retry_ratio`` bounds retries as a fraction of fresh
        requests (see :class:`~repro.cluster.overload.RetryBudget`).
        ``tenant``/``credential`` make the connection act as that
        principal: a secure client authenticates it inside the attested
        handshake (``credential`` is the tenant secret; it defaults to the
        derivable demo secret when omitted), an insecure client merely
        claims it per frame.
        """
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return cls(
                host, port,
                secure=secure,
                expected_measurement=expected_measurement,
                crypto=crypto,
                tenant=tenant,
                credential=credential,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                backoff_cap=backoff_cap,
                sleep=sleep,
                deadline=deadline,
                retry_ratio=retry_ratio,
            )

    # -- connection + handshake ---------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection((self._host, self._port),
                                            timeout=self._timeout)
        except socket.timeout as exc:
            raise ClusterTimeoutError(
                f"connect to {self._host}:{self._port} timed out after "
                f"{self._timeout}s") from exc
        except OSError as exc:
            raise ClusterConnectionError(
                f"connect to {self._host}:{self._port} failed: {exc}"
            ) from exc
        sock.settimeout(self._timeout)
        if self._secure:
            try:
                self._session = self._handshake(sock)
            except BaseException:
                sock.close()
                raise
        return sock

    def _handshake(self, sock: socket.socket) -> SecureSession:
        before = self.wire_meter.cycles
        handshake = ClientHandshake(
            expected_measurement=self._expected_measurement,
            crypto=self._crypto,
            meter=self.wire_meter,
            tenant=self._tenant,
            credential=self._credential,
        )
        self._send_raw(sock, handshake.hello())
        session = handshake.finish(self._recv_raw(sock))
        self.handshakes += 1
        self._last_handshake_cycles = self.wire_meter.cycles - before
        return session

    def _reconnect(self) -> None:
        self.close()
        self._session = None
        self._sock = self._connect()
        self.reconnects += 1

    def session_info(self) -> dict:
        """What this connection negotiated, and what it cost.

        ``handshake_cycles`` is the simulated client-side price of the most
        recent handshake (key exchange + quote verification);
        ``wire_cycles`` accumulates all wire crypto this client has ever
        performed, handshakes and per-frame AEAD alike.
        """
        info = {
            "secure": self._session is not None,
            "version": (protocol.WIRE_V2 if self._session is not None
                        else protocol.WIRE_V1),
            "cipher": (self._session.cipher if self._session is not None
                       else None),
            "session_id": (self._session.session_id
                           if self._session is not None else None),
            # The authenticated principal on a secure connection; the
            # (unauthenticated) claimed one on a v1 connection.
            "tenant": (self._session.tenant
                       if self._session is not None else self._tenant),
            "handshakes": self.handshakes,
            "handshake_cycles": self._last_handshake_cycles,
            "wire_cycles": self.wire_meter.cycles,
        }
        if self._session is not None:
            info["frames_sealed"] = self._session.frames_sealed
            info["frames_opened"] = self._session.frames_opened
        return info

    # -- framing ------------------------------------------------------------------

    def send_frame(self, payload: bytes,
                   deadline: Optional[Deadline] = None) -> None:
        """Send one protocol payload, sealed when a session is live.

        With a ``deadline``, the *remaining* budget is prefixed as the
        deadline envelope before sealing, so it rides inside the AEAD
        frame (MAC-protected) on an encrypted connection.
        """
        if deadline is not None:
            payload = protocol.wrap_deadline(payload, deadline.budget_ms())
        if self._tenant is not None:
            # Outermost envelope, so the server peels tenant, then
            # deadline.  On a secure connection this is belt-and-braces
            # (the session already carries the authenticated tenant and
            # the server enforces the match); on v1 it is the claim.
            payload = protocol.wrap_tenant(payload, self._tenant)
        if self._session is not None:
            payload = self._session.seal(payload)
        self._send_raw(self._sock, payload)

    def recv_frame(self) -> bytes:
        """Receive one protocol payload, opened when a session is live.

        On an encrypted connection the only plaintext the client accepts
        is the canonical batch rejection — the server (or an on-path
        attacker) refusing service, which carries denial but no data.
        Any other plaintext is treated as a forgery.
        """
        data = self._recv_raw(self._sock)
        if self._session is None:
            return data
        if data.startswith(protocol.V2_MAGIC):
            return self._session.open(data)
        if data == protocol.encode_batch_rejection():
            return data
        raise TamperedFrameError(
            "plaintext data frame on an encrypted session"
        )

    def _send_raw(self, sock: socket.socket, payload: bytes) -> None:
        try:
            sock.sendall(FRAME_HEADER.pack(len(payload)) + payload)
        except socket.timeout as exc:
            raise ClusterTimeoutError(
                f"send timed out after {self._timeout}s") from exc
        except OSError as exc:
            raise ClusterConnectionError(
                f"send failed: connection lost ({exc})") from exc

    def _recv_raw(self, sock: socket.socket) -> bytes:
        header = self._recv_exactly(sock, FRAME_HEADER.size)
        (frame_len,) = FRAME_HEADER.unpack(header)
        if frame_len > protocol.MAX_FRAME_BYTES:
            raise ProtocolError(f"server frame exceeds "
                                f"{protocol.MAX_FRAME_BYTES} bytes")
        return self._recv_exactly(sock, frame_len)

    def _recv_exactly(self, sock: socket.socket, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            try:
                chunk = sock.recv(remaining)
            except socket.timeout as exc:
                raise ClusterTimeoutError(
                    f"no response within {self._timeout}s") from exc
            except OSError as exc:
                raise ClusterConnectionError(
                    f"receive failed: connection lost ({exc})") from exc
            if not chunk:
                raise ClusterConnectionError("server closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # -- request API --------------------------------------------------------------

    def request_batch(self, requests: List[Request],
                      deadline: Optional[float] = None) -> List[Response]:
        """One frame out, one frame back; positional responses.

        Raises :class:`~repro.errors.BatchRejectedError` if the server
        rejected the delivery as a unit,
        :class:`~repro.errors.ClusterTimeoutError` if it never answered,
        and :class:`~repro.errors.TamperedFrameError` /
        :class:`~repro.errors.ReplayError` if the response frame failed
        the session's authentication.  Never retried here — batches may
        contain writes, and a shed write comes back as its raw
        ``STATUS_OVERLOADED`` response for the caller to judge.
        """
        self.retry_budget.on_fresh()
        return self._attempt(requests, self._deadline_for(deadline))

    def _deadline_for(self, deadline: Optional[float]) -> Optional[Deadline]:
        """Start the local countdown: per-call budget, else the default."""
        budget = self._deadline if deadline is None else deadline
        if budget is None:
            return None
        if isinstance(budget, Deadline):
            return budget  # caller-managed: one budget across retries
        return Deadline(budget)

    def _attempt(self, requests: List[Request],
                 deadline: Optional[Deadline]) -> List[Response]:
        """One wire round-trip, with the socket wait capped by ``deadline``.

        The deadline cap means a hung server surfaces as
        :class:`~repro.errors.ClusterTimeoutError` no later than the
        budget's expiry — the caller's wall-time never exceeds the
        deadline by more than the one RPC already in flight.
        """
        if deadline is None:
            self.send_frame(protocol.encode_batch(requests))
            return protocol.decode_batch_responses(self.recv_frame(),
                                                   expected=len(requests))
        deadline.check()
        self._sock.settimeout(
            min(self._timeout, max(deadline.remaining(), 1e-3)))
        try:
            self.send_frame(protocol.encode_batch(requests),
                            deadline=deadline)
            return protocol.decode_batch_responses(self.recv_frame(),
                                                   expected=len(requests))
        finally:
            self._sock.settimeout(self._timeout)

    def _retrying_single(self, request: Request,
                         deadline: Optional[float] = None) -> Response:
        """At-least-once delivery for an idempotent single request.

        Wire-attack errors (tampered or replayed response) are retryable
        here for the same reason timeouts are: the request is idempotent
        and the reconnect re-handshakes under a fresh session.  Every
        retry spends a :class:`~repro.cluster.overload.RetryBudget`
        token; an exhausted budget fails fast with the original error.
        An ``OVERLOADED`` reply is retried after the server's
        ``retry_after`` hint, surfacing as
        :class:`~repro.errors.OverloadedError` once retries run out.
        """
        deadline = self._deadline_for(deadline)
        self.retry_budget.on_fresh()
        attempt = 0
        while True:
            try:
                [response] = self._attempt([request], deadline)
            except (ClusterTimeoutError, ConnectionError, OSError,
                    TamperedFrameError, ReplayError):
                if attempt >= self._retries \
                        or not self.retry_budget.try_retry():
                    raise
                self._pause(attempt, deadline, 0.0)
                self._reconnect()
                self.retried_reads += 1
                attempt += 1
                continue
            if response.status != protocol.Status.OVERLOADED:
                return response
            hint = protocol.retry_after_hint(response)
            if attempt >= self._retries \
                    or not self.retry_budget.try_retry():
                reason = protocol.overload_reason(response)
                raise OverloadedError(
                    "read shed by server"
                    + (f" ({reason.decode('utf-8', 'replace')})"
                       if reason else ""),
                    retry_after=hint)
            self._pause(attempt, deadline, hint)
            self.overload_retries += 1
            attempt += 1

    def _pause(self, attempt: int, deadline: Optional[Deadline],
               hint: float) -> None:
        """Back off before a retry — never past the caller's deadline.

        Jitter desynchronizes clients retrying after the same server
        hiccup, so the reconnect stampede spreads out; a server-supplied
        ``retry_after`` hint is honored as the floor.  A sleep that would
        overrun the remaining budget raises
        :class:`~repro.errors.DeadlineExceededError` instead: the retry
        could not finish in time, so sleeping through the deadline only
        delays the inevitable (this is what caps total attempt wall-time
        at the deadline).
        """
        delay = max(
            netutil.jittered(
                min(self._backoff * (2 ** attempt), self._backoff_cap)),
            hint,
        )
        if deadline is not None and delay >= deadline.remaining():
            raise DeadlineExceededError(
                f"retry backoff {delay * 1000.0:.0f} ms would overrun the "
                f"deadline ({deadline.remaining() * 1000.0:.0f} ms left)")
        self._sleep(delay)

    def get(self, key: bytes,
            deadline: Optional[float] = None) -> Response:
        return self._retrying_single(protocol.get(key), deadline)

    def health(self, deadline: Optional[float] = None) -> Response:
        """Probe the cluster (OP_HEALTH); retried like any read."""
        return self._retrying_single(protocol.health(), deadline)

    def put(self, key: bytes, value: bytes,
            deadline: Optional[float] = None) -> Response:
        self.retry_budget.on_fresh()
        [response] = self._attempt([protocol.put(key, value)],
                                   self._deadline_for(deadline))
        return response

    def delete(self, key: bytes,
               deadline: Optional[float] = None) -> Response:
        self.retry_budget.on_fresh()
        [response] = self._attempt([protocol.delete(key)],
                                   self._deadline_for(deadline))
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class BackgroundServer:
    """Run a :class:`ClusterNetServer` on a daemon thread.

    For synchronous callers (tests, examples, demos): ``start()`` blocks
    until the socket is bound and returns the address; ``stop()`` performs
    the graceful shutdown on the server's own loop and joins the thread.
    """

    def __init__(self, coordinator, *, host: str = "127.0.0.1",
                 port: int = 0, max_requests: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 security: str = "optional",
                 sessions: Optional[SessionManager] = None,
                 max_inflight: Optional[int] = None,
                 max_connections: Optional[int] = None):
        self.server = ClusterNetServer(coordinator, host=host, port=port,
                                       max_requests=max_requests,
                                       fault_plan=fault_plan,
                                       security=security,
                                       sessions=sessions,
                                       max_inflight=max_inflight,
                                       max_connections=max_connections)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="aria-cluster-server")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("cluster server failed to start")
        if self._error is not None:
            raise RuntimeError("cluster server crashed on startup") \
                from self._error
        return self.server.address

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await self.server.start()
            except BaseException as exc:
                self._error = exc
                raise
            finally:
                self._ready.set()
            await self.server.serve_forever()

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - surfaced by start()
            if self._error is None:
                self._error = exc
            self._ready.set()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout)
        self._thread.join(timeout)

    def close(self, timeout: float = 10.0) -> None:
        """Stop serving *and* release the coordinator's shard backends.

        :meth:`stop` leaves the coordinator usable (the caller may still
        want to read stats or keep serving it elsewhere); ``close`` is
        the end of the road — it also joins/terminates any process-backed
        shard workers so nothing outlives the test or script.
        """
        self.stop(timeout)
        close = getattr(self.server.coordinator, "close", None)
        if close is not None:
            close(min(timeout, 5.0))

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
