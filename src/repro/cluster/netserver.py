"""Asyncio TCP front door for the sharded cluster.

Speaks the existing ``repro.server.protocol`` batch frames over a stream
with a 4-byte little-endian length prefix::

    wire frame := frame_len (u32 LE) | payload
    payload    := batch frame   (requests client->server,
                                 responses server->client)

* **Pipelining** — a client may write any number of request frames without
  waiting; responses come back in frame order (and positionally within a
  frame, per the protocol contract).
* **Bounded allocation** — ``frame_len`` is attacker-supplied, so it is
  checked against ``protocol.MAX_FRAME_BYTES`` *before* the payload is
  read; an oversized or zero length gets the canonical batch rejection and
  the connection is closed (there is no way to resynchronize a stream
  whose framing is untrusted).
* **Graceful shutdown** — :meth:`ClusterNetServer.stop` stops accepting,
  lets in-flight frames finish, closes every connection, and wakes
  :meth:`serve_forever`.

:class:`ClusterClient` is the matching synchronous client (plain stdlib
sockets — examples, tests, and CLI tooling shouldn't need an event loop),
and :class:`BackgroundServer` runs the whole server on a daemon thread for
the same audiences.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
import time
from typing import Callable, List, Optional, Tuple

from repro.cluster.faults import CLOSE, DELAY, DROP, NET_TARGET, FaultPlan
from repro.errors import ClusterTimeoutError
from repro.server import protocol
from repro.server.protocol import ProtocolError, Request, Response

FRAME_HEADER = struct.Struct("<I")

#: Client-side defaults: a hung server must never block a caller forever.
DEFAULT_CLIENT_TIMEOUT = 5.0
DEFAULT_READ_RETRIES = 2
DEFAULT_BACKOFF = 0.05
DEFAULT_BACKOFF_CAP = 1.0


class ClusterNetServer:
    """Serves a :class:`~repro.cluster.coordinator.ClusterCoordinator`."""

    def __init__(
        self,
        coordinator,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_requests: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self._coordinator = coordinator
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._writers: set = set()
        #: Stop after this many request frames (None = serve forever).
        self.max_requests = max_requests
        #: Deterministic connection-level fault injection: ``delay``/
        #: ``drop``/``close`` events addressed to ``faults.NET_TARGET``,
        #: keyed by the served-frame counter.
        self.fault_plan = fault_plan
        self.frames_served = 0
        self.requests_served = 0
        self.frames_dropped = 0
        self.connections_closed_by_fault = 0

    @property
    def coordinator(self):
        return self._coordinator

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._host, self._port = self._server.sockets[0].getsockname()[:2]
        return self._host, self._port

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or the ``max_requests`` limit)."""
        if self._server is None:
            await self.start()
        if self._limit_reached():
            await self.stop()
            return
        await self._stop_event.wait()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, close connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Request handling is synchronous within a connection task, so by
        # the time this coroutine runs no frame is mid-execution; closing
        # the transports ends every connection loop cleanly.
        for writer in list(self._writers):
            writer.close()
        for writer in list(self._writers):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        self._writers.clear()
        if self._stop_event is not None:
            self._stop_event.set()

    async def close(self, timeout: float = 5.0) -> None:
        """Full shutdown: drain and stop serving, then release the shards.

        :meth:`stop` already guarantees no frame is mid-execution when it
        returns (request handling is synchronous within a connection
        task), so by the time the coordinator is closed every in-flight
        batch has been answered.  Closing the coordinator joins/terminates
        any process-backed shard workers with ``timeout`` bounding each
        escalation step — after this, the process tree is clean.
        """
        await self.stop()
        close = getattr(self._coordinator, "close", None)
        if close is not None:
            close(timeout)

    def _limit_reached(self) -> bool:
        return (self.max_requests is not None
                and self.frames_served >= self.max_requests)

    # -- per-connection loop ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while not self._stop_event.is_set():
                try:
                    header = await reader.readexactly(FRAME_HEADER.size)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                (frame_len,) = FRAME_HEADER.unpack(header)
                if frame_len == 0 or frame_len > protocol.MAX_FRAME_BYTES:
                    # The length itself is hostile: reject without reading
                    # (or allocating) the claimed payload, then hang up —
                    # the stream cannot be resynchronized.
                    await self._send(writer, protocol.encode_batch_rejection())
                    break
                try:
                    payload = await reader.readexactly(frame_len)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    requests = protocol.decode_batch(payload)
                except ProtocolError:
                    await self._send(writer, protocol.encode_batch_rejection())
                    continue
                responses = self._coordinator.execute(requests)
                self.frames_served += 1
                self.requests_served += len(requests)
                action = await self._apply_net_faults()
                if action == CLOSE:
                    self.connections_closed_by_fault += 1
                    break  # hang up without answering
                if action == DROP:
                    self.frames_dropped += 1
                    continue  # swallow the response; the client times out
                await self._send(
                    writer, protocol.encode_batch_responses(responses)
                )
                if self._limit_reached():
                    asyncio.get_running_loop().create_task(self.stop())
                    break
        except ConnectionError:  # pragma: no cover - peer vanished mid-write
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _apply_net_faults(self) -> Optional[str]:
        """Fire due connection faults; returns CLOSE/DROP to suppress the
        response, None to serve normally (delays just stall in place)."""
        if self.fault_plan is None:
            return None
        action: Optional[str] = None
        for event in self.fault_plan.pop_due(NET_TARGET, self.frames_served):
            if event.kind == DELAY:
                await asyncio.sleep(event.seconds)
            elif event.kind == DROP:
                action = action or DROP
            elif event.kind == CLOSE:
                action = CLOSE
        return action

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: bytes) -> None:
        writer.write(FRAME_HEADER.pack(len(payload)) + payload)
        await writer.drain()


class ClusterClient:
    """Synchronous wire client: timeouts, typed errors, bounded retries.

    Every socket operation carries ``timeout`` (connect *and* read), so a
    hung or fault-injected server surfaces as
    :class:`~repro.errors.ClusterTimeoutError` instead of blocking the
    caller forever.  A timeout desynchronizes the stream (the response may
    still be in flight), so recovery always reconnects before retrying.

    Retries are **reads only**: :meth:`get` (and :meth:`health`) re-issue
    up to ``retries`` times with exponential backoff (``backoff * 2**n``,
    capped at ``backoff_cap``) on timeout or connection loss — idempotent,
    so at-least-once delivery is safe.  :meth:`put`/:meth:`delete` and
    :meth:`request_batch` never auto-retry: a write whose ack was lost may
    still have executed, and only the caller knows whether replaying it is
    acceptable.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = DEFAULT_CLIENT_TIMEOUT,
        retries: int = DEFAULT_READ_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = retries
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._sleep = sleep
        self.reconnects = 0
        self.retried_reads = 0
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection((self._host, self._port),
                                            timeout=self._timeout)
        except socket.timeout as exc:
            raise ClusterTimeoutError(
                f"connect to {self._host}:{self._port} timed out after "
                f"{self._timeout}s") from exc
        sock.settimeout(self._timeout)
        return sock

    def _reconnect(self) -> None:
        self.close()
        self._sock = self._connect()
        self.reconnects += 1

    # -- framing ------------------------------------------------------------------

    def send_frame(self, payload: bytes) -> None:
        try:
            self._sock.sendall(FRAME_HEADER.pack(len(payload)) + payload)
        except socket.timeout as exc:
            raise ClusterTimeoutError(
                f"send timed out after {self._timeout}s") from exc

    def recv_frame(self) -> bytes:
        header = self._recv_exactly(FRAME_HEADER.size)
        (frame_len,) = FRAME_HEADER.unpack(header)
        if frame_len > protocol.MAX_FRAME_BYTES:
            raise ProtocolError(f"server frame exceeds "
                                f"{protocol.MAX_FRAME_BYTES} bytes")
        return self._recv_exactly(frame_len)

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout as exc:
                raise ClusterTimeoutError(
                    f"no response within {self._timeout}s") from exc
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # -- request API --------------------------------------------------------------

    def request_batch(self, requests: List[Request]) -> List[Response]:
        """One frame out, one frame back; positional responses.

        Raises :class:`~repro.server.protocol.BatchRejectedError` if the
        server rejected the delivery as a unit, and
        :class:`~repro.errors.ClusterTimeoutError` if it never answered.
        Never retried here — batches may contain writes.
        """
        self.send_frame(protocol.encode_batch(requests))
        return protocol.decode_batch_responses(self.recv_frame(),
                                               expected=len(requests))

    def _retrying_single(self, request: Request) -> Response:
        """At-least-once delivery for an idempotent single request."""
        attempt = 0
        while True:
            try:
                [response] = self.request_batch([request])
                return response
            except (ClusterTimeoutError, ConnectionError, OSError):
                if attempt >= self._retries:
                    raise
                self._sleep(min(self._backoff * (2 ** attempt),
                                self._backoff_cap))
                self._reconnect()
                self.retried_reads += 1
                attempt += 1

    def get(self, key: bytes) -> Response:
        return self._retrying_single(protocol.get(key))

    def health(self) -> Response:
        """Probe the cluster (OP_HEALTH); retried like any read."""
        return self._retrying_single(protocol.health())

    def put(self, key: bytes, value: bytes) -> Response:
        [response] = self.request_batch([protocol.put(key, value)])
        return response

    def delete(self, key: bytes) -> Response:
        [response] = self.request_batch([protocol.delete(key)])
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class BackgroundServer:
    """Run a :class:`ClusterNetServer` on a daemon thread.

    For synchronous callers (tests, examples, demos): ``start()`` blocks
    until the socket is bound and returns the address; ``stop()`` performs
    the graceful shutdown on the server's own loop and joins the thread.
    """

    def __init__(self, coordinator, *, host: str = "127.0.0.1",
                 port: int = 0, max_requests: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None):
        self.server = ClusterNetServer(coordinator, host=host, port=port,
                                       max_requests=max_requests,
                                       fault_plan=fault_plan)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="aria-cluster-server")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("cluster server failed to start")
        if self._error is not None:
            raise RuntimeError("cluster server crashed on startup") \
                from self._error
        return self.server.address

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await self.server.start()
            except BaseException as exc:
                self._error = exc
                raise
            finally:
                self._ready.set()
            await self.server.serve_forever()

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - surfaced by start()
            if self._error is None:
                self._error = exc
            self._ready.set()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout)
        self._thread.join(timeout)

    def close(self, timeout: float = 10.0) -> None:
        """Stop serving *and* release the coordinator's shard backends.

        :meth:`stop` leaves the coordinator usable (the caller may still
        want to read stats or keep serving it elsewhere); ``close`` is
        the end of the road — it also joins/terminates any process-backed
        shard workers so nothing outlives the test or script.
        """
        self.stop(timeout)
        close = getattr(self.server.coordinator, "close", None)
        if close is not None:
            close(min(timeout, 5.0))

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
