"""Small shared network plumbing for every TCP endpoint in the cluster.

Two things live here so the front door (:mod:`repro.cluster.netserver`)
and the shard hosts (:mod:`repro.cluster.sockbackend`) behave the same
way under test churn:

* **Bind retry** — a fixed port raced by a just-closed test server
  lingers in ``TIME_WAIT`` briefly; bounded retry with a short linear
  backoff deflakes that without masking a genuinely occupied port.
  :func:`bind_with_retry` is the synchronous form (the async front door
  shares the constants and mirrors the loop).
* **Retry jitter** — a fleet of clients retrying a flaky server with the
  same deterministic backoff all wake at the same instant and stampede
  it again.  :func:`jittered` spreads a base delay by a small random
  factor; callers that need reproducible schedules pass their own
  ``rng``.
"""

from __future__ import annotations

import errno
import random
import time
from typing import Callable, TypeVar

#: Bind attempts before giving up on an address already in use.
BIND_RETRIES = 5
#: Base delay between bind attempts; attempt ``i`` waits ``(i+1) *`` this.
BIND_RETRY_DELAY = 0.2

#: Fraction of a retry delay added as random jitter (uniform in
#: ``[0, delay * RETRY_JITTER]``) so concurrent clients desynchronize.
RETRY_JITTER = 0.25

T = TypeVar("T")


def bind_with_retry(
    bind: Callable[[], T],
    *,
    retries: int = BIND_RETRIES,
    delay: float = BIND_RETRY_DELAY,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``bind()`` until it sticks, retrying only ``EADDRINUSE``.

    Ephemeral port 0 never collides, so in practice this only fires for
    fixed ports; any other bind error surfaces immediately, as does an
    ``EADDRINUSE`` that outlives the retry budget.
    """
    for attempt in range(retries):
        try:
            return bind()
        except OSError as exc:
            if exc.errno != errno.EADDRINUSE or attempt == retries - 1:
                raise
            sleep(delay * (attempt + 1))
    raise AssertionError("unreachable")  # pragma: no cover


def jittered(delay: float, *, fraction: float = RETRY_JITTER,
             rng: random.Random | None = None) -> float:
    """``delay`` plus a uniform random slice of it, for retry backoff."""
    draw = rng.random() if rng is not None else random.random()
    return delay + delay * fraction * draw
