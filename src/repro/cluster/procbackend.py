"""Process-backed shards: every enclave in its own OS process.

The :class:`ProcessBackend` implementation of the
:class:`~repro.cluster.backend.ShardBackend` seam.  Each shard (or
replica) enclave is built *inside* a ``multiprocessing`` worker; the
parent holds a :class:`ProcessShard` handle that satisfies the same
duck-typed contract as an inline :class:`~repro.cluster.shard.Shard`, so
the coordinator, replica groups, fault injector, balancer, health
monitor and stats aggregation all work unchanged.

What crosses the pipe (one duplex ``Pipe`` per worker, pickled tuples)
is the shared remote-shard RPC vocabulary of
:mod:`repro.cluster.remote`:

* batch requests / responses — ``flush_batch`` ships the whole batch and
  gets the response list back; the coordinator additionally uses the
  split ``flush_submit``/``flush_collect`` pair so independent shards'
  batches execute concurrently (the pipe is FIFO, preserving the per-key
  ordering contract within a shard);
* trusted-path traffic — the balancer's key migrations and the health
  monitor's re-syncs run ``get``/``put``/``delete`` through the store
  proxy, so moving a record between enclaves still means a verified read
  on the source and a re-sealed put on the destination, each charged to
  the enclave that did the work;
* metering — every reply piggybacks a full
  :meth:`~repro.sgx.meter.CycleMeter.snapshot` (as plain builtins via
  ``to_dict``), which the parent folds into a local mirror.  Reading
  ``meter`` issues a sync round-trip while the worker lives and serves
  the last-merged mirror once it is dead — a killed enclave's accounting
  stays readable, exactly like an inline crashed shard's meter.

What stays in the parent: routing (the ring), batching, replica
orchestration and failover policy, fault schedules, balancer policy,
``ops_routed`` / load-mark bookkeeping.

Crash semantics: :meth:`ProcessShard.kill` is a real ``SIGKILL`` — the
enclave, its key material and its EPC contents genuinely vanish with the
process.  Any later RPC (or a broken/EOF pipe at any time) surfaces as
:class:`~repro.errors.ShardCrashedError`, which is exactly what the
replication layer's failover already expects.  A restart builds a fresh
worker via the backend factory (new process, new keys, empty store) and
the health monitor re-syncs it through the trusted path before it
serves.

Workers are daemonic and additionally shut down by :meth:`ProcessShard
.close` (graceful ``shutdown`` RPC, then ``join`` → ``terminate`` →
``kill`` with a bounded timeout), so test runs never leak children; a
module-level registry lets the test suite's leak-check fixture reap
anything a test forgot (:func:`reap_leaked_workers`).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import weakref
from typing import List, Optional

from repro.cluster.backend import ShardBackend
from repro.cluster.remote import (
    DEFAULT_CLOSE_TIMEOUT,
    DEFAULT_RPC_TIMEOUT,
    RemoteEnclave,
    RemoteMeter,
    RemoteServer,
    RemoteShardHandle,
    RemoteStore,
    dispatch_shard_rpc,
)
from repro.errors import AriaError, ShardCrashedError

#: Environment override for the multiprocessing start method.  ``fork``
#: (where available) keeps worker startup cheap; ``spawn`` re-imports the
#: world per worker but works everywhere.
START_METHOD_ENV_VAR = "ARIA_MP_START"

# Backward-compatible aliases: these classes moved to repro.cluster.remote
# when the socket backend arrived (same proxies, second transport).
_RemoteServer = RemoteServer
_RemoteStore = RemoteStore
_RemoteEnclave = RemoteEnclave
_RemoteMeter = RemoteMeter
_dispatch = dispatch_shard_rpc

#: Every live ProcessShard, whatever backend instance built it — the leak
#: check fixture's view of the world.
_LIVE_HANDLES: "weakref.WeakSet[ProcessShard]" = weakref.WeakSet()


def default_start_method() -> str:
    chosen = os.environ.get(START_METHOD_ENV_VAR)
    if chosen:
        return chosen
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


def reap_leaked_workers(timeout: float = DEFAULT_CLOSE_TIMEOUT) -> List[str]:
    """Close every live handle; returns the shard ids that still had a
    *running* worker (i.e. genuine leaks — crashed workers were already
    dead and only need their process entry joined)."""
    leaked = []
    for handle in list(_LIVE_HANDLES):
        if handle.worker_alive():
            leaked.append(handle.shard_id)
        handle.close(timeout)
    return sorted(leaked)


# ---------------------------------------------------------------------------
# The worker side
# ---------------------------------------------------------------------------


def _worker_main(conn, spec: dict) -> None:
    """Build the real Shard and serve RPCs until shutdown (or SIGKILL)."""
    import signal

    from repro.cluster.shard import Shard

    # A foreground Ctrl-C delivers SIGINT to the whole process group.
    # Shutdown is the *parent's* call (graceful ``shutdown`` RPC, then
    # escalation in ``ProcessShard.close``): if workers died on the
    # signal, the parent's final stats collection would race their
    # exit and the serve CLI's shutdown report would read dead pipes.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        shard = Shard(
            spec["shard_id"],
            epc_bytes=spec["epc_bytes"],
            capacity_keys=spec["capacity_keys"],
            index=spec["index"],
            seed=spec["seed"],
            value_hint=spec["value_hint"],
            workers=spec.get("workers", 1),
            **spec["config_overrides"],
        )
    except BaseException as exc:  # surface build failures to the parent
        _send(conn, "err", exc, None)
        conn.close()
        return
    enclave = shard.store.enclave
    info = {
        "shard_id": shard.shard_id,
        "epc_bytes": shard.epc_bytes,
        "pid": os.getpid(),
        "cpu_hz": enclave.platform.cpu_hz,
        "encryption_key": enclave.keys.encryption_key,
        "mac_key": enclave.keys.mac_key,
        "config": shard.store.config,
    }
    _send(conn, "ready", info, shard.meter.snapshot().to_dict())
    recv = _make_receiver(conn, spec.get("workers", 1))
    while True:
        item = recv()
        if item is None:
            break  # parent vanished; daemon exit
        cmd, args = item
        if cmd == "shutdown":
            _send(conn, "ok", None, shard.meter.snapshot().to_dict())
            break
        try:
            payload = dispatch_shard_rpc(shard, cmd, args)
        except BaseException as exc:
            _send(conn, "err", exc, shard.meter.snapshot().to_dict())
        else:
            _send(conn, "ok", payload, shard.meter.snapshot().to_dict())
    conn.close()


def _make_receiver(conn, workers: int):
    """The worker's RPC intake; a real prefetch thread when ``workers > 1``.

    With one worker the intake is a plain blocking ``recv``.  With N > 1
    the untrusted side gets a genuine OS thread that pulls the next RPCs
    off the pipe (the blocking read releases the GIL) while the main
    thread is still executing the current batch inside the simulated
    enclave — the HotCalls shape: boundary traffic overlaps execution.
    The queue is bounded so a slow enclave backpressures the pipe instead
    of buffering unbounded pickles.  Returns a callable yielding the next
    ``(cmd, args)`` tuple or ``None`` once the parent is gone.
    """
    if workers <= 1:
        def recv_inline():
            try:
                return conn.recv()
            except (EOFError, OSError):
                return None

        return recv_inline
    inbox: "queue.Queue" = queue.Queue(maxsize=max(2, workers))

    def pump():
        while True:
            try:
                item = conn.recv()
            except (EOFError, OSError):
                inbox.put(None)
                return
            inbox.put(item)

    thread = threading.Thread(target=pump, daemon=True,
                              name="aria-rpc-prefetch")
    thread.start()
    return inbox.get


def _send(conn, tag: str, payload, meter_dict) -> None:
    try:
        conn.send((tag, payload, meter_dict))
    except (BrokenPipeError, OSError):
        pass  # parent is gone; nothing left to tell it
    except Exception:
        # Unpicklable payload (an exotic exception, typically): degrade to
        # a typed, picklable error rather than wedging the pipe.
        fallback = AriaError(f"unpicklable {tag} payload: {payload!r}")
        conn.send(("err", fallback, meter_dict))


# ---------------------------------------------------------------------------
# The parent-side handle
# ---------------------------------------------------------------------------


class ProcessShard(RemoteShardHandle):
    """Shard-duck-typed handle for an enclave living in a worker process."""

    def __init__(self, spec: dict, ctx):
        super().__init__(spec["shard_id"])
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self._proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, spec),
            daemon=True,
            name=f"aria-shard-{self.shard_id}",
        )
        self._proc.start()
        child_conn.close()
        self._attach(self._recv())  # the "ready" message (or a build error)
        _LIVE_HANDLES.add(self)

    # -- RPC plumbing -------------------------------------------------------------

    def _send(self, cmd: str, args: tuple = ()) -> None:
        if self.crashed or self.closed:
            raise ShardCrashedError(
                f"shard {self.shard_id} is down (worker process dead)"
            )
        try:
            self._conn.send((cmd, args))
        except (BrokenPipeError, OSError, ValueError):
            self._mark_crashed()
            raise ShardCrashedError(
                f"shard {self.shard_id} is down (pipe broken)"
            )

    def _recv(self, timeout: float = DEFAULT_RPC_TIMEOUT):
        try:
            if not self._conn.poll(timeout):
                self._mark_crashed()
                raise ShardCrashedError(
                    f"shard {self.shard_id} worker unresponsive "
                    f"after {timeout}s"
                )
            tag, payload, meter_dict = self._conn.recv()
        except (EOFError, OSError):
            self._mark_crashed()
            raise ShardCrashedError(
                f"shard {self.shard_id} is down (worker process died)"
            )
        self._absorb_meter(meter_dict)
        if tag == "err":
            if isinstance(payload, BaseException):
                raise payload
            raise AriaError(str(payload))  # pragma: no cover - degraded path
        return payload

    def _mark_crashed(self) -> None:
        self.crashed = True
        self._pending = 0
        if self._proc.is_alive():  # a hung worker counts as dead
            self._proc.kill()
        self._proc.join(DEFAULT_CLOSE_TIMEOUT)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass

    # -- lifecycle ----------------------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid

    def worker_alive(self) -> bool:
        return self._proc.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker: the enclave and its EPC contents are gone."""
        self.crashed = True
        self._pending = 0
        if self._proc.is_alive():
            self._proc.kill()
        self._proc.join(DEFAULT_CLOSE_TIMEOUT)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass

    def close(self, timeout: float = DEFAULT_CLOSE_TIMEOUT) -> None:
        """Graceful shutdown with a bounded timeout; always reaps the worker.

        Drains any pipelined flushes first (the pipe is FIFO, so their
        replies precede the shutdown ack), then escalates join →
        terminate → kill if the worker overstays ``timeout``.
        """
        if self.closed:
            return
        self.closed = True
        if not self.crashed and self._proc.is_alive():
            try:
                self._conn.send(("shutdown", ()))
                for _ in range(self._pending + 1):
                    if not self._conn.poll(timeout):
                        break
                    _, _, meter_dict = self._conn.recv()
                    self._absorb_meter(meter_dict)
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._pending = 0
        self._proc.join(timeout)
        if self._proc.is_alive():  # pragma: no cover - stuck worker
            self._proc.terminate()
            self._proc.join(timeout)
        if self._proc.is_alive():  # pragma: no cover - unkillable worker
            self._proc.kill()
            self._proc.join(timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        _LIVE_HANDLES.discard(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "down" if self.crashed else ("closed" if self.closed else "up")
        return f"ProcessShard({self.shard_id!r}, pid={self.pid}, {state})"


# ---------------------------------------------------------------------------
# The backend factory
# ---------------------------------------------------------------------------


class ProcessBackend(ShardBackend):
    """One worker process per shard/replica enclave."""

    name = "process"

    def __init__(self, *, start_method: Optional[str] = None):
        self._ctx = multiprocessing.get_context(start_method
                                                or default_start_method())
        self._handles: "weakref.WeakSet[ProcessShard]" = weakref.WeakSet()

    def create(
        self,
        shard_id: str,
        *,
        epc_bytes: int,
        capacity_keys: int,
        index: str = "hash",
        seed: int = 0,
        value_hint: int = 16,
        workers: int = 1,
        **config_overrides,
    ) -> ProcessShard:
        spec = {
            "shard_id": shard_id,
            "epc_bytes": epc_bytes,
            "capacity_keys": capacity_keys,
            "index": index,
            "seed": seed,
            "value_hint": value_hint,
            "workers": workers,
            "config_overrides": config_overrides,
        }
        handle = ProcessShard(spec, self._ctx)
        self._handles.add(handle)
        return handle

    def close(self, timeout: float = DEFAULT_CLOSE_TIMEOUT) -> None:
        for handle in list(self._handles):
            handle.close(timeout)
