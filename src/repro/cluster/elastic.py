"""Elastic scale-out: live shard add/remove with a model-checked planner.

Closes the ROADMAP's top open item.  The cluster's shard count used to be
fixed at build time — chasing a hot set meant shuffling vnodes among the
shards you already had.  This module makes topology a *live, validated,
fault-tolerant* operation (ARCHITECTURE §17):

* :class:`ReconfigPlanner` — the model-checked half.  Following the
  model-based self-integration idea (validate a proposed configuration
  change against cross-layer constraint models *before* applying it), a
  proposed :class:`TopologyDelta` is checked against five models — the
  per-shard EPC/cache budget, the replication floor, durability-epoch
  continuity, tenant quota feasibility, and projected migration cycle
  cost vs. straggler savings — and either refused with a typed
  :class:`~repro.errors.PlanRejectedError` naming the violated model, or
  staged into a :class:`ReconfigPlan`.

* :class:`ElasticCluster` — the live migration engine.  An approved plan
  executes *under traffic*: the target ring is computed as a clone
  (:meth:`~repro.cluster.ring.HashRing.copy`), keys in the moving arcs
  are copied through the trusted path (verified read on the source
  enclave, re-sealed put on the destination — enclaves share no key
  material, so bytes can never move between them directly) in bounded
  batches interleaved with serving; writes to in-flight ranges are
  **dual-applied** to the destination after the authoritative side acks;
  reads are always served from the authoritative (pre-cutover) side.  A
  new shard's replicas and durability sidecar (sealed snapshot + WAL
  epoch) are established in PREPARE, *before* it can take a single read.
  Only when the copy is complete does the ring swap (CUTOVER) — the
  commit point — after which RETIRE cleans up the source side.  If the
  destination dies mid-migration the plan **aborts**: the prior ring was
  never replaced, every acked write still lives on the authoritative
  side, and the partial copy is discarded — zero acked-write loss by
  construction.

Migration state machine::

    IDLE -> PREPARE -> SYNC -> CUTOVER -> RETIRE -> IDLE
                \\        \\
                 \\        +--> ABORT (destination lost) -> IDLE
                  +--> ABORT (cannot establish replicas/durability) -> IDLE

Fault injections (KILL / PARTITION / SLOW on shards, torn writes on the
durability sidecar) are addressable at every stage transition through the
spec's :class:`~repro.cluster.faults.FaultPlan` using
:func:`elastic_target` targets, and the chaos gauntlet in
``tests/test_cluster_elastic.py`` drives them on all three backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.cluster.backend import resolve_backend
from repro.cluster.faults import FaultPlan
from repro.cluster.replication import build_replica_group
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.errors import (
    AriaError,
    DurabilityError,
    KeyNotFoundError,
    PlanRejectedError,
    ReplicaUnavailableError,
    ShardCrashedError,
)
from repro.server.protocol import OpCode, Request, Response, Status

# -- stages -----------------------------------------------------------------------

#: Stage names, in execution order.  PREPARE builds the destination
#: (replicas + durability) outside the ring; SYNC copies the moving arcs
#: in bounded batches while serving continues on the old ring; CUTOVER
#: atomically swaps the ring (the commit point); RETIRE deletes the moved
#: keys from the source side (add) or closes the leaving shard (remove).
STAGE_PREPARE = "prepare"
STAGE_SYNC = "sync"
STAGE_CUTOVER = "cutover"
STAGE_RETIRE = "retire"
MIGRATION_STAGES = (STAGE_PREPARE, STAGE_SYNC, STAGE_CUTOVER, STAGE_RETIRE)

#: FaultPlan ordinals for stage-addressed injection: an event scheduled
#: ``at`` one of these fires when the migration *enters* that stage.
STAGE_ORDINALS = {name: i + 1 for i, name in enumerate(MIGRATION_STAGES)}

#: The five constraint models (plus "topology" for structurally invalid
#: deltas), in checking order.
CONSTRAINT_MODELS = (
    "epc_budget",
    "replication_floor",
    "durability_continuity",
    "tenant_quota",
    "migration_cost",
)


def elastic_target(shard_id: str) -> str:
    """The FaultPlan target for stage-addressed migration faults.

    Events scheduled against this target (with ``at`` set to a
    :data:`STAGE_ORDINALS` value) are applied to the migration's subject
    shard — the new shard for an add, the leaving shard for a remove —
    when the migration enters that stage.
    """
    return f"{shard_id}/elastic"


# -- the proposed change ----------------------------------------------------------


@dataclass(frozen=True)
class TopologyDelta:
    """One proposed topology change, before any validation.

    Exactly what an operator (or the balancer) asks for: shards to add,
    shards to remove, vnode reassignments, and/or a new replication
    factor.  The planner validates any combination; the migration engine
    executes one add *or* one remove per plan (vnode moves execute
    synchronously through the balancer's migration path).
    """

    add_shards: Tuple[str, ...] = ()
    remove_shards: Tuple[str, ...] = ()
    #: (src_shard_id, dst_shard_id, vnode_count) reassignments.
    vnode_moves: Tuple[Tuple[str, str, int], ...] = ()
    #: Proposed replication factor; None keeps the current one.
    replication: Optional[int] = None

    def is_noop(self) -> bool:
        return (not self.add_shards and not self.remove_shards
                and not self.vnode_moves and self.replication is None)


@dataclass(frozen=True)
class ReconfigPlan:
    """An approved, staged topology change (the planner's output)."""

    delta: TopologyDelta
    stages: Tuple[str, ...]
    n_shards_before: int
    n_shards_after: int
    #: Keys the migration is projected to move.
    projected_keys: int
    #: Projected migration cost in simulated cycles (keys x per-key model).
    projected_cost: float
    #: What each constraint model computed while approving the plan —
    #: operator-facing evidence, printed by ``python -m repro reconfig``.
    constraints: Mapping[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [
            f"plan: {self.n_shards_before} -> {self.n_shards_after} shards",
            f"  add: {list(self.delta.add_shards) or '-'}"
            f"  remove: {list(self.delta.remove_shards) or '-'}"
            f"  vnode_moves: {list(self.delta.vnode_moves) or '-'}",
            f"  stages: {' -> '.join(self.stages)}",
            f"  projected: {self.projected_keys} keys, "
            f"{self.projected_cost:.0f} cycles",
        ]
        for model, verdict in self.constraints.items():
            lines.append(f"  [{model}] {verdict}")
        return "\n".join(lines)


# -- the construction recipe ------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """How to provision a shard this cluster would add.

    The engine needs the original build recipe — a new shard must be an
    enclave of the same shape as its peers (EPC carve, capacity, index,
    workers, cache quotas), and the planner needs the envelope it must
    fit into.  :meth:`ClusterConfig.elastic_spec
    <repro.cluster.config.ClusterConfig.elastic_spec>` derives one from
    the typed construction surface.
    """

    #: Per-enclave EPC carve for a new shard (same as existing shards).
    epc_bytes: int
    #: Cluster-wide keyspace every shard is provisioned for.
    capacity_keys: int
    #: The cluster's total EPC envelope: the budget all enclaves (shards x
    #: replicas) must fit inside.  The ``epc_budget`` model rejects any
    #: delta whose enclave count would overflow it.
    cluster_epc_bytes: int
    index: str = "hash"
    seed: int = 0
    value_hint: int = 16
    workers: int = 1
    replication: int = 1
    #: Extra AriaConfig overrides for new shards (``tenant_quotas`` is
    #: refreshed from the live tenancy roster at build time).
    shard_overrides: Mapping[str, object] = field(default_factory=dict)
    #: Chaos addressability: new shards' replicas are wrapped with this
    #: plan, and stage-transition events fire against ``elastic_target``.
    fault_plan: Optional[FaultPlan] = None
    #: Mints a durability sidecar for a freshly built group
    #: (``factory(group) -> PartitionDurability``); required by the
    #: ``durability_continuity`` model when the cluster is durable.
    durability_factory: Optional[Callable] = None
    #: The cost model's per-key price of a trusted-path move (verified
    #: read + re-sealed put + source delete), in simulated cycles.
    migrate_cost_cycles: float = 3500.0
    #: Projected Secure-Cache entry count per shard, for the
    #: ``tenant_quota`` feasibility model; None estimates from the EPC
    #: carve (half the EPC at ~96 bytes/entry, the cache's "as large as
    #: possible" rule coarsened into a planning model).
    cache_entries: Optional[int] = None

    def projected_cache_entries(self) -> int:
        if self.cache_entries is not None:
            return self.cache_entries
        return max(1, (self.epc_bytes // 2) // 96)


# -- the planner ------------------------------------------------------------------


class ReconfigPlanner:
    """Checks a :class:`TopologyDelta` against cross-layer constraint models.

    Every model inspects a different layer — EPC accounting, replication
    policy, the durability sidecars, tenant cache quotas, the migration
    cost model — and any one of them can refuse the whole change with a
    typed :class:`~repro.errors.PlanRejectedError` *before* a single key
    moves.  A delta that survives all five comes back as a staged
    :class:`ReconfigPlan`.
    """

    def __init__(
        self,
        coordinator,
        spec: ShardSpec,
        *,
        min_replication: Optional[int] = None,
        max_migration_cost: Optional[float] = None,
        cost_benefit_ratio: float = 1.0,
    ):
        self._coordinator = coordinator
        self.spec = spec
        #: The configured replication floor R: no plan may drop below it.
        self.min_replication = (min_replication if min_replication is not None
                                else spec.replication)
        #: Optional hard budget (simulated cycles) on one migration.
        self.max_migration_cost = max_migration_cost
        #: A balance plan must project savings >= cost / ratio.
        self.cost_benefit_ratio = cost_benefit_ratio
        self.plans_approved = 0
        self.plans_rejected = 0
        #: Rejections per constraint model (operator visibility).
        self.rejections: Dict[str, int] = {}

    # -- the check --------------------------------------------------------------

    def plan(self, delta: TopologyDelta, *,
             projected_savings: Optional[float] = None) -> ReconfigPlan:
        """Validate ``delta``; returns a staged plan or raises.

        ``projected_savings`` is the proposer's estimate of the straggler
        cycles the change would save per balancing window (the balancer
        computes it from its load deltas); when given, the cost model
        refuses changes whose projected migration cost exceeds
        ``cost_benefit_ratio`` times the savings.
        """
        try:
            return self._plan(delta, projected_savings)
        except PlanRejectedError as exc:
            self.plans_rejected += 1
            self.rejections[exc.constraint] = \
                self.rejections.get(exc.constraint, 0) + 1
            raise

    def _plan(self, delta: TopologyDelta,
              projected_savings: Optional[float]) -> ReconfigPlan:
        coordinator = self._coordinator
        spec = self.spec
        shard_ids = set(coordinator.shards)
        constraints: Dict[str, str] = {}

        # -- structural sanity (not one of the five models) ---------------
        if delta.is_noop():
            raise PlanRejectedError("empty delta: nothing to change",
                                    constraint="topology")
        for sid in delta.add_shards:
            if sid in shard_ids:
                raise PlanRejectedError(
                    f"shard {sid!r} already in the cluster",
                    constraint="topology")
        if len(set(delta.add_shards)) != len(delta.add_shards):
            raise PlanRejectedError("duplicate shard ids in add set",
                                    constraint="topology")
        for sid in delta.remove_shards:
            if sid not in shard_ids:
                raise PlanRejectedError(
                    f"shard {sid!r} not in the cluster", constraint="topology")
        for src, dst, count in delta.vnode_moves:
            if src not in shard_ids or dst not in shard_ids:
                raise PlanRejectedError(
                    f"vnode move {src!r}->{dst!r} names an unknown shard",
                    constraint="topology")
            if count < 1:
                raise PlanRejectedError(
                    "vnode move count must be >= 1", constraint="topology")
        n_before = len(shard_ids)
        n_after = n_before + len(delta.add_shards) - len(delta.remove_shards)
        if n_after < 1:
            raise PlanRejectedError(
                "the delta would remove every shard", constraint="topology")

        replication_after = (delta.replication if delta.replication is not None
                             else spec.replication)

        # -- model 1: per-shard EPC/cache budget --------------------------
        enclaves_after = n_after * replication_after
        epc_after = enclaves_after * spec.epc_bytes
        if epc_after > spec.cluster_epc_bytes:
            raise PlanRejectedError(
                f"{enclaves_after} enclaves x {spec.epc_bytes} B = "
                f"{epc_after} B exceeds the {spec.cluster_epc_bytes} B EPC "
                "envelope",
                constraint="epc_budget")
        constraints["epc_budget"] = (
            f"{enclaves_after} enclaves x {spec.epc_bytes} B = {epc_after} B "
            f"<= {spec.cluster_epc_bytes} B envelope")

        # -- model 2: replication factor >= configured R ------------------
        if replication_after < 1 or replication_after < self.min_replication:
            raise PlanRejectedError(
                f"replication {replication_after} below the configured "
                f"floor R={self.min_replication}",
                constraint="replication_floor")
        constraints["replication_floor"] = (
            f"R={replication_after} >= floor {self.min_replication}")

        # -- model 3: durability-epoch continuity -------------------------
        durable = any(getattr(s, "durability", None) is not None
                      for s in coordinator.shards.values())
        if durable and delta.add_shards and spec.durability_factory is None:
            raise PlanRejectedError(
                "cluster is durable but the spec cannot mint a sealed "
                "snapshot + WAL epoch for a new shard (no "
                "durability_factory): the shard would take reads without "
                "durable custody",
                constraint="durability_continuity")
        constraints["durability_continuity"] = (
            "sidecar factory available" if durable else
            "cluster not durable: nothing to carry over")

        # -- model 4: tenant quota feasibility ----------------------------
        tenancy = getattr(coordinator, "tenancy", None)
        if tenancy is not None and (delta.add_shards or delta.remove_shards):
            quotas = tenancy.config.cache_quota_map()
            entries = spec.projected_cache_entries()
            floors = sum(max(1, int(entries * q)) for q in quotas.values())
            if quotas and floors > entries:
                raise PlanRejectedError(
                    f"{len(quotas)} tenant quota floors need {floors} "
                    f"protected cache entries but a {spec.epc_bytes} B shard "
                    f"projects only {entries}: the new roster cannot honor "
                    "its quota floors",
                    constraint="tenant_quota")
            constraints["tenant_quota"] = (
                f"{floors} floor entries across {len(quotas)} tenants "
                f"<= {entries} projected entries")
        else:
            constraints["tenant_quota"] = "tenancy not armed or roster-only"

        # -- model 5: migration cost vs. straggler savings ----------------
        projected_keys = self._projected_keys(delta, n_before)
        projected_cost = projected_keys * spec.migrate_cost_cycles
        if self.max_migration_cost is not None \
                and projected_cost > self.max_migration_cost:
            raise PlanRejectedError(
                f"projected migration cost {projected_cost:.0f} cycles "
                f"({projected_keys} keys) exceeds the "
                f"{self.max_migration_cost:.0f}-cycle budget",
                constraint="migration_cost")
        if projected_savings is not None \
                and projected_cost > self.cost_benefit_ratio \
                * projected_savings:
            raise PlanRejectedError(
                f"projected migration cost {projected_cost:.0f} cycles "
                f"exceeds {self.cost_benefit_ratio:g}x the projected "
                f"straggler savings ({projected_savings:.0f} cycles): the "
                "move would not pay for itself",
                constraint="migration_cost")
        constraints["migration_cost"] = (
            f"{projected_keys} keys x {spec.migrate_cost_cycles:.0f} "
            f"cycles/key = {projected_cost:.0f} cycles"
            + (f" vs savings {projected_savings:.0f}"
               if projected_savings is not None else ""))

        self.plans_approved += 1
        return ReconfigPlan(
            delta=delta,
            stages=MIGRATION_STAGES,
            n_shards_before=n_before,
            n_shards_after=n_after,
            projected_keys=projected_keys,
            projected_cost=projected_cost,
            constraints=constraints,
        )

    # -- cost-model inputs ------------------------------------------------------

    def _projected_keys(self, delta: TopologyDelta, n_before: int) -> int:
        coordinator = self._coordinator
        total = self._total_keys()
        moved = 0.0
        n_add = len(delta.add_shards)
        if n_add:
            # Minimal-remap: each new shard claims ~1/(N+adds) of the keys.
            moved += total * n_add / max(1, n_before + n_add)
        for sid in delta.remove_shards:
            try:
                moved += len(coordinator.shards[sid].store)
            except AriaError:
                moved += total / max(1, n_before)
        counts = coordinator.ring.vnode_counts()
        for src, _dst, count in delta.vnode_moves:
            src_vnodes = counts.get(src, DEFAULT_VNODES)
            try:
                src_keys = len(coordinator.shards[src].store)
            except AriaError:
                src_keys = total / max(1, n_before)
            moved += src_keys * min(1.0, count / max(1, src_vnodes))
        return int(moved)

    def _total_keys(self) -> int:
        total = 0
        for shard in self._coordinator.shards.values():
            try:
                total += len(shard.store)
            except AriaError:
                continue  # crashed shard: its keys don't move anyway
        return total


# -- the live migration engine ----------------------------------------------------


class _Migration:
    """One in-flight topology change (internal engine state)."""

    __slots__ = ("plan", "kind", "subject_id", "target_ring", "new_shard",
                 "pending", "cursor", "copied", "retire_cursor", "stage",
                 "faults_applied")

    def __init__(self, plan: ReconfigPlan, kind: str, subject_id: str,
                 target_ring: HashRing, new_shard=None):
        self.plan = plan
        self.kind = kind                  # "add" | "remove"
        self.subject_id = subject_id      # the joining / leaving shard
        self.target_ring = target_ring
        self.new_shard = new_shard        # the built-but-unringed group
        #: (src_shard_id, key) pairs still to copy.
        self.pending: List[Tuple[str, bytes]] = []
        self.cursor = 0
        #: (src_shard_id, key) pairs copied (the RETIRE delete queue).
        self.copied: List[Tuple[str, bytes]] = []
        self.retire_cursor = 0
        self.stage = STAGE_PREPARE
        self.faults_applied = 0


class ElasticCluster:
    """Live shard add/remove under traffic, bounded-batch interleaved.

    Attach one to a coordinator (``coordinator.attach_elastic``, done by
    ``ClusterConfig.build``) and drive changes with :meth:`add_shard` /
    :meth:`remove_shard`; the engine advances one bounded key batch per
    executed request batch, so migration work is interleaved with serving
    rather than stopping the world.  Or call :meth:`run_to_completion`
    from an operations script to drain a migration without traffic.
    """

    def __init__(
        self,
        coordinator,
        spec: ShardSpec,
        *,
        planner: Optional[ReconfigPlanner] = None,
        batch_keys: int = 64,
        vnodes: int = DEFAULT_VNODES,
    ):
        if batch_keys < 1:
            raise ValueError("batch_keys must be >= 1")
        self._coordinator = coordinator
        self.spec = spec
        self.planner = planner or ReconfigPlanner(coordinator, spec)
        self.batch_keys = batch_keys
        self.vnodes = vnodes
        self._migration: Optional[_Migration] = None
        #: Distinct seeds for every shard ever added (a rejoining id must
        #: still get fresh key material).
        self._builds = 0
        # -- progress/abort counters (ClusterStats / OP_HEALTH) ----------
        self.migrations_started = 0
        self.migrations_completed = 0
        self.migrations_aborted = 0
        self.keys_migrated = 0
        self.keys_retired = 0
        self.dual_applied = 0
        self.last_abort_reason = ""

    # -- public driving ---------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._migration is not None

    @property
    def stage(self) -> Optional[str]:
        return self._migration.stage if self._migration else None

    def propose(self, delta: TopologyDelta, **plan_kwargs) -> ReconfigPlan:
        """Run ``delta`` through the planner (no execution)."""
        return self.planner.plan(delta, **plan_kwargs)

    def add_shard(self, shard_id: Optional[str] = None) -> ReconfigPlan:
        """Plan and begin a live shard add; raises PlanRejectedError."""
        if shard_id is None:
            shard_id = f"shard-{len(self._coordinator.shards)}"
            while shard_id in self._coordinator.shards:
                shard_id += "+"
        plan = self.propose(TopologyDelta(add_shards=(shard_id,)))
        self.begin(plan)
        return plan

    def remove_shard(self, shard_id: str) -> ReconfigPlan:
        """Plan and begin a live shard remove; raises PlanRejectedError."""
        plan = self.propose(TopologyDelta(remove_shards=(shard_id,)))
        self.begin(plan)
        return plan

    def begin(self, plan: ReconfigPlan) -> None:
        """Start executing an approved plan (stage PREPARE, then SYNC).

        One migration at a time; the engine executes single-shard add or
        remove plans (the balancer applies vnode-move plans through its
        own migration path after planner approval).
        """
        if self._migration is not None:
            raise AriaError(
                "a migration is already in flight "
                f"(stage {self._migration.stage})")
        delta = plan.delta
        if delta.replication is not None \
                and delta.replication != self.spec.replication:
            raise AriaError(
                "replication-factor changes are planner-validated but not "
                "yet executable live; rebuild with the new ClusterConfig")
        if len(delta.add_shards) + len(delta.remove_shards) != 1 \
                or delta.vnode_moves:
            raise AriaError(
                "the engine executes one shard add or remove per plan")
        self.migrations_started += 1
        if delta.add_shards:
            self._begin_add(plan, delta.add_shards[0])
        else:
            self._begin_remove(plan, delta.remove_shards[0])

    def run_to_completion(self, *, max_steps: int = 1_000_000) -> None:
        """Drain the in-flight migration without traffic (ops scripts)."""
        steps = 0
        while self._migration is not None:
            self.step()
            steps += 1
            if steps > max_steps:  # pragma: no cover - defensive
                raise AriaError("migration did not converge")

    # -- the serving-loop hook ---------------------------------------------------

    def after_execute(self, requests: List[Request],
                      responses: List[Response]) -> None:
        """Coordinator hook: dual-apply acked writes, then advance a batch.

        Runs after every executed request batch, *after* responses are
        settled: an acked write whose key's target-ring owner differs from
        its authoritative owner is re-applied to the destination through
        the trusted path, so the destination converges even for keys whose
        copy batch already passed.  Reads never touch the destination —
        the authoritative side serves until cutover.
        """
        migration = self._migration
        if migration is not None and migration.stage == STAGE_SYNC:
            self._dual_apply(migration, requests, responses)
        if self._migration is not None:
            self.step()

    def step(self) -> None:
        """Advance the in-flight migration by one bounded batch."""
        migration = self._migration
        if migration is None:
            return
        if migration.stage == STAGE_SYNC:
            self._sync_batch(migration)
        elif migration.stage == STAGE_RETIRE:
            self._retire_batch(migration)

    # -- stage: prepare ----------------------------------------------------------

    def _begin_add(self, plan: ReconfigPlan, shard_id: str) -> None:
        coordinator = self._coordinator
        migration = _Migration(plan, "add", shard_id,
                               coordinator.ring.copy())
        self._enter_stage(migration, STAGE_PREPARE)
        try:
            new_shard = self._build_shard(shard_id)
            migration.new_shard = new_shard
            # Durability before a single read: the sidecar's sealed
            # snapshot + epoch binding must exist before the shard can be
            # routed to, or a whole-group crash mid-join would lose the
            # dual-applied writes it acked custody of.
            if self._cluster_durable():
                if self.spec.durability_factory is None:
                    raise AriaError(  # planner-approved plans never hit this
                        "durable cluster but no durability_factory")
                self.spec.durability_factory(new_shard)
            migration.target_ring.add_shard(shard_id, vnodes=self.vnodes)
            migration.pending = self._moving_keys(migration)
        except AriaError as exc:
            self._abort(migration, f"prepare failed: {exc}", started=False)
            raise
        self._migration = migration
        self._enter_stage(migration, STAGE_SYNC)

    def _begin_remove(self, plan: ReconfigPlan, shard_id: str) -> None:
        coordinator = self._coordinator
        target_ring = coordinator.ring.copy()
        target_ring.remove_shard(shard_id)
        migration = _Migration(plan, "remove", shard_id, target_ring)
        self._enter_stage(migration, STAGE_PREPARE)
        try:
            migration.pending = self._moving_keys(migration)
        except AriaError as exc:
            self._abort(migration, f"prepare failed: {exc}", started=False)
            raise
        self._migration = migration
        self._enter_stage(migration, STAGE_SYNC)

    def _cluster_durable(self) -> bool:
        return any(getattr(s, "durability", None) is not None
                   for s in self._coordinator.shards.values())

    def _build_shard(self, shard_id: str):
        """Provision the joining shard: same recipe as its peers.

        Always a replica group (R >= 1) built through the coordinator's
        own backend factory, so an added shard lands on the same hosting
        (inline/process/socket) as the rest of the cluster, wrapped for
        fault injection like every chaos-suite shard.  Cache quotas come
        from the *live* tenancy roster, not the build-time snapshot —
        the topology half of the §16 re-partitioning story.
        """
        spec = self.spec
        coordinator = self._coordinator
        factory = resolve_backend(coordinator.backend)
        overrides = dict(spec.shard_overrides)
        tenancy = getattr(coordinator, "tenancy", None)
        if tenancy is not None:
            quotas = tenancy.config.cache_quota_map()
            if quotas:
                overrides["tenant_quotas"] = quotas
        self._builds += 1
        seed = spec.seed + 101 * (len(coordinator.shards) + self._builds)
        return build_replica_group(
            shard_id,
            spec.replication,
            epc_bytes=spec.epc_bytes,
            capacity_keys=spec.capacity_keys,
            index=spec.index,
            seed=seed,
            value_hint=spec.value_hint,
            fault_plan=spec.fault_plan,
            backend=factory,
            workers=spec.workers,
            **overrides,
        )

    def _moving_keys(self, migration: _Migration) -> List[Tuple[str, bytes]]:
        """Snapshot the keys whose owner changes under the target ring.

        Keys written *after* this snapshot are covered by dual-apply, so
        the snapshot plus the write stream is complete.  Sources are
        walked in sorted-id order and each store in its own deterministic
        iteration order, keeping the copy schedule (and its metering)
        identical across backends.
        """
        coordinator = self._coordinator
        current = coordinator.ring
        target = migration.target_ring
        moving: List[Tuple[str, bytes]] = []
        if migration.kind == "remove":
            sources = [migration.subject_id]
        else:
            sources = sorted(coordinator.shards)
        for src_id in sources:
            store = coordinator.shards[src_id].store
            for key in list(store.keys()):
                if target.route(key) != current.route(key):
                    moving.append((src_id, key))
        return moving

    # -- stage: sync -------------------------------------------------------------

    def _destination(self, migration: _Migration, key: bytes):
        owner = migration.target_ring.route(key)
        if migration.kind == "add" and owner == migration.subject_id:
            return migration.new_shard
        return self._coordinator.shards[owner]

    def _sync_batch(self, migration: _Migration) -> None:
        """Copy up to ``batch_keys`` moving keys through the trusted path."""
        end = min(migration.cursor + self.batch_keys, len(migration.pending))
        while migration.cursor < end:
            src_id, key = migration.pending[migration.cursor]
            migration.cursor += 1
            src = self._coordinator.shards.get(src_id)
            if src is None:  # pragma: no cover - defensive
                continue
            try:
                value = src.store.get(key)       # verified read (src enclave)
            except KeyNotFoundError:
                continue  # deleted since the snapshot: nothing to move
            except (ShardCrashedError, ReplicaUnavailableError) as exc:
                self._abort(migration, f"source {src_id} lost during sync: "
                                       f"{type(exc).__name__}")
                return
            dst = self._destination(migration, key)
            try:
                dst.store.put(key, value)        # re-sealed under dst's keys
            except (ShardCrashedError, ReplicaUnavailableError,
                    DurabilityError) as exc:
                self._abort(migration,
                            f"destination lost during sync: "
                            f"{type(exc).__name__}")
                return
            migration.copied.append((src_id, key))
            self.keys_migrated += 1
        if migration.cursor >= len(migration.pending):
            self._cutover(migration)

    def _dual_apply(self, migration: _Migration,
                    requests: List[Request],
                    responses: List[Response]) -> None:
        coordinator = self._coordinator
        for request, response in zip(requests, responses):
            if request.opcode == OpCode.GET \
                    or request.opcode == OpCode.HEALTH:
                continue
            if response is None or response.status != Status.OK:
                continue  # only *acked* writes carry a durability promise
            key = request.key
            if migration.target_ring.route(key) == coordinator.ring.route(key):
                continue
            dst = self._destination(migration, key)
            try:
                if request.opcode == OpCode.DELETE:
                    try:
                        dst.store.delete(key)
                    except KeyNotFoundError:
                        pass  # never copied yet: the snapshot pass skips it
                else:
                    dst.store.put(key, request.value)
            except (ShardCrashedError, ReplicaUnavailableError,
                    DurabilityError) as exc:
                self._abort(migration,
                            f"destination lost during dual-apply: "
                            f"{type(exc).__name__}")
                return
            self.dual_applied += 1

    # -- stage: cutover ----------------------------------------------------------

    def _cutover(self, migration: _Migration) -> None:
        """The commit point: swap the ring; membership changes atomically.

        Before this the target ring was a shadow — every read and every
        ack came from the old owners.  After it the destination is
        authoritative and the old copies are garbage awaiting RETIRE.
        """
        coordinator = self._coordinator
        self._enter_stage(migration, STAGE_CUTOVER)
        if self._migration is None:
            return  # a cutover-stage fault killed the subject: aborted
        if migration.kind == "add":
            coordinator.admit_shard(migration.new_shard,
                                    ring=migration.target_ring)
        else:
            retired = coordinator.retire_shard(migration.subject_id,
                                               ring=migration.target_ring)
            migration.new_shard = retired  # closed in RETIRE
        coordinator.on_topology_change()
        self._enter_stage(migration, STAGE_RETIRE)

    # -- stage: retire -----------------------------------------------------------

    def _retire_batch(self, migration: _Migration) -> None:
        if migration.kind == "remove":
            # The leaving shard is out of the ring; release its enclaves.
            close = getattr(migration.new_shard, "close", None)
            if close is not None:
                close()
            self._finish(migration)
            return
        end = min(migration.retire_cursor + self.batch_keys,
                  len(migration.copied))
        while migration.retire_cursor < end:
            src_id, key = migration.copied[migration.retire_cursor]
            migration.retire_cursor += 1
            src = self._coordinator.shards.get(src_id)
            if src is None:
                continue
            try:
                src.store.delete(key)  # counter back to src's free ring
                self.keys_retired += 1
            except (KeyNotFoundError, AriaError):
                continue  # already gone, or source down: stale copy stays
        if migration.retire_cursor >= len(migration.copied):
            self._finish(migration)

    def _finish(self, migration: _Migration) -> None:
        self.migrations_completed += 1
        self._migration = None

    # -- abort / rollback --------------------------------------------------------

    def _abort(self, migration: _Migration, reason: str,
               *, started: bool = True) -> None:
        """Roll back: the prior ring was never replaced, so restoring it
        is free — discard the partial copy and the joining shard.

        Every acked write lives on the authoritative (old-ring) side,
        which never stopped serving: aborting loses nothing.
        """
        self.migrations_aborted += 1
        self.last_abort_reason = reason
        self._migration = None
        if migration.kind == "add":
            shard = migration.new_shard
            if shard is not None:
                close = getattr(shard, "close", None)
                if close is not None:
                    try:
                        close()
                    except AriaError:  # pragma: no cover - best-effort
                        pass
        else:
            # Best-effort: scrub the shadow copies off the destinations so
            # a later retry starts clean (unreachable garbage otherwise).
            for src_id, key in migration.copied:
                try:
                    self._destination(migration, key).store.delete(key)
                except (KeyNotFoundError, AriaError):
                    continue

    # -- stage-addressed fault injection -----------------------------------------

    def _enter_stage(self, migration: _Migration, stage: str) -> None:
        migration.stage = stage
        plan = self.spec.fault_plan
        if plan is None:
            return
        subject = self._subject_faulty_shards(migration)
        if not subject:
            return
        for event in plan.pop_due(elastic_target(migration.subject_id),
                                  STAGE_ORDINALS[stage]):
            # Round-robin across the subject's replicas: one event hits
            # one enclave, so an R>1 subject rides out a staged KILL via
            # failover while an R=1 subject exercises the abort path.
            subject[migration.faults_applied % len(subject)].apply(event)
            migration.faults_applied += 1
        self._check_subject(migration)

    def _subject_faulty_shards(self, migration: _Migration) -> List:
        """The FaultyShard wrappers behind the migration's subject."""
        if migration.kind == "add":
            shard = migration.new_shard
        else:
            # Until cutover the leaving shard is a cluster member; after
            # it the detached group is parked on ``new_shard`` for RETIRE.
            shard = self._coordinator.shards.get(migration.subject_id,
                                                 migration.new_shard)
        if shard is None:
            return []
        replicas = getattr(shard, "replicas", None)
        if replicas is not None:
            return [r.shard for r in replicas if hasattr(r.shard, "apply")]
        return [shard] if hasattr(shard, "apply") else []

    def _check_subject(self, migration: _Migration) -> None:
        """Abort an add whose joining group just died to a staged fault."""
        if migration.kind != "add" or migration.new_shard is None:
            return
        replicas = getattr(migration.new_shard, "replicas", None)
        if replicas is None:
            return
        all_dead = all(getattr(r.shard, "crashed", False)
                       or getattr(r.shard, "partitioned", False)
                       for r in replicas)
        if all_dead and migration.stage in (STAGE_SYNC, STAGE_CUTOVER):
            self._abort(migration, f"staged fault killed "
                                   f"{migration.subject_id} in "
                                   f"{migration.stage}")

    # -- reporting ----------------------------------------------------------------

    def stats(self) -> dict:
        active = None
        migration = self._migration
        if migration is not None:
            active = {
                "kind": migration.kind,
                "shard": migration.subject_id,
                "stage": migration.stage,
                "copied": migration.cursor,
                "pending": len(migration.pending),
            }
        return {
            "migrations_started": self.migrations_started,
            "migrations_completed": self.migrations_completed,
            "migrations_aborted": self.migrations_aborted,
            "keys_migrated": self.keys_migrated,
            "keys_retired": self.keys_retired,
            "dual_applied": self.dual_applied,
            "plans_approved": self.planner.plans_approved,
            "plans_rejected": self.planner.plans_rejected,
            "rejections": dict(self.planner.rejections),
            "last_abort_reason": self.last_abort_reason,
            "active": active,
        }
