"""Encrypted, attested wire sessions for the cluster front door.

The ROADMAP's wire-encryption item: the paper's threat model (Section II)
trusts only the enclave, yet the original TCP front door spoke plaintext
frames — the client-to-enclave leg was wide open.  This module closes it
the way production SGX storage does (Harnik et al.; Tang et al.'s
authenticated KV stores): an attestation-bound session-key handshake, then
AEAD-protected frames terminated at a *gateway enclave* in front of the
shards.

The fiction, piece by piece:

* **Gateway enclave** — :class:`SessionManager` owns a
  :class:`~repro.crypto.keys.KeyMaterial` identity (the stand-in for
  MRENCLAVE + platform fusing) and a :class:`~repro.sgx.meter.CycleMeter`;
  every wire-crypto operation is charged to it through the
  :class:`~repro.sgx.costs.CostModel`, so the handshake and per-frame AEAD
  show up as priced simulated cycles exactly like the shards' work.
* **Quote** — :func:`make_quote` seals ``measurement || report_data`` with
  :func:`repro.sgx.sealing.seal` under a key derived from
  :data:`ATTESTATION_ROOT` — the simulation's attestation authority.  In
  real SGX only the quoting enclave (and Intel's verification service) can
  mint/check quotes; here the root is public so tests can also forge wrong
  quotes.  ``report_data`` is the handshake transcript hash, binding the
  quote to *this* exchange: a replayed or re-targeted quote fails
  verification.
* **Key exchange** — finite-field Diffie-Hellman over the RFC 3526
  2048-bit MODP group (pure stdlib ``pow``).  Both hellos, the chosen
  version, the session id, and both public shares enter the transcript
  hash, so tampering with the offered/chosen versions (a downgrade
  attempt) desynchronizes the derived keys and the quote check —
  negotiation is downgrade-free for any client that requires v2.
* **Record protection** — :class:`SecureSession` frames carry AES-CTR
  ciphertext + a CMAC tag over header-plus-ciphertext (the
  :mod:`repro.crypto` primitives).  Keys are per-direction (client->server
  and server->client derive distinct pairs) and the CTR counter is
  ``session_id || seq``, so no (key, nonce) pair ever repeats.  ``seq``
  must strictly increase per direction: a recorded frame resent on the
  same connection raises :class:`~repro.errors.ReplayError`; one resent
  under a retired session id raises
  :class:`~repro.errors.StaleSessionError`; any bit flip raises
  :class:`~repro.errors.TamperedFrameError` before plaintext is released.

Hello bodies (inside v2 handshake frames, little-endian)::

    client hello := "AHLO" | n_versions (1) | versions | nonce (16) | pub (256)
                  [ | t_len (1) | tenant_id | credential (16) ]
    server hello := "SHLO" | version (1) | nonce (16) | session_id (8)
                  | pub (256) | quote_len (2) | quote

The optional trailing **tenant block** binds a principal into the
handshake (ARCHITECTURE §16): ``credential`` is a MAC under the tenant's
secret over the tenant id plus this hello's nonce and DH share
(:func:`repro.cluster.tenancy.tenant_credential`), so it is fresh per
connection and replay-proof; and because the transcript hash covers the
*whole* client hello frame, the quote the server returns attests the
tenant claim too — a handshake whose tenant block was tampered with
derives desynchronized keys and fails.  The authenticated tenant id is
pinned on the resulting :class:`SecureSession` (``session.tenant``), and
the front door rejects sealed frames whose claimed tenant differs.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import struct
from typing import Dict, Optional, Tuple

from repro.crypto.backend import CryptoBackend, MAC_SIZE, get_backend
from repro.crypto.keys import KeyMaterial
from repro.errors import (
    HandshakeError,
    IntegrityError,
    ProtocolError,
    ReplayError,
    StaleSessionError,
    TamperedFrameError,
)
from repro.server import protocol
from repro.server.protocol import (
    FLAG_FROM_SERVER,
    FLAG_HANDSHAKE,
    WIRE_V2,
    FrameHeader,
)
from repro.sgx.costs import CostModel, DEFAULT_COSTS
from repro.sgx.meter import CycleMeter
from repro.sgx.sealing import seal, unseal

# RFC 3526 group 14: 2048-bit MODP prime, generator 2.
DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
DH_GENERATOR = 2
DH_BYTES = 256
_EXPONENT_BYTES = 32  # 256-bit private exponents

NONCE_SIZE = 16
SESSION_ID_SIZE = 8

#: Wire versions this session layer can secure (v1 is plaintext, not ours).
SUPPORTED_VERSIONS = (WIRE_V2,)

_CLIENT_MAGIC = b"AHLO"
_SERVER_MAGIC = b"SHLO"
_CLIENT_HELLO = struct.Struct("<4sB")          # magic, n_versions
_SERVER_HELLO = struct.Struct("<4sB16sQ")      # magic, version, nonce, sid
_QUOTE_LEN = struct.Struct("<H")

#: The simulated attestation authority's root key.  Real SGX: the quoting
#: enclave's fused key / Intel's verification service.  Simulation: a
#: well-known constant, so clients can verify quotes and tests can mint
#: forgeries — the *binding* (measurement + transcript) is what is modeled,
#: not the unforgeability of the authority.
ATTESTATION_ROOT = hashlib.blake2b(
    b"aria-attestation-service-v1", digest_size=16
).digest()


def measurement(keys: KeyMaterial) -> bytes:
    """The MRENCLAVE stand-in: a digest of the enclave identity."""
    return hashlib.blake2b(
        keys.encryption_key + keys.mac_key,
        key=b"aria-mrenclave",
        digest_size=16,
    ).digest()


def make_quote(backend: CryptoBackend, keys: KeyMaterial,
               report_data: bytes) -> bytes:
    """Attestation evidence: seal measurement+report under the root key."""
    return seal(backend, ATTESTATION_ROOT, measurement(keys) + report_data)


def verify_quote(
    backend: CryptoBackend,
    quote: bytes,
    report_data: bytes,
    expected_measurement: Optional[bytes] = None,
) -> bytes:
    """Check a quote; returns the attested measurement.

    Raises :class:`~repro.errors.HandshakeError` if the quote fails
    authentication, binds a different handshake transcript, or (when the
    caller pins one) attests a different enclave measurement.
    """
    try:
        body = unseal(backend, ATTESTATION_ROOT, quote)
    except IntegrityError as exc:
        raise HandshakeError(
            f"quote failed attestation verification: {exc}"
        ) from exc
    attested, bound = body[:16], body[16:]
    if bound != report_data:
        raise HandshakeError("quote does not bind this handshake transcript")
    if expected_measurement is not None and attested != expected_measurement:
        raise HandshakeError(
            "enclave measurement mismatch: expected "
            f"{expected_measurement.hex()}, got {attested.hex()}"
        )
    return attested


def _dh_secret(rng) -> int:
    return int.from_bytes(rng(_EXPONENT_BYTES), "little") | 1

def _dh_public(secret: int) -> bytes:
    return pow(DH_GENERATOR, secret, DH_PRIME).to_bytes(DH_BYTES, "big")


def _dh_shared(peer_public: bytes, secret: int) -> bytes:
    peer = int.from_bytes(peer_public, "big")
    if not 1 < peer < DH_PRIME - 1:
        raise HandshakeError("degenerate key-exchange public share")
    return pow(peer, secret, DH_PRIME).to_bytes(DH_BYTES, "big")


def _transcript(client_hello_frame: bytes, server_hello_prefix: bytes) -> bytes:
    """Hash of everything both sides said before the quote."""
    return hashlib.blake2b(
        client_hello_frame + server_hello_prefix,
        key=b"aria-wire-transcript",
        digest_size=32,
    ).digest()


def _derive_session_keys(
    shared: bytes, transcript: bytes
) -> Tuple[KeyMaterial, KeyMaterial]:
    """64 bytes of key material -> (client->server, server->client) keys."""
    raw = hashlib.blake2b(
        shared + transcript, key=b"aria-wire-kdf-v2", digest_size=64
    ).digest()
    return (
        KeyMaterial(encryption_key=raw[0:16], mac_key=raw[16:32]),
        KeyMaterial(encryption_key=raw[32:48], mac_key=raw[48:64]),
    )


class SecureSession:
    """One established AEAD channel: per-direction keys, anti-replay state.

    ``seal`` produces a complete v2 frame payload (header + ciphertext +
    tag) and ``open`` reverses it, enforcing in order: session-id match,
    tag verification (over header *and* ciphertext), and strict sequence
    advance.  Both charge the owning side's meter through the cost model —
    the gateway enclave on the server, the client's own accounting on the
    client.
    """

    def __init__(
        self,
        session_id: int,
        *,
        send_keys: KeyMaterial,
        recv_keys: KeyMaterial,
        crypto: CryptoBackend,
        costs: CostModel,
        meter: CycleMeter,
        from_server: bool,
    ):
        self.session_id = session_id
        self._send_keys = send_keys
        self._recv_keys = recv_keys
        self._crypto = crypto
        self._costs = costs
        self.meter = meter
        self._send_flags = FLAG_FROM_SERVER if from_server else 0
        self._send_seq = 0
        self._recv_seq = 0
        self.frames_sealed = 0
        self.frames_opened = 0
        #: Tenant id authenticated at handshake time (``None`` = anonymous).
        self.tenant: Optional[str] = None

    @property
    def cipher(self) -> str:
        return f"{self._crypto.name}/aes-ctr+cmac"

    @staticmethod
    def _nonce(session_id: int, seq: int) -> bytes:
        return struct.pack("<QQ", session_id, seq)

    def seal(self, payload: bytes) -> bytes:
        """Encrypt + authenticate one outgoing frame payload."""
        self._send_seq += 1
        header = FrameHeader(version=WIRE_V2, flags=self._send_flags,
                             session_id=self.session_id, seq=self._send_seq)
        header_bytes = header.encode()
        ciphertext = self._crypto.encrypt(
            self._send_keys.encryption_key,
            self._nonce(self.session_id, self._send_seq),
            payload,
        )
        tag = self._crypto.mac(self._send_keys.mac_key,
                               header_bytes + ciphertext)
        self.meter.charge_event(
            "wire_enc", self._costs.enc_cost(len(payload)))
        self.meter.charge_event(
            "wire_mac",
            self._costs.mac_cost(len(header_bytes) + len(ciphertext)))
        self.frames_sealed += 1
        return header_bytes + ciphertext + tag

    def open(self, frame: bytes) -> bytes:
        """Verify + decrypt one incoming frame payload; typed errors only."""
        header, body = protocol.decode_frame(frame)
        if header.version != WIRE_V2:
            raise TamperedFrameError(
                "plaintext frame on an encrypted session")
        if header.flags & FLAG_HANDSHAKE:
            raise ProtocolError("unexpected handshake frame mid-session")
        if header.session_id != self.session_id:
            raise StaleSessionError(
                f"frame under session {header.session_id}, but this channel "
                f"is session {self.session_id}"
            )
        expected_flags = self._send_flags ^ FLAG_FROM_SERVER
        if len(body) < MAC_SIZE:
            raise TamperedFrameError("frame too short to carry a tag")
        ciphertext, tag = body[:-MAC_SIZE], body[-MAC_SIZE:]
        header_bytes = header.encode()
        self.meter.charge_event(
            "wire_mac",
            self._costs.mac_cost(len(header_bytes) + len(ciphertext)))
        if not self._crypto.mac_verify(self._recv_keys.mac_key,
                                       header_bytes + ciphertext, tag):
            raise TamperedFrameError(
                f"frame {header.seq} of session {self.session_id} failed "
                "authentication"
            )
        # Only authenticated headers reach the replay / direction checks:
        # a forged seq or flipped direction bit already failed the MAC.
        if header.flags != expected_flags:
            raise TamperedFrameError("reflected frame (direction bit)")
        if header.seq <= self._recv_seq:
            raise ReplayError(
                f"replayed frame: seq {header.seq} does not advance past "
                f"{self._recv_seq} on session {self.session_id}"
            )
        self._recv_seq = header.seq
        self.meter.charge_event(
            "wire_enc", self._costs.enc_cost(len(ciphertext)))
        self.frames_opened += 1
        return self._crypto.decrypt(
            self._recv_keys.encryption_key,
            self._nonce(self.session_id, header.seq),
            ciphertext,
        )


class ClientHandshake:
    """The client half: emit a hello, verify the quote, derive the session.

    One-shot: build, :meth:`hello`, :meth:`finish`.  ``expected_measurement``
    pins the gateway identity (the deployment's known-good MRENCLAVE); when
    ``None`` the quote is still verified against the attestation root and
    the transcript, but any genuine enclave is accepted (trust on first
    use).

    ``tenant``/``credential`` attach the optional tenant block to the
    hello: ``credential`` is the tenant's *secret* (the per-handshake MAC
    is derived from it here, because it must cover this hello's fresh
    nonce and DH share); when ``None`` the simulation's derivable default
    secret is used.
    """

    def __init__(
        self,
        *,
        expected_measurement: Optional[bytes] = None,
        crypto: str | CryptoBackend = "fast",
        costs: CostModel = DEFAULT_COSTS,
        meter: Optional[CycleMeter] = None,
        versions: Tuple[int, ...] = SUPPORTED_VERSIONS,
        rng=os.urandom,
        tenant: Optional[str] = None,
        credential: Optional[bytes] = None,
    ):
        self._expected = expected_measurement
        self._crypto = (crypto if isinstance(crypto, CryptoBackend)
                        else get_backend(crypto))
        self._costs = costs
        self.meter = meter if meter is not None else CycleMeter()
        self._versions = tuple(versions)
        self._rng = rng
        self._secret = _dh_secret(rng)
        self._hello_frame: Optional[bytes] = None
        if credential is not None and tenant is None:
            raise HandshakeError("credential given without a tenant id")
        self.tenant = tenant
        self._tenant_secret = credential

    def hello(self) -> bytes:
        """The complete v2 handshake frame payload to send first."""
        nonce = self._rng(NONCE_SIZE)
        public = _dh_public(self._secret)
        body = (
            _CLIENT_HELLO.pack(_CLIENT_MAGIC, len(self._versions))
            + bytes(self._versions)
            + nonce
            + public
        )
        if self.tenant is not None:
            from repro.cluster.tenancy import (
                default_tenant_secret, tenant_credential,
            )
            raw = self.tenant.encode("utf-8")
            if not 0 < len(raw) < 256:
                raise HandshakeError("tenant id does not fit the hello")
            secret = (self._tenant_secret if self._tenant_secret is not None
                      else default_tenant_secret(self.tenant))
            cred = tenant_credential(
                self._crypto, secret, self.tenant, nonce, public)
            body += len(raw).to_bytes(1, "little") + raw + cred
            self.meter.charge_event(
                "wire_mac", self._costs.mac_cost(len(raw) + len(cred)))
        self.meter.charge_event("wire_kex", self._costs.kex)
        self._hello_frame = protocol.encode_frame(
            FrameHeader(version=WIRE_V2, flags=FLAG_HANDSHAKE), body
        )
        return self._hello_frame

    def finish(self, reply: bytes) -> SecureSession:
        """Digest the server hello; returns the established session."""
        if self._hello_frame is None:
            raise HandshakeError("finish() before hello()")
        header, body = protocol.decode_frame(reply)
        if header.version != WIRE_V2 or not header.flags & FLAG_HANDSHAKE:
            raise HandshakeError(
                "server did not negotiate an encrypted session "
                "(downgrade attempt or v1-only server)"
            )
        prefix_len = _SERVER_HELLO.size + DH_BYTES
        if len(body) < prefix_len + _QUOTE_LEN.size:
            raise HandshakeError("truncated server hello")
        magic, version, _nonce, session_id = _SERVER_HELLO.unpack_from(body)
        if magic != _SERVER_MAGIC:
            raise HandshakeError("malformed server hello")
        if version not in self._versions:
            raise HandshakeError(
                f"server chose version {version}, which we never offered"
            )
        server_public = body[_SERVER_HELLO.size:prefix_len]
        (quote_len,) = _QUOTE_LEN.unpack_from(body, prefix_len)
        quote = body[prefix_len + _QUOTE_LEN.size:]
        if len(quote) != quote_len:
            raise HandshakeError("truncated server hello (quote)")
        transcript = _transcript(self._hello_frame, body[:prefix_len])
        self.meter.charge_event("wire_quote", self._costs.quote_attest)
        self.attested_measurement = verify_quote(
            self._crypto, quote, transcript, self._expected
        )
        self.meter.charge_event("wire_kex", self._costs.kex)
        shared = _dh_shared(server_public, self._secret)
        c2s, s2c = _derive_session_keys(shared, transcript)
        session = SecureSession(
            session_id,
            send_keys=c2s,
            recv_keys=s2c,
            crypto=self._crypto,
            costs=self._costs,
            meter=self.meter,
            from_server=False,
        )
        # The server accepted a hello carrying our tenant block (else it
        # would have rejected the handshake), so the claim is established.
        session.tenant = self.tenant
        return session


class SessionManager:
    """The gateway enclave: accepts handshakes, owns the session table.

    One manager serves a whole front door; each connection's handshake
    yields one :class:`SecureSession` (rekeying is simply a reconnect).
    The manager's meter aggregates every handshake and every frame's AEAD
    cost — the priced wire overhead of the cluster.  Retired session ids
    are remembered so late frames from a closed connection are diagnosed
    as stale rather than unknown.
    """

    def __init__(
        self,
        *,
        keys: Optional[KeyMaterial] = None,
        seed: Optional[int] = 0,
        crypto: str | CryptoBackend = "fast",
        costs: CostModel = DEFAULT_COSTS,
        accept_versions: Tuple[int, ...] = SUPPORTED_VERSIONS,
        rng=os.urandom,
        registry=None,
        require_tenant: bool = False,
    ):
        if keys is None:
            keys = (KeyMaterial.from_seed(seed) if seed is not None
                    else KeyMaterial.random())
        self.keys = keys
        #: Optional :class:`repro.cluster.tenancy.TenantRegistry`; without
        #: one, hellos carrying a tenant block are rejected (a client
        #: asking for an authenticated session must not silently get an
        #: anonymous one).
        self.registry = registry
        self.require_tenant = require_tenant
        if require_tenant and registry is None:
            raise HandshakeError(
                "require_tenant without a tenant registry")
        self._crypto = (crypto if isinstance(crypto, CryptoBackend)
                        else get_backend(crypto))
        self._costs = costs
        self.meter = CycleMeter()
        self._accept_versions = tuple(accept_versions)
        self._rng = rng
        # Random id base: ids from a manager's previous life never collide
        # with (and are never mistaken for) the current table's.
        self._ids = itertools.count(
            int.from_bytes(os.urandom(6), "little") or 1
        )
        self.sessions: Dict[int, SecureSession] = {}
        self.retired: set = set()
        self.handshakes = 0

    @property
    def measurement(self) -> bytes:
        """What an honest quote for this gateway attests."""
        return measurement(self.keys)

    @property
    def cipher(self) -> str:
        return f"{self._crypto.name}/aes-ctr+cmac"

    def accept(self, hello_frame: bytes) -> Tuple[bytes, SecureSession]:
        """Process a client hello; returns (server reply, session).

        Raises :class:`~repro.errors.HandshakeError` on any malformation —
        the caller answers with a rejection and hangs up; nothing about a
        bad hello is ever trusted.
        """
        try:
            header, body = protocol.decode_frame(hello_frame)
        except ProtocolError as exc:
            raise HandshakeError(f"undecodable hello: {exc}") from exc
        if header.version != WIRE_V2 or not header.flags & FLAG_HANDSHAKE:
            raise HandshakeError("not a handshake frame")
        if len(body) < _CLIENT_HELLO.size:
            raise HandshakeError("truncated client hello")
        magic, n_versions = _CLIENT_HELLO.unpack_from(body)
        if magic != _CLIENT_MAGIC:
            raise HandshakeError("malformed client hello")
        expected_len = (_CLIENT_HELLO.size + n_versions + NONCE_SIZE
                        + DH_BYTES)
        if len(body) < expected_len:
            raise HandshakeError(
                f"truncated client hello: {len(body)} bytes, "
                f"expected at least {expected_len}"
            )
        offered = body[_CLIENT_HELLO.size:_CLIENT_HELLO.size + n_versions]
        common = set(offered) & set(self._accept_versions)
        if not common:
            raise HandshakeError(
                f"no common wire version (offered {sorted(offered)}, "
                f"accept {sorted(self._accept_versions)})"
            )
        version = max(common)
        nonce_off = _CLIENT_HELLO.size + n_versions
        client_nonce = body[nonce_off:nonce_off + NONCE_SIZE]
        client_public = body[expected_len - DH_BYTES:expected_len]
        tenant_id = self._check_tenant_block(
            body[expected_len:], client_nonce, client_public)

        secret = _dh_secret(self._rng)
        session_id = next(self._ids)
        prefix = _SERVER_HELLO.pack(
            _SERVER_MAGIC, version, self._rng(NONCE_SIZE), session_id
        ) + _dh_public(secret)
        transcript = _transcript(hello_frame, prefix)
        self.meter.charge_event("wire_kex", self._costs.kex)
        self.meter.charge_event("wire_quote", self._costs.quote_attest)
        quote = make_quote(self._crypto, self.keys, transcript)
        reply_body = prefix + _QUOTE_LEN.pack(len(quote)) + quote
        self.meter.charge_event("wire_kex", self._costs.kex)
        shared = _dh_shared(client_public, secret)
        c2s, s2c = _derive_session_keys(shared, transcript)
        session = SecureSession(
            session_id,
            send_keys=s2c,
            recv_keys=c2s,
            crypto=self._crypto,
            costs=self._costs,
            meter=self.meter,
            from_server=True,
        )
        session.tenant = tenant_id
        self.sessions[session_id] = session
        self.handshakes += 1
        reply = protocol.encode_frame(
            FrameHeader(version=WIRE_V2,
                        flags=FLAG_HANDSHAKE | FLAG_FROM_SERVER,
                        session_id=session_id),
            reply_body,
        )
        return reply, session

    def _check_tenant_block(self, extra: bytes, nonce: bytes,
                            client_public: bytes) -> Optional[str]:
        """Authenticate the hello's optional trailing tenant block.

        Returns the verified tenant id (or ``None`` for an anonymous
        hello); raises :class:`~repro.errors.HandshakeError` for a
        malformed block, an unconfigured registry, a failed credential, or
        (under ``require_tenant``) a missing block.
        """
        if not extra:
            if self.require_tenant:
                raise HandshakeError(
                    "this front door requires tenant authentication")
            return None
        if self.registry is None:
            raise HandshakeError(
                "client presented a tenant block but tenancy is not "
                "enabled on this front door")
        t_len = extra[0]
        if t_len == 0 or len(extra) != 1 + t_len + MAC_SIZE:
            raise HandshakeError("malformed tenant block")
        try:
            tenant_id = extra[1:1 + t_len].decode("utf-8")
        except UnicodeDecodeError:
            raise HandshakeError("tenant id is not valid UTF-8") from None
        credential = extra[1 + t_len:]
        self.meter.charge_event(
            "wire_mac", self._costs.mac_cost(len(extra)))
        self.registry.verify(
            self._crypto, tenant_id, credential, nonce, client_public)
        return tenant_id

    def retire(self, session: SecureSession) -> None:
        """Close out a connection's session; its id becomes stale."""
        if self.sessions.pop(session.session_id, None) is not None:
            self.retired.add(session.session_id)

    def stats(self) -> dict:
        """The gateway's row: session counts plus its metered cycles."""
        row = {
            "handshakes": self.handshakes,
            "active_sessions": len(self.sessions),
            "retired_sessions": len(self.retired),
            "cipher": self.cipher,
            "cycles": self.meter.cycles,
            "events": dict(self.meter.events),
        }
        # Tenant visibility only when tenancy is armed, so an unarmed
        # gateway's stats stay byte-identical to the pre-tenancy shape.
        if self.registry is not None:
            row["tenant_sessions"] = sum(
                1 for s in self.sessions.values() if s.tenant is not None)
        return row
