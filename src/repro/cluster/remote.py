"""Transport-agnostic plumbing for shards whose enclave lives elsewhere.

The :class:`~repro.cluster.procbackend.ProcessBackend` (enclave in a
``multiprocessing`` worker behind a pipe) and the
:class:`~repro.cluster.sockbackend.SocketBackend` (enclave in a shard-host
process behind an attested TCP session) speak the *same* RPC vocabulary:
pickled ``(cmd, args)`` requests answered by ``(tag, payload, meter_dict)``
triples, where every reply piggybacks a full absolute
:meth:`~repro.sgx.meter.CycleMeter.snapshot` of the remote enclave's
meter.  This module holds everything both sides share:

* :func:`dispatch_shard_rpc` — the enclave-side command table, run
  wherever the real :class:`~repro.cluster.shard.Shard` lives;
* :class:`RemoteShardHandle` — the parent-side base class implementing
  the Shard duck-type contract (``store``/``server``/``meter``, balancer
  marks, ``stats`` with a post-mortem cache) on top of two abstract
  transport hooks, ``_send`` and ``_recv``;
* the proxies — :class:`RemoteServer` (``flush_batch`` plus the
  pipelined ``flush_submit``/``flush_collect`` split the coordinator
  uses, valid because both transports are FIFO per shard),
  :class:`RemoteStore` (the trusted path: migrations and re-syncs),
  :class:`RemoteEnclave` and :class:`RemoteMeter` (the absolute-snapshot
  mirror that keeps metering backend-invariant to the bit).

Keeping this in one place is what makes the equivalence tests meaningful:
a new transport only decides *how bytes move*, never what the RPCs mean
or how cycles are accounted.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.errors import ShardCrashedError
from repro.sgx.costs import SgxPlatform
from repro.sgx.meter import CycleMeter, MeterSnapshot

#: How long a single RPC may go unanswered before the remote enclave is
#: presumed hung and treated as crashed (CI job timeouts are the outer net).
DEFAULT_RPC_TIMEOUT = 120.0

DEFAULT_CLOSE_TIMEOUT = 5.0


# ---------------------------------------------------------------------------
# The enclave side: one command table for every transport
# ---------------------------------------------------------------------------


def dispatch_shard_rpc(shard, cmd: str, args: tuple):
    """Execute one RPC against the real Shard, wherever it lives."""
    store = shard.store
    if cmd == "flush":
        (requests,) = args
        return list(shard.server.flush_batch(requests))
    if cmd == "get":
        return store.get(args[0])
    if cmd == "put":
        return store.put(args[0], args[1])
    if cmd == "delete":
        return store.delete(args[0])
    if cmd == "load":
        return store.load(args[0])
    if cmd == "keys":
        return list(store.keys())
    if cmd == "len":
        return len(store)
    if cmd == "contains":
        return args[0] in store
    if cmd == "stats":
        return shard.stats()
    if cmd == "sync":
        return None  # the reply's piggybacked meter is the whole point
    if cmd == "retarget_quotas":
        return store.retarget_tenant_quotas(args[0])
    if cmd == "plant_corruption":
        from repro.cluster.faults import plant_corruption

        return plant_corruption(store, args[0])
    if cmd == "corrupt_in_place":
        from repro.attacks.scenarios import corrupt_record_in_place

        return corrupt_record_in_place(store, args[0])
    raise ValueError(f"unknown shard RPC {cmd!r}")


# ---------------------------------------------------------------------------
# The parent side: handle base class and its proxies
# ---------------------------------------------------------------------------


class RemoteShardHandle:
    """Shard-duck-typed handle for an enclave reachable only by RPC.

    Subclasses own the transport: they implement ``_send(cmd, args)`` and
    ``_recv(timeout)`` (which must call :meth:`_absorb_meter` on every
    reply's piggyback and raise :class:`~repro.errors.ShardCrashedError`
    once the far side is gone), plus lifecycle (``close``, optionally
    ``kill``).  After the transport delivers the remote's ``ready`` info
    dict, they call :meth:`_attach` to wire up the proxies.
    """

    def __init__(self, shard_id: str):
        self.shard_id = shard_id
        self.crashed = False
        self.closed = False
        self.ops_routed = 0
        self._load_mark = 0.0
        self._pending = 0  # pipelined flushes submitted but not collected
        self._stats_cache: Optional[dict] = None
        self._meter = RemoteMeter(self)
        self._info: dict = {}
        self.epc_bytes = 0

    def _attach(self, info: dict) -> None:
        """Record the remote's ``ready`` info and build the proxies."""
        self._info = info
        self.epc_bytes = info["epc_bytes"]
        self._store = RemoteStore(self)
        self._server = RemoteServer(self)

    # -- transport hooks (subclass responsibility) --------------------------------

    def _send(self, cmd: str, args: tuple = ()) -> None:
        raise NotImplementedError

    def _recv(self, timeout: float = DEFAULT_RPC_TIMEOUT):
        raise NotImplementedError

    def _absorb_meter(self, meter_dict) -> None:
        if meter_dict is not None:
            self._meter.absorb(meter_dict)

    def _call(self, cmd: str, args: tuple = ()):
        if self._pending:
            raise RuntimeError(
                f"shard {self.shard_id} has {self._pending} uncollected "
                f"flushes; collect them before issuing {cmd!r}"
            )
        self._send(cmd, args)
        return self._recv()

    # -- Shard duck-typing --------------------------------------------------------

    @property
    def store(self) -> "RemoteStore":
        return self._store

    @property
    def server(self) -> "RemoteServer":
        return self._server

    @property
    def meter(self) -> "RemoteMeter":
        return self._meter

    def load_since_mark(self) -> float:
        return self.meter.cycles - self._load_mark

    def mark_load(self) -> None:
        self._load_mark = self.meter.cycles

    def stats(self) -> dict:
        if self.crashed or self.closed or getattr(self, "partitioned", False):
            # A dead enclave still has a story to tell: serve the last row
            # the remote reported (the meter mirror keeps cycles current
            # up to its final reply).
            row = dict(self._stats_cache) if self._stats_cache else {
                "shard": self.shard_id, "keys": 0,
                "cycles": self.meter.cycles, "epc_bytes": self.epc_bytes,
            }
            row["ops_routed"] = self.ops_routed
            return row
        row = self._call("stats")
        row["ops_routed"] = self.ops_routed
        self._stats_cache = dict(row)
        return row

    def plant_corruption(self, key: bytes = b"") -> bool:
        """Run the fault injector's corruption plant beside the enclave."""
        return self._call("plant_corruption", (key,))


class RemoteServer:
    """The handle's ``server``: flush_batch plus the pipelined split pair."""

    def __init__(self, handle: RemoteShardHandle):
        self._handle = handle

    def flush_batch(self, requests) -> list:
        return self._handle._call("flush", (list(requests),))

    def flush_submit(self, requests) -> int:
        """Ship a batch without waiting; returns a collection ticket.

        Submissions to one shard are answered in FIFO order (both the
        pipe and the TCP session preserve ordering), so tickets are just
        the in-flight depth at submission time.
        """
        handle = self._handle
        handle._send("flush", (list(requests),))
        handle._pending += 1
        return handle._pending

    def flush_collect(self, ticket: int,
                      timeout: float = DEFAULT_RPC_TIMEOUT) -> list:
        """Collect one submitted flush, optionally under a tighter deadline.

        ``timeout`` lets the coordinator derive a per-shard RPC deadline
        from a request's remaining budget; exceeding it raises
        :class:`~repro.errors.ShardCrashedError` (hung => presumed dead),
        which the overload layer's breaker then counts as a failure.  Note
        that a timed-out collect desynchronizes the FIFO ticket stream —
        the shard is treated as lost, never resumed mid-stream.
        """
        handle = self._handle
        try:
            return handle._recv(timeout)
        finally:
            handle._pending = max(0, handle._pending - 1)


class RemoteStore:
    """Store proxy: the trusted path (migration, re-sync) over the RPC."""

    def __init__(self, handle: RemoteShardHandle):
        self._handle = handle
        self._enclave = RemoteEnclave(handle)

    def get(self, key: bytes) -> bytes:
        return self._handle._call("get", (key,))

    def put(self, key: bytes, value: bytes) -> None:
        self._handle._call("put", (key, value))

    def delete(self, key: bytes) -> None:
        self._handle._call("delete", (key,))

    def load(self, pairs) -> None:
        self._handle._call("load", (list(pairs),))

    def keys(self):
        return iter(self._handle._call("keys"))

    def __len__(self) -> int:
        return self._handle._call("len")

    def __contains__(self, key: bytes) -> bool:
        return self._handle._call("contains", (key,))

    def corrupt_record_in_place(self, key: bytes) -> None:
        """Attack-surface hook: tamper a record inside the remote host's
        untrusted memory (see ``repro.attacks.scenarios``)."""
        self._handle._call("corrupt_in_place", (key,))

    def retarget_tenant_quotas(self, quotas) -> None:
        """Re-partition the remote enclave's cache quotas live (§16)."""
        self._handle._call("retarget_quotas",
                           (dict(quotas) if quotas else None,))

    @property
    def config(self):
        return self._handle._info["config"]

    @property
    def enclave(self) -> "RemoteEnclave":
        return self._enclave


class RemoteEnclave:
    """Enclave facade: platform constants, key material, the meter mirror."""

    def __init__(self, handle: RemoteShardHandle):
        self._handle = handle
        self._platform: Optional[SgxPlatform] = None

    @property
    def platform(self) -> SgxPlatform:
        if self._platform is None:
            self._platform = SgxPlatform(
                epc_bytes=self._handle.epc_bytes,
                cpu_hz=self._handle._info["cpu_hz"],
            )
        return self._platform

    @property
    def keys(self):
        from repro.crypto.keys import KeyMaterial

        return KeyMaterial(
            encryption_key=self._handle._info["encryption_key"],
            mac_key=self._handle._info["mac_key"],
        )

    @property
    def meter(self) -> "RemoteMeter":
        return self._handle._meter


class RemoteMeter:
    """Parent-side mirror of the remote enclave's :class:`CycleMeter`.

    Every RPC reply carries a full meter snapshot which replaces the
    local mirror wholesale (absolute state, so no float drift can
    accumulate over the transport); explicit reads issue a cheap ``sync``
    round-trip while the remote is reachable.  After a kill — or behind a
    partition — the mirror serves the last state the remote reported.
    """

    def __init__(self, handle: RemoteShardHandle):
        self._handle = handle
        self._mirror = CycleMeter()

    def absorb(self, meter_dict: dict) -> None:
        self._mirror.reset()
        self._mirror.merge(MeterSnapshot.from_dict(meter_dict))

    def _sync(self) -> None:
        handle = self._handle
        if handle.crashed or handle.closed or handle._pending \
                or getattr(handle, "partitioned", False):
            return
        try:
            handle._call("sync")
        except ShardCrashedError:
            pass  # serve the mirror as of the last successful reply

    @property
    def cycles(self) -> float:
        self._sync()
        return self._mirror.cycles

    @property
    def events(self) -> Counter:
        self._sync()
        return Counter(self._mirror.events)

    def snapshot(self) -> MeterSnapshot:
        self._sync()
        return self._mirror.snapshot()
