"""Tenant identity, credentials, and quota configuration for the cluster.

The multi-tenant front door (ARCHITECTURE §16) rests on three pieces:

* **Identity** — a tenant id plus a per-tenant secret.  The client proves
  possession inside the attested handshake by MACing the handshake-fresh
  material (tenant id, client nonce, client DH share) under the secret
  (:func:`tenant_credential`); the gateway verifies against its
  :class:`TenantRegistry`.  The credential binds to *this* handshake — a
  recorded one replays into nothing, because the nonce and DH share are
  fresh per connection.
* **Namespace** — every tenant owns a fixed-length key prefix
  (:mod:`repro.core.tenant`), so namespaces are disjoint by construction
  and the ring routes tenants' keys independently.
* **Quotas** — per-tenant admission rate (a
  :class:`~repro.cluster.overload.TokenBucket` at the front door) and a
  Secure Cache occupancy share (enforced shard-side against the owner
  token embedded in each key).

Secrets here are simulation-grade, like the attestation root in
:mod:`repro.cluster.session`: :func:`default_tenant_secret` derives a
well-known per-tenant key so examples and tests need no key distribution;
a real deployment would provision secrets out of band.  What is *modeled*
is the binding — which principal said what, charged where — not the
secrecy of the credential store.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.core.tenant import (
    TENANT_PREFIX_LEN,
    owner_token_of,
    prefixed_key,
    strip_prefix,
    tenant_digest,
    tenant_prefix,
    tenant_token,
)
from repro.crypto.backend import CryptoBackend
from repro.errors import ConfigurationError, HandshakeError

__all__ = [
    "MAX_TENANT_ID_BYTES",
    "CREDENTIAL_BYTES",
    "TenantConfig",
    "TenancyConfig",
    "TenantRegistry",
    "default_tenant_secret",
    "tenant_credential",
    "TENANT_PREFIX_LEN",
    "owner_token_of",
    "prefixed_key",
    "strip_prefix",
    "tenant_prefix",
    "tenant_token",
]

#: Wire bound on a tenant id (hello block and tenant envelope both carry
#: a 1-byte length, but ids are kept far smaller than 255 on purpose).
MAX_TENANT_ID_BYTES = 64
#: Credential MAC length (the crypto backend's CMAC).
CREDENTIAL_BYTES = 16

_SECRET_KEY = b"aria-tenant-secret"
_AUTH_CONTEXT = b"aria-tenant-auth-v1"


def default_tenant_secret(tenant_id: str) -> bytes:
    """The simulation's provisioning shortcut: a derivable 16-byte secret."""
    return hashlib.blake2b(
        tenant_id.encode("utf-8"), key=_SECRET_KEY, digest_size=16
    ).digest()


def tenant_credential(backend: CryptoBackend, secret: bytes,
                      tenant_id: str, nonce: bytes,
                      client_public: bytes) -> bytes:
    """MAC proving possession of ``secret``, fresh for this handshake.

    Covers the tenant id plus the hello's nonce and DH share, so the
    credential is bound to the connection being opened: replaying it in
    another hello fails verification because that hello's nonce/share
    differ.
    """
    body = (
        _AUTH_CONTEXT
        + len(tenant_id).to_bytes(1, "little")
        + tenant_id.encode("utf-8")
        + nonce
        + client_public
    )
    return backend.mac(secret, body)


@dataclass(frozen=True)
class TenantConfig:
    """One principal: identity, credential secret, and quotas.

    ``rate``/``burst`` bound front-door admission (requests/second and
    burst size); ``None`` leaves the tenant un-rate-limited.
    ``cache_quota`` is this tenant's guaranteed share of each shard's
    Secure Cache entries, in ``(0, 1]``; while a tenant is at or under its
    share, no other tenant's miss may evict its Merkle nodes.
    """

    tenant_id: str
    secret: Optional[bytes] = None
    rate: Optional[float] = None
    burst: Optional[float] = None
    cache_quota: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ConfigurationError("tenant_id must be non-empty")
        if len(self.tenant_id.encode("utf-8")) > MAX_TENANT_ID_BYTES:
            raise ConfigurationError(
                f"tenant_id exceeds {MAX_TENANT_ID_BYTES} bytes")
        if (self.rate is None) != (self.burst is None):
            raise ConfigurationError(
                "rate and burst must be set together (or neither)")
        if self.rate is not None and self.rate <= 0:
            raise ConfigurationError(f"tenant rate {self.rate} <= 0")
        if self.burst is not None and self.burst <= 0:
            raise ConfigurationError(f"tenant burst {self.burst} <= 0")
        if self.cache_quota is not None \
                and not 0.0 < self.cache_quota <= 1.0:
            raise ConfigurationError(
                f"cache_quota {self.cache_quota} not in (0, 1]")

    @property
    def resolved_secret(self) -> bytes:
        return (self.secret if self.secret is not None
                else default_tenant_secret(self.tenant_id))

    @property
    def token(self) -> str:
        return tenant_token(self.tenant_id)

    @property
    def prefix(self) -> bytes:
        return tenant_prefix(self.tenant_id)


@dataclass(frozen=True)
class TenancyConfig:
    """The cluster's tenant roster plus global tenancy policy.

    ``require_auth=True`` refuses sessions (and plaintext frames) that
    present no tenant; the default keeps anonymous traffic working so
    arming tenancy is not a flag day for existing clients.
    """

    tenants: Tuple[TenantConfig, ...] = field(default_factory=tuple)
    require_auth: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not self.tenants:
            raise ConfigurationError("TenancyConfig needs at least 1 tenant")
        ids = [t.tenant_id for t in self.tenants]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate tenant ids")
        digests: Dict[bytes, str] = {}
        for tenant in self.tenants:
            digest = tenant_digest(tenant.tenant_id)
            clash = digests.get(digest)
            if clash is not None:
                raise ConfigurationError(
                    f"tenant namespace digest collision: {clash!r} and "
                    f"{tenant.tenant_id!r} share a prefix")
            digests[digest] = tenant.tenant_id
        total_quota = sum(t.cache_quota or 0.0 for t in self.tenants)
        if total_quota > 1.0 + 1e-9:
            raise ConfigurationError(
                f"tenant cache quotas sum to {total_quota:.3f} > 1.0")

    def cache_quota_map(self) -> Dict[str, float]:
        """Owner-token -> quota fraction, the shard-side (wire-safe) form.

        Keyed by the hex digest token rather than the tenant id because
        that is all a shard can recover from a prefixed key — and the map
        is plain JSON-able data, so it crosses the process and socket
        backend spawn specs unchanged.
        """
        return {
            t.token: t.cache_quota
            for t in self.tenants
            if t.cache_quota is not None
        }


class TenantRegistry:
    """The gateway's credential store and token <-> id directory."""

    def __init__(self, tenants: Iterable[TenantConfig]):
        self._tenants: Dict[str, TenantConfig] = {}
        for tenant in tenants:
            if tenant.tenant_id in self._tenants:
                raise ConfigurationError(
                    f"duplicate tenant id {tenant.tenant_id!r}")
            self._tenants[tenant.tenant_id] = tenant
        self._by_token = {t.token: t.tenant_id
                          for t in self._tenants.values()}
        if len(self._by_token) != len(self._tenants):
            raise ConfigurationError("tenant namespace digest collision")

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def tenant_ids(self) -> list:
        return sorted(self._tenants)

    def get(self, tenant_id: str) -> Optional[TenantConfig]:
        return self._tenants.get(tenant_id)

    def tenant_for_token(self, token: str) -> Optional[str]:
        return self._by_token.get(token)

    def verify(self, backend: CryptoBackend, tenant_id: str,
               credential: bytes, nonce: bytes,
               client_public: bytes) -> TenantConfig:
        """Check a handshake credential; raises HandshakeError on failure.

        Unknown tenant and bad credential raise the *same* message shape,
        so a probing client cannot distinguish "no such tenant" from
        "wrong secret" (no tenant-roster oracle).
        """
        tenant = self._tenants.get(tenant_id)
        if tenant is not None:
            body = (
                _AUTH_CONTEXT
                + len(tenant_id).to_bytes(1, "little")
                + tenant_id.encode("utf-8")
                + nonce
                + client_public
            )
            if backend.mac_verify(tenant.resolved_secret, body, credential):
                return tenant
        raise HandshakeError(
            f"tenant authentication failed for {tenant_id!r}")
