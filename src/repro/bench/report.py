"""Plain-text tables in the shape the paper reports its figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def format_ops(value: float) -> str:
    """Human throughput formatting: 1.23M, 456k, 789."""
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.0f}k"
    return f"{value:.0f}"


@dataclass
class ExperimentResult:
    """One table/figure reproduction: rows of measurements plus notes."""

    exp_id: str
    title: str
    columns: list
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list:
        return [row.get(name) for row in self.rows]

    def where(self, **filters: Any) -> list:
        """Rows matching all given column=value filters."""
        return [
            row for row in self.rows
            if all(row.get(k) == v for k, v in filters.items())
        ]

    def throughput(self, **filters: Any) -> float:
        """The 'throughput ops/s' of the single row matching the filters."""
        rows = self.where(**filters)
        if len(rows) != 1:
            raise KeyError(f"{len(rows)} rows match {filters}")
        return rows[0]["throughput ops/s"]

    def render(self) -> str:
        header = [str(c) for c in self.columns]
        body = []
        for row in self.rows:
            rendered = []
            for col in self.columns:
                value = row.get(col, "")
                if isinstance(value, float):
                    if col.endswith("ops/s") or "throughput" in col:
                        rendered.append(format_ops(value))
                    else:
                        rendered.append(f"{value:.3g}")
                else:
                    rendered.append(str(value))
            body.append(rendered)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
            "  ".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
