"""One experiment per table/figure of the paper's evaluation (Section VI).

Every function builds the schemes at a stated scale (DESIGN.md Section 4.6),
replays the paper's workload grid, and returns an
:class:`~repro.bench.report.ExperimentResult` whose rows mirror the figure's
series.  Shape expectations (who wins, by what factor, where crossovers sit)
are asserted by the corresponding module under ``benchmarks/``; measured-vs-
paper numbers are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bench.harness import (
    DEFAULT_SCALE,
    PAPER_EPC_BYTES,
    PAPER_KEYSPACE,
    build_aria,
    build_aria_nocache,
    build_baseline,
    build_plain,
    build_shieldstore,
    load_and_run,
    scaled_keys,
    warm_store,
    scaled_platform,
)
from repro.bench.report import ExperimentResult
from repro.sgx.costs import SgxPlatform
from repro.workloads.etc import EtcWorkload
from repro.workloads.ycsb import YcsbWorkload

MB = 1024 * 1024


# ---------------------------------------------------------------------------
# Table I - qualitative + measured comparison of the design schemes
# ---------------------------------------------------------------------------

def table1_comparison(scale: int = DEFAULT_SCALE) -> ExperimentResult:
    """Table I: protection granularity, hotness-awareness, index support,
    and *measured* EPC occupation (scaled back to paper units)."""
    result = ExperimentResult(
        exp_id="Table I",
        title="Comparison between different designs",
        columns=["scheme", "granularity", "hotness", "indexes",
                 "epc_occupation", "epc_bytes_paper_equiv_MB"],
    )
    n_keys = scaled_keys(scale)
    platform = scaled_platform(scale)

    shield = build_shieldstore(n_keys=n_keys, platform=platform)
    shield_epc = sum(shield.epc_report().values())
    result.add_row(
        scheme="ShieldStore", granularity="hash bucket", hotness="unaware",
        indexes="hash", epc_occupation="low",
        epc_bytes_paper_equiv_MB=round(shield_epc * scale / MB, 1),
    )

    nocache = build_aria_nocache(n_keys=n_keys, platform=platform)
    nocache_epc = sum(nocache.epc_report().values())
    result.add_row(
        scheme="Aria w/o Cache", granularity="page (4 KB)", hotness="aware",
        indexes="hash/tree", epc_occupation="medium",
        epc_bytes_paper_equiv_MB=round(nocache_epc * scale / MB, 1),
    )

    aria = build_aria(n_keys=n_keys, platform=platform)
    aria_epc = sum(aria.epc_report().values())
    result.add_row(
        scheme="Aria", granularity="KV pair", hotness="aware",
        indexes="hash/tree", epc_occupation="low",
        epc_bytes_paper_equiv_MB=round(aria_epc * scale / MB, 1),
    )
    result.note(f"scale 1/{scale}: {n_keys} keys, "
                f"{platform.epc_bytes // 1024} KB EPC")
    return result


# ---------------------------------------------------------------------------
# Fig 2 - motivation: the three design schemes across keyspace sizes
# ---------------------------------------------------------------------------

def fig2_motivation(scale: int = 256, n_ops: int = 4000,
                    keyspace_mb: Optional[Iterable[int]] = None,
                    ) -> ExperimentResult:
    """Fig 2: ShieldStore vs Aria-w/o-Cache vs Baseline, skew, RD50, 16 B/16 B.

    Keyspace size = total key bytes (16 B keys); the paper sweeps 4-128 MB
    against a 91 MB EPC.  Page-swap counts accompany the paging schemes.
    """
    result = ExperimentResult(
        exp_id="Fig 2",
        title="Performance of different design schemes (skew, RD50, 16B/16B)",
        columns=["keyspace_mb", "scheme", "throughput ops/s", "page_swaps"],
    )
    sizes = list(keyspace_mb) if keyspace_mb is not None \
        else [4, 8, 16, 24, 32, 64, 119, 128]
    builders = {
        "shieldstore": build_shieldstore,
        "aria_nocache": build_aria_nocache,
        "baseline": build_baseline,
    }
    for size_mb in sizes:
        n_keys = max(64, size_mb * MB // scale // 16)
        for scheme, builder in builders.items():
            platform = scaled_platform(scale)
            store = builder(n_keys=n_keys, platform=platform)
            workload = YcsbWorkload(
                n_keys=n_keys, read_ratio=0.50, value_size=16,
                distribution="zipfian", seed=size_mb,
            )
            run = load_and_run(store, workload, n_ops, scheme=scheme)
            result.add_row(
                keyspace_mb=size_mb, scheme=scheme,
                **{"throughput ops/s": run.throughput},
                page_swaps=run.events.get("page_swap", 0),
            )
    result.note(f"scale 1/{scale}, {n_ops} ops per point")
    return result


# ---------------------------------------------------------------------------
# Fig 9 / Fig 10 - YCSB grid with hash and tree indexes
# ---------------------------------------------------------------------------

def _ycsb_grid(index: str, schemes: dict, scale: int, n_ops: int,
               exp_id: str, title: str) -> ExperimentResult:
    result = ExperimentResult(
        exp_id=exp_id, title=title,
        columns=["distribution", "read_ratio", "value_size", "scheme",
                 "throughput ops/s", "hit_ratio"],
    )
    n_keys = scaled_keys(scale)
    for value_size in (16, 128, 512):
        for scheme, builder in schemes.items():
            platform = scaled_platform(scale)
            store = builder(n_keys=n_keys, platform=platform)
            loader = YcsbWorkload(n_keys=n_keys, value_size=value_size)
            store.load(loader.load_items())
            warm_store(store, loader)
            for distribution in ("zipfian", "uniform"):
                for read_ratio in (0.50, 0.95, 1.00):
                    workload = YcsbWorkload(
                        n_keys=n_keys, read_ratio=read_ratio,
                        value_size=value_size, distribution=distribution,
                        seed=int(read_ratio * 100),
                    )
                    if hasattr(store, "counters") and \
                            hasattr(store.counters, "reset_stats"):
                        store.counters.reset_stats()
                    run_result = _run(store, workload, n_ops, scheme)
                    result.add_row(
                        distribution=distribution,
                        read_ratio=f"RD{int(read_ratio * 100)}",
                        value_size=value_size,
                        scheme=scheme,
                        **{"throughput ops/s": run_result.throughput},
                        hit_ratio=(round(run_result.hit_ratio, 3)
                                   if run_result.hit_ratio is not None else ""),
                    )
    result.note(f"scale 1/{scale}: {n_keys} keys, {n_ops} ops per cell")
    return result


def _run(store, workload, n_ops, scheme):
    from repro.bench.harness import run_operations

    return run_operations(store, workload.operations(n_ops), scheme=scheme)


def fig9_ycsb_hash(scale: int = DEFAULT_SCALE,
                   n_ops: int = 5000) -> ExperimentResult:
    """Fig 9: hash-table index grid (Aria-H vs the other schemes)."""
    schemes = {
        "aria": build_aria,
        "shieldstore": build_shieldstore,
        "aria_nocache": build_aria_nocache,
        "baseline": build_baseline,
    }
    return _ycsb_grid("hash", schemes, scale, n_ops, "Fig 9",
                      "YCSB with hash table-based index")


def fig10_ycsb_tree(scale: int = 2 * DEFAULT_SCALE,
                    n_ops: int = 2000) -> ExperimentResult:
    """Fig 10: B-tree index grid (Aria-T vs tree baselines).

    The in-enclave Baseline is approximated by the paged in-enclave store
    (hash-chained); DESIGN.md records the substitution.
    """
    schemes = {
        "aria": lambda **kw: build_aria(index="btree", **kw),
        "aria_nocache": lambda **kw: build_aria_nocache(index="btree", **kw),
        "baseline": build_baseline,
    }
    return _ycsb_grid("btree", schemes, scale, n_ops, "Fig 10",
                      "YCSB with B-tree-based index")


# ---------------------------------------------------------------------------
# Fig 11 - Facebook ETC workload
# ---------------------------------------------------------------------------

def fig11_etc(scale: int = DEFAULT_SCALE, n_ops: int = 5000,
              tree_scale: Optional[int] = None) -> ExperimentResult:
    """Fig 11: ETC pool, hash and tree panels, RD 0/50/95/100."""
    result = ExperimentResult(
        exp_id="Fig 11", title="Throughput with Facebook ETC",
        columns=["panel", "read_ratio", "scheme", "throughput ops/s"],
    )
    tree_scale = tree_scale or 2 * scale
    panels = {
        "hashtable": (scale, {
            "aria": lambda **kw: build_aria(value_hint=192, **kw),
            "shieldstore": build_shieldstore,
            "aria_nocache": build_aria_nocache,
        }),
        "tree": (tree_scale, {
            "aria": lambda **kw: build_aria(index="btree", value_hint=192,
                                            **kw),
            "aria_nocache": lambda **kw: build_aria_nocache(index="btree",
                                                            **kw),
            "baseline": build_baseline,
        }),
    }
    for panel, (panel_scale, schemes) in panels.items():
        n_keys = scaled_keys(panel_scale)
        for scheme, builder in schemes.items():
            store = builder(n_keys=n_keys,
                            platform=scaled_platform(panel_scale))
            store.load(EtcWorkload(n_keys=n_keys).load_items())
            warm_store(store, EtcWorkload(n_keys=n_keys))
            for read_ratio in (0.0, 0.50, 0.95, 1.00):
                workload = EtcWorkload(n_keys=n_keys, read_ratio=read_ratio,
                                       seed=int(read_ratio * 100))
                if hasattr(store, "counters") and \
                        hasattr(store.counters, "reset_stats"):
                    store.counters.reset_stats()
                ops = n_ops if panel == "hashtable" else max(500, n_ops // 2)
                run_result = _run(store, workload, ops, scheme)
                result.add_row(
                    panel=panel, read_ratio=f"RD{int(read_ratio * 100)}",
                    scheme=scheme,
                    **{"throughput ops/s": run_result.throughput},
                )
    result.note(f"hash scale 1/{scale}, tree scale 1/{tree_scale}")
    return result


# ---------------------------------------------------------------------------
# Fig 12 - optimization ablation + the overhead of SGX
# ---------------------------------------------------------------------------

def fig12_ablation(scale: int = DEFAULT_SCALE,
                   n_ops: int = 4000) -> ExperimentResult:
    """Fig 12: AriaBase -> +HeapAlloc -> +PIN -> +FIFO -> Aria, vs
    ShieldStore, Aria w/o Cache, and Aria w/o SGX (ETC workload)."""
    result = ExperimentResult(
        exp_id="Fig 12",
        title="Effects of optimizations and the overhead of SGX (ETC)",
        columns=["read_ratio", "scheme", "throughput ops/s"],
    )
    n_keys = scaled_keys(scale)
    variants = {
        "shieldstore": lambda platform: build_shieldstore(
            n_keys=n_keys, platform=platform),
        "aria_base": lambda platform: build_aria(
            n_keys=n_keys, platform=platform, allocator="ocall",
            policy="lru", pin_levels=0, stop_swap_enabled=False,
            value_hint=192),
        "+heapalloc": lambda platform: build_aria(
            n_keys=n_keys, platform=platform, allocator="heap",
            policy="lru", pin_levels=0, stop_swap_enabled=False,
            value_hint=192),
        "+pin": lambda platform: build_aria(
            n_keys=n_keys, platform=platform, allocator="heap",
            policy="lru", pin_levels=3, stop_swap_enabled=False,
            value_hint=192),
        "+fifo": lambda platform: build_aria(
            n_keys=n_keys, platform=platform, allocator="heap",
            policy="fifo", pin_levels=0, stop_swap_enabled=False,
            value_hint=192),
        "aria": lambda platform: build_aria(n_keys=n_keys, platform=platform,
                                            value_hint=192),
        "aria_nocache": lambda platform: build_aria_nocache(
            n_keys=n_keys, platform=platform),
        # "Aria w/o SGX" keeps all of Aria's own protection work (crypto,
        # MT, Secure Cache logic) but removes the *hardware* overheads: the
        # MEE latency premium on EPC accesses and the enclave boundary
        # costs.  The residual gap to full Aria is the paper's ~25.7 %
        # "protection overhead of SGX" (Section VI-C).
        "aria_wo_sgx": lambda platform: build_aria(
            n_keys=n_keys, value_hint=192,
            platform=SgxPlatform(
                epc_bytes=platform.epc_bytes,
                costs=platform.costs.scaled(
                    epc_access=platform.costs.untrusted_access,
                    ecall=0.0, ocall=0.0,
                ),
            ),
        ),
        # The fully unprotected store, for context (not a paper series).
        "plain_kv": lambda platform: build_plain(
            n_keys=n_keys, platform=platform),
    }
    for scheme, factory in variants.items():
        store = factory(scaled_platform(scale))
        store.load(EtcWorkload(n_keys=n_keys).load_items())
        warm_store(store, EtcWorkload(n_keys=n_keys))
        for read_ratio in (0.0, 0.50, 0.95, 1.00):
            workload = EtcWorkload(n_keys=n_keys, read_ratio=read_ratio,
                                   seed=int(read_ratio * 100))
            if hasattr(store, "counters") and \
                    hasattr(store.counters, "reset_stats"):
                store.counters.reset_stats()
            run_result = _run(store, workload, n_ops, scheme)
            result.add_row(
                read_ratio=f"RD{int(read_ratio * 100)}", scheme=scheme,
                **{"throughput ops/s": run_result.throughput},
            )
    result.note(f"scale 1/{scale}: {n_keys} keys, {n_ops} ops per cell")
    return result


# ---------------------------------------------------------------------------
# Fig 13 - keyspace sweep 119 MB .. 2 GB
# ---------------------------------------------------------------------------

def fig13_keyspace(scale: int = 2048, n_ops: int = 3000,
                   keyspace_mb: Optional[Iterable[int]] = None,
                   ) -> ExperimentResult:
    """Fig 13: throughput as the keyspace grows past the EPC by 22x.

    Panels: (a) hashtable uniform, (b) hashtable skew, (c) hashtable ETC —
    all at RD95 with 16-byte values/keys.
    """
    result = ExperimentResult(
        exp_id="Fig 13", title="Performance on various keyspace size (RD95)",
        columns=["panel", "keyspace_mb", "scheme", "throughput ops/s"],
    )
    sizes = list(keyspace_mb) if keyspace_mb is not None \
        else [119, 256, 512, 1024, 2048]
    builders = {
        "aria": build_aria,
        "shieldstore": build_shieldstore,
        "aria_nocache": build_aria_nocache,
    }
    for size_mb in sizes:
        n_keys = max(64, size_mb * MB // scale // 16)
        for panel in ("uniform", "skew", "etc"):
            for scheme, builder in builders.items():
                kwargs = {}
                if scheme == "aria":
                    # ETC records are far bigger than 16 B: size the
                    # allocator-bitmap estimate accordingly so the cache
                    # budget leaves room.
                    kwargs["value_hint"] = 192 if panel == "etc" else 16
                store = builder(n_keys=n_keys, platform=scaled_platform(scale),
                                **kwargs)
                if panel == "etc":
                    workload = EtcWorkload(n_keys=n_keys, read_ratio=0.95,
                                           seed=size_mb)
                else:
                    workload = YcsbWorkload(
                        n_keys=n_keys, read_ratio=0.95, value_size=16,
                        distribution="zipfian" if panel == "skew" else "uniform",
                        seed=size_mb,
                    )
                run = load_and_run(store, workload, n_ops, scheme=scheme)
                result.add_row(panel=panel, keyspace_mb=size_mb,
                               scheme=scheme,
                               **{"throughput ops/s": run.throughput})
    result.note(f"scale 1/{scale}, {n_ops} ops per point")
    return result


# ---------------------------------------------------------------------------
# Fig 14 - Secure Cache size sensitivity
# ---------------------------------------------------------------------------

def fig14_cache_size(scale: int = DEFAULT_SCALE,
                     n_ops: int = 4000) -> ExperimentResult:
    """Fig 14: Aria-H throughput as the Secure Cache shrinks 100 % -> 16 %,
    at 10 M- and 30 M-key (scaled) keyspaces, vs fixed ShieldStore lines."""
    result = ExperimentResult(
        exp_id="Fig 14",
        title="Performance on different size of Secure Cache (skew RD95)",
        columns=["keyspace", "cache_fraction", "scheme", "throughput ops/s",
                 "hit_ratio"],
    )
    fractions = (1.00, 0.50, 0.33, 0.25, 0.20, 0.16)
    for keyspace_label, keyspace in (("10M", PAPER_KEYSPACE),
                                     ("30M", 3 * PAPER_KEYSPACE)):
        n_keys = scaled_keys(scale, keyspace)
        for fraction in fractions:
            store = build_aria(n_keys=n_keys, platform=scaled_platform(scale),
                               cache_fraction=fraction)
            workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95,
                                    value_size=16, distribution="zipfian")
            run = load_and_run(store, workload, n_ops, scheme="aria")
            result.add_row(
                keyspace=keyspace_label, cache_fraction=fraction,
                scheme="aria", **{"throughput ops/s": run.throughput},
                hit_ratio=(round(run.hit_ratio, 3)
                           if run.hit_ratio is not None else ""),
            )
        shield = build_shieldstore(n_keys=n_keys,
                                   platform=scaled_platform(scale))
        workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95,
                                value_size=16, distribution="zipfian")
        run = load_and_run(shield, workload, n_ops, scheme="shieldstore")
        result.add_row(keyspace=keyspace_label, cache_fraction="n/a",
                       scheme="shieldstore",
                       **{"throughput ops/s": run.throughput}, hit_ratio="")
    result.note(f"scale 1/{scale}, {n_ops} ops per point")
    return result


# ---------------------------------------------------------------------------
# Fig 15 - N-ary Merkle tree branch factor
# ---------------------------------------------------------------------------

def fig15_arity(scale: int = DEFAULT_SCALE, n_ops: int = 4000,
                arities: Iterable[int] = (2, 4, 8, 10, 12, 14, 16),
                ) -> ExperimentResult:
    """Fig 15: throughput vs Merkle arity, uniform and skewed (RD95, 16 B)."""
    result = ExperimentResult(
        exp_id="Fig 15",
        title="Performance on different branch number of the MT (RD95, 16B)",
        columns=["distribution", "arity", "throughput ops/s", "hit_ratio"],
    )
    n_keys = scaled_keys(scale)
    for distribution in ("zipfian", "uniform"):
        for arity in arities:
            # At this figure's operating point the paper's own 70 %
            # stop-swap threshold separates the two series cleanly (zipf
            # hit ratios sit above it at every arity, uniform below), so we
            # use it as-is rather than the scale-adjusted harness default.
            store = build_aria(n_keys=n_keys, platform=scaled_platform(scale),
                               arity=arity, stop_swap_threshold=0.70,
                               stop_swap_patience=2)
            workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95,
                                    value_size=16, distribution=distribution)
            # A warmup covering two full stop-swap windows (patience 2) lets
            # the uniform series settle into its steady (pinning-only)
            # regime before measurement starts.
            run = load_and_run(store, workload, n_ops, scheme="aria",
                               warmup_ops=10_000)
            result.add_row(
                distribution=distribution, arity=arity,
                **{"throughput ops/s": run.throughput},
                hit_ratio=(round(run.hit_ratio, 3)
                           if run.hit_ratio is not None else ""),
            )
    result.note(f"scale 1/{scale}: {n_keys} keys, one Merkle tree")
    return result


# ---------------------------------------------------------------------------
# Fig 16a - multi-tenant / Fig 16b - skewness sweep
# ---------------------------------------------------------------------------

def fig16a_multitenant(scale: int = 1024, n_ops: int = 3000,
                       ) -> ExperimentResult:
    """Fig 16(a): per-tenant throughput when the EPC is split 2 / 4 ways.

    Tenants run in separate enclaves (the paper's multi-process design), so
    one tenant's store with EPC/k models each of k identical tenants; the
    reported figure is the average per-tenant throughput.
    """
    result = ExperimentResult(
        exp_id="Fig 16a",
        title="Multi-tenant throughput (RD95, 16B, skew 0.99)",
        columns=["tenants", "keyspace", "scheme", "throughput ops/s"],
    )
    for tenants in (2, 4):
        for keyspace_millions in (10, 30, 50):
            n_keys = scaled_keys(scale, keyspace_millions * 1_000_000)
            platform = scaled_platform(scale,
                                       epc_bytes=PAPER_EPC_BYTES // tenants)
            for scheme, builder in (("aria", build_aria),
                                    ("shieldstore", build_shieldstore)):
                store = builder(n_keys=n_keys, platform=platform)
                workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95,
                                        value_size=16,
                                        distribution="zipfian")
                run = load_and_run(store, workload, n_ops, scheme=scheme)
                result.add_row(tenants=tenants,
                               keyspace=f"{keyspace_millions}M",
                               scheme=scheme,
                               **{"throughput ops/s": run.throughput})
    result.note(f"scale 1/{scale}; EPC split per tenant")
    return result


def fig16b_skewness(scale: int = DEFAULT_SCALE, n_ops: int = 4000,
                    skews: Iterable[float] = (0.8, 0.9, 0.95, 0.99, 1.0001,
                                              1.2)) -> ExperimentResult:
    """Fig 16(b): Aria's advantage vs ShieldStore as the skew rises."""
    result = ExperimentResult(
        exp_id="Fig 16b",
        title="Performance on different skewness (RD95, 16B, 10M keyspace)",
        columns=["skewness", "scheme", "throughput ops/s", "hit_ratio"],
    )
    n_keys = scaled_keys(scale)
    for scheme, builder in (("aria", build_aria),
                            ("shieldstore", build_shieldstore)):
        for skew in skews:
            # Fresh store per point: stop-swap decisions at one skew must
            # not leak into another.
            store = builder(n_keys=n_keys, platform=scaled_platform(scale))
            workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95,
                                    value_size=16, distribution="zipfian",
                                    skew=skew, seed=int(skew * 100))
            run = load_and_run(store, workload, n_ops, scheme=scheme)
            result.add_row(
                skewness=round(skew, 4), scheme=scheme,
                **{"throughput ops/s": run.throughput},
                hit_ratio=(round(run.hit_ratio, 3)
                           if run.hit_ratio is not None else ""),
            )
    result.note(f"scale 1/{scale}: {n_keys} keys")
    return result


# ---------------------------------------------------------------------------
# Extension: scrambled-vs-contiguous zipf ablation (address-based MT locality)
# ---------------------------------------------------------------------------

def ablation_zipf_locality(scale: int = DEFAULT_SCALE,
                           n_ops: int = 4000) -> ExperimentResult:
    """Extra ablation: contiguous vs FNV-scattered hot keys.

    Section IV claims the address-ordered MT layout benefits locality; scattering
    hot keys (YCSB's scrambled zipfian) degrades both the Secure Cache's
    node-level coverage and hardware paging's page-level coverage — much
    more so for the 4 KB pages of Aria w/o Cache.
    """
    result = ExperimentResult(
        exp_id="Ablation A1",
        title="Hot-key locality: contiguous vs scrambled zipfian (RD95, 16B)",
        columns=["distribution", "scheme", "throughput ops/s", "hit_ratio"],
    )
    n_keys = scaled_keys(scale)
    for distribution in ("zipfian", "scrambled"):
        for scheme, builder in (("aria", build_aria),
                                ("aria_nocache", build_aria_nocache)):
            store = builder(n_keys=n_keys, platform=scaled_platform(scale))
            workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95,
                                    value_size=16, distribution=distribution)
            run = load_and_run(store, workload, n_ops, scheme=scheme)
            result.add_row(
                distribution=distribution, scheme=scheme,
                **{"throughput ops/s": run.throughput},
                hit_ratio=(round(run.hit_ratio, 3)
                           if run.hit_ratio is not None else ""),
            )
    return result


# ---------------------------------------------------------------------------
# Extension: the semantic-aware swap optimizations of Section IV-C
# ---------------------------------------------------------------------------

def ablation_swap_semantics(scale: int = DEFAULT_SCALE,
                            n_ops: int = 4000) -> ExperimentResult:
    """Extra ablation: re-adding the costs SGX paging forces (Section IV-C).

    ``+encrypt``: swap-out pays encryption; ``+writeback``: clean victims
    are written back anyway (EWB semantics).  A small cache under skew makes
    eviction traffic visible.
    """
    result = ExperimentResult(
        exp_id="Ablation A2",
        title="Semantic-aware swap optimizations (skew RD50, small cache)",
        columns=["variant", "throughput ops/s", "writebacks",
                 "clean_discards"],
    )
    n_keys = scaled_keys(scale)
    variants = {
        "aria": {},
        "+encrypt_on_swap": {"swap_encrypt": True},
        "+writeback_clean": {"writeback_clean": True},
        "+both (EWB-like)": {"swap_encrypt": True, "writeback_clean": True},
    }
    for name, overrides in variants.items():
        store = build_aria(n_keys=n_keys, platform=scaled_platform(scale),
                           cache_fraction=0.2, stop_swap_enabled=False,
                           **overrides)
        workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.50,
                                value_size=16, distribution="zipfian")
        run = load_and_run(store, workload, n_ops, scheme=name)
        stats = store.cache_stats()
        result.add_row(variant=name,
                       **{"throughput ops/s": run.throughput},
                       writebacks=stats["writebacks"],
                       clean_discards=stats["clean_discards"])
    return result




# ---------------------------------------------------------------------------
# Extension: hotset drift (the workload-spike pattern of Bodik et al.)
# ---------------------------------------------------------------------------

def ablation_hotset_drift(scale: int = DEFAULT_SCALE,
                          n_ops: int = 8000) -> ExperimentResult:
    """Extra ablation: the hot set moves (the paper evaluates stationary
    distributions only).  After each drift the Secure Cache holds
    yesterday's celebrities and must re-converge; ShieldStore is
    drift-blind."""
    from repro.workloads.trace import DriftingWorkload

    result = ExperimentResult(
        exp_id="Ablation A6",
        title="Hotset drift: throughput vs drift period (skew RD95, 16B)",
        columns=["drift_period", "scheme", "throughput ops/s", "hit_ratio"],
    )
    n_keys = scaled_keys(scale)
    for period in (None, 8000, 2000, 500):
        label = "stationary" if period is None else str(period)
        for scheme, builder in (("aria", build_aria),
                                ("shieldstore", build_shieldstore)):
            store = builder(n_keys=n_keys, platform=scaled_platform(scale))
            workload = DriftingWorkload(n_keys=n_keys, read_ratio=0.95,
                                        value_size=16, drift_period=period,
                                        seed=7)
            run = load_and_run(store, workload, n_ops, scheme=scheme)
            result.add_row(
                drift_period=label, scheme=scheme,
                **{"throughput ops/s": run.throughput},
                hit_ratio=(round(run.hit_ratio, 3)
                           if run.hit_ratio is not None else ""),
            )
    return result


# ---------------------------------------------------------------------------
# Extension: frequency obfuscation (Section VII leakage mitigation sketch)
# ---------------------------------------------------------------------------

def ablation_obfuscation(scale: int = DEFAULT_SCALE,
                         n_ops: int = 3000) -> ExperimentResult:
    """Extra ablation: the price of blurring key-access frequencies with
    dummy bucket walks (Section VII defers mitigation to future work)."""
    result = ExperimentResult(
        exp_id="Ablation A7",
        title="Frequency obfuscation: dummy bucket walks per Get "
              "(skew RD95, 16B)",
        columns=["dummy_reads", "scheme", "throughput ops/s"],
    )
    n_keys = scaled_keys(scale)
    workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95, value_size=16,
                            distribution="zipfian")
    for dummies in (0, 1, 2, 4, 8):
        store = build_aria(n_keys=n_keys, platform=scaled_platform(scale),
                           dummy_bucket_reads=dummies)
        run = load_and_run(store, workload, n_ops, scheme="aria")
        result.add_row(dummy_reads=dummies, scheme="aria",
                       **{"throughput ops/s": run.throughput})
    shield = build_shieldstore(n_keys=n_keys, platform=scaled_platform(scale))
    run = load_and_run(shield, workload, n_ops, scheme="shieldstore")
    result.add_row(dummy_reads="n/a", scheme="shieldstore",
                   **{"throughput ops/s": run.throughput})
    return result


# ---------------------------------------------------------------------------
# Extension: ECALL amortization via request batching (Section II-A)
# ---------------------------------------------------------------------------

def ablation_server_batching(scale: int = DEFAULT_SCALE,
                             n_requests: int = 4096) -> ExperimentResult:
    """Extra ablation: the client-server ECALL tax and how batching
    amortizes it (the HotCalls-style mitigation)."""
    from repro.server import protocol
    from repro.server.server import AriaClient, AriaServer

    result = ExperimentResult(
        exp_id="Ablation A3",
        title="ECALL amortization via request batching (zipf RD95, 16B)",
        columns=["batch_size", "throughput ops/s", "ecalls"],
    )
    n_keys = 4096
    workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95, value_size=16,
                            distribution="zipfian")
    for batch_size in (1, 2, 4, 8, 16, 32, 64):
        store = build_aria(n_keys=n_keys, platform=scaled_platform(scale))
        store.load(workload.load_items())
        server = AriaServer(store)
        requests = [
            protocol.get(op.key) if op.kind == "get"
            else protocol.put(op.key, op.value)
            for op in workload.operations(n_requests)
        ]
        store.enclave.meter.reset()
        if batch_size == 1:
            for request in requests:
                server.handle(request.encode())
        else:
            AriaClient(server, batch_size=batch_size).pipeline(requests)
        cycles = store.enclave.meter.cycles
        result.add_row(
            batch_size=batch_size,
            **{"throughput ops/s":
               store.enclave.platform.cpu_hz * n_requests / cycles},
            ecalls=store.enclave.meter.events["ecall"],
        )
    return result


# ---------------------------------------------------------------------------
# Extension: per-op latency percentiles
# ---------------------------------------------------------------------------

def ablation_latency(scale: int = DEFAULT_SCALE,
                     n_ops: int = 4000) -> ExperimentResult:
    """Extra ablation: Secure Cache trades the mean for the tail — a view
    the paper's throughput-only figures omit."""
    from repro.bench.harness import run_operations, warm_store as _warm

    result = ExperimentResult(
        exp_id="Ablation A5",
        title="Per-op simulated-cycle latency percentiles (skew RD95, 16B)",
        columns=["scheme", "p50", "p90", "p99", "p99.9"],
    )
    runs = {}
    n_keys = scaled_keys(scale)
    for scheme, builder in (("aria", build_aria),
                            ("shieldstore", build_shieldstore)):
        store = builder(n_keys=n_keys, platform=scaled_platform(scale))
        workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95,
                                value_size=16, distribution="zipfian")
        store.load(workload.load_items())
        _warm(store, workload)
        run = run_operations(store, workload.operations(n_ops),
                             scheme=scheme, collect_latencies=True)
        runs[scheme] = run
        summary = run.latency_summary()
        result.add_row(scheme=scheme, p50=summary[50], p90=summary[90],
                       p99=summary[99], **{"p99.9": summary[99.9]})
    result.runs = runs
    return result


# ---------------------------------------------------------------------------
# Extension: cluster serving layer (repro.cluster) — Fig 16a generalized
# ---------------------------------------------------------------------------

def _as_requests(operations):
    """Convert a workload op stream into wire-protocol requests."""
    from repro.server import protocol

    return [
        protocol.get(op.key) if op.kind == "get"
        else protocol.put(op.key, op.value)
        for op in operations
    ]


def _drive_cluster(coordinator, requests, frame_ops: int = 256) -> None:
    """Feed requests through the coordinator in frame-sized deliveries.

    Mirrors how the netserver delivers traffic (one ``execute`` per wire
    frame), which also gives an attached balancer its periodic look.
    """
    for start in range(0, len(requests), frame_ops):
        coordinator.execute(requests[start:start + frame_ops])


def cluster_scaling(scale: int = 2048, n_ops: int = 3000,
                    shard_counts: Iterable[int] = (1, 2, 4),
                    batch_window: int = 32,
                    warm_ops: int = 1500) -> ExperimentResult:
    """Cluster throughput vs shard count, against N independent stores.

    Extends Fig 16a: instead of measuring isolated per-tenant stores, the
    ``cluster`` rows route one uniform RD95 stream through the consistent-
    hash front door with per-shard batch accumulation; the ``independent``
    rows drive the *same* shards, with the same key partition, directly
    through ``flush_batch`` with perfectly full batches — the no-serving-
    layer ideal.  The gap between the two is the routing overhead
    (partial batches at flush boundaries; the ring itself is untrusted
    front-end work and costs no enclave cycles).  Aggregate throughput is
    ``total_ops / max(per-shard cycles)``: shards are parallel enclaves,
    the straggler sets wall-clock.
    """
    from repro.cluster import ClusterStats, build_cluster

    result = ExperimentResult(
        exp_id="Cluster 1",
        title="Cluster scaling: shared-EPC shards vs independent stores "
              "(uniform RD95, 16B)",
        columns=["shards", "mode", "throughput ops/s", "ecalls",
                 "parallel_efficiency"],
    )
    n_keys = scaled_keys(scale)
    workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95, value_size=16,
                            distribution="uniform")
    warm = YcsbWorkload(n_keys=n_keys, read_ratio=0.95, value_size=16,
                        distribution="uniform", seed=workload.seed + 7919)
    for n_shards in shard_counts:
        for mode in ("cluster", "independent"):
            coordinator = build_cluster(
                n_shards, n_keys=n_keys, scale=scale,
                batch_window=batch_window,
            )
            coordinator.load(workload.load_items())
            requests = _as_requests(workload.operations(n_ops))
            warm_requests = _as_requests(warm.operations(warm_ops))
            if mode == "cluster":
                _drive_cluster(coordinator, warm_requests)
                stats = coordinator.stats()
                _drive_cluster(coordinator, requests)
            else:
                # The same shards and the same ring partition, but each
                # shard served directly by its own clients with full
                # batches: N independent stores, no front door.
                def drive_direct(reqs):
                    per_shard = {sid: [] for sid in coordinator.shards}
                    for request in reqs:
                        per_shard[coordinator.ring.route(request.key)] \
                            .append(request)
                    for shard_id, shard_requests in per_shard.items():
                        shard = coordinator.shards[shard_id]
                        for start in range(0, len(shard_requests),
                                           batch_window):
                            shard.server.flush_batch(
                                shard_requests[start:start + batch_window]
                            )

                drive_direct(warm_requests)
                stats = ClusterStats(coordinator.shard_list())
                drive_direct(requests)
            report = stats.report()
            result.add_row(
                shards=n_shards, mode=mode,
                **{"throughput ops/s": report["cluster"]
                   ["aggregate_throughput"]},
                ecalls=report["cluster"]["ecalls"],
                parallel_efficiency=round(
                    report["cluster"]["parallel_efficiency"], 3),
            )
    result.note(f"scale 1/{scale}: {n_keys} keys, EPC split per shard, "
                f"batch window {batch_window}")
    return result


def cluster_rebalance(scale: int = 2048, n_ops: int = 3000,
                      warm_ops: int = 4000,
                      batch_window: int = 32) -> ExperimentResult:
    """Hot-shard rebalancing under zipf 0.99 with a deliberately skewed ring.

    Three configurations of a 4-shard cluster:

    * ``balanced``          — even vnode spread (the healthy reference);
    * ``skewed``            — one shard owns ~90 % of the ring, so the
                              zipfian head lands on it and it straggles;
    * ``skewed+balancer``   — same sick ring, but the
                              :class:`~repro.cluster.balancer
                              .HotShardBalancer` watches per-shard cycle
                              windows and migrates key ranges (vnode moves
                              + re-Put through the trusted path, cycles
                              charged) during the warm phase.

    Throughput is measured *after* warm/convergence on a fresh meter
    window, so the balancer rows show steady-state payback, not the
    migration bill (which is itself reported in the keys_moved column).
    """
    from repro.cluster import (
        ClusterCoordinator,
        HashRing,
        HotShardBalancer,
        build_shards,
    )

    result = ExperimentResult(
        exp_id="Cluster 2",
        title="Hot-shard rebalancing (zipf 0.99 RD95, 4 shards, skewed "
              "ring)",
        columns=["config", "throughput ops/s", "hot_share", "keys_moved",
                 "rounds"],
    )
    n_keys = scaled_keys(scale)
    n_shards = 4
    workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95, value_size=16,
                            distribution="zipfian", skew=0.99)
    warm = YcsbWorkload(n_keys=n_keys, read_ratio=0.95, value_size=16,
                        distribution="zipfian", skew=0.99,
                        seed=workload.seed + 7919)
    skewed_vnodes = {"shard-0": 116, "shard-1": 4, "shard-2": 4,
                     "shard-3": 4}
    for config, with_balancer in (
        ("balanced", False),
        ("skewed", False),
        ("skewed+balancer", True),
    ):
        shards = build_shards(
            n_shards,
            cluster_epc_bytes=max(4096 * n_shards,
                                  PAPER_EPC_BYTES // scale),
            n_keys=n_keys,
        )
        ring = HashRing(
            [s.shard_id for s in shards],
            vnodes=128 if config == "balanced" else skewed_vnodes,
        )
        coordinator = ClusterCoordinator(shards, ring=ring,
                                         batch_window=batch_window)
        balancer = None
        if with_balancer:
            balancer = HotShardBalancer(coordinator, check_every=512,
                                        imbalance_threshold=1.3,
                                        min_window_ops=256)
            coordinator.attach_balancer(balancer)
        coordinator.load(workload.load_items())
        _drive_cluster(coordinator, _as_requests(warm.operations(warm_ops)))
        stats = coordinator.stats()
        _drive_cluster(coordinator, _as_requests(workload.operations(n_ops)))
        report = stats.report()
        result.add_row(
            config=config,
            **{"throughput ops/s": report["cluster"]
               ["aggregate_throughput"]},
            hot_share=round(max(stats.ops_share().values()), 3),
            keys_moved=(balancer.total_keys_moved() if balancer else 0),
            rounds=(len(balancer.history) if balancer else 0),
        )
    result.note(f"scale 1/{scale}: {n_keys} keys; skewed ring gives "
                "shard-0 ~91% of vnodes; measurement window starts after "
                "warm/convergence")
    return result


def cluster_replication(scale: int = 2048, n_ops: int = 2000,
                        batch_window: int = 32) -> ExperimentResult:
    """Replication overhead: what R=2 actually costs, in cycles.

    Replica enclaves share no key material, so every replicated write is
    re-encrypted and re-MACed on each replica — write amplification is
    real work, not a pointer copy, and this experiment prices it:

    * ``write_cycles`` / ``read_cycles`` — total enclave cycles per op
      (summed across *all* replicas) for a pure-put and a pure-get phase.
      Writes should roughly double from R=1 to R=2; reads should not —
      they only ever touch the primary.
    * ``clean_read_cycles`` vs ``failover_read_cycles`` — a single Get
      before and after the primary's copy of that record is corrupted in
      untrusted memory: the failover read pays for the alarmed attempt
      (MAC verify that fails) plus the peer's re-execution.
    * ``throughput ops/s`` — aggregate throughput over a mixed RD50
      stream; replicas of a group run in parallel, so the group's
      wall-clock contribution is its slowest member.

    Both configurations split the *same* EPC envelope across all
    ``n_shards * R`` enclaves: replication's memory bill is paid inside
    the budget, not waved away.
    """
    from repro.attacks.scenarios import corrupt_record_in_place
    from repro.cluster import build_replicated_cluster

    result = ExperimentResult(
        exp_id="Cluster 3",
        title="Per-shard replication: write amplification and failover "
              "cost (uniform, 16B, 2 groups)",
        columns=["replication", "write_cycles", "read_cycles",
                 "clean_read_cycles", "failover_read_cycles",
                 "throughput ops/s"],
    )
    n_keys = scaled_keys(scale)

    def total_cycles(coordinator) -> float:
        return sum(replica.shard.meter.cycles
                   for group in coordinator.shard_list()
                   for replica in group.replicas)

    for replication in (1, 2):
        coordinator = build_replicated_cluster(
            2, replication=replication, n_keys=n_keys, scale=scale,
            batch_window=batch_window,
        )
        writes = YcsbWorkload(n_keys=n_keys, read_ratio=0.0, value_size=16,
                              distribution="uniform")
        reads = YcsbWorkload(n_keys=n_keys, read_ratio=1.0, value_size=16,
                             distribution="uniform", seed=writes.seed + 1)
        mixed = YcsbWorkload(n_keys=n_keys, read_ratio=0.5, value_size=16,
                             distribution="uniform", seed=writes.seed + 2)
        coordinator.load(writes.load_items())
        _drive_cluster(coordinator,
                       _as_requests(mixed.operations(n_ops // 2)))  # warm

        before = total_cycles(coordinator)
        _drive_cluster(coordinator, _as_requests(writes.operations(n_ops)))
        write_cycles = (total_cycles(coordinator) - before) / n_ops

        before = total_cycles(coordinator)
        _drive_cluster(coordinator, _as_requests(reads.operations(n_ops)))
        read_cycles = (total_cycles(coordinator) - before) / n_ops

        stats = coordinator.stats()
        _drive_cluster(coordinator, _as_requests(mixed.operations(n_ops)))
        throughput = stats.report()["cluster"]["aggregate_throughput"]

        # Single-get failover probe: pick a key owned by shard-0, price a
        # clean read, rot the primary's copy, price the read that fails
        # over to the intact replica (R=1 has nowhere to go: 0 by
        # definition, the alarm surfaces to the client instead).
        group = coordinator.shards["shard-0"]
        victim = next(k for k, _ in writes.load_items()
                      if coordinator.ring.route(k) == "shard-0")
        before = total_cycles(coordinator)
        coordinator.get(victim)
        clean_read = total_cycles(coordinator) - before
        failover_read = 0.0
        if replication >= 2:
            corrupt_record_in_place(group.replicas[0].shard.store, victim)
            before = total_cycles(coordinator)
            coordinator.get(victim)
            failover_read = total_cycles(coordinator) - before

        result.add_row(
            replication=replication,
            write_cycles=round(write_cycles, 1),
            read_cycles=round(read_cycles, 1),
            clean_read_cycles=round(clean_read, 1),
            failover_read_cycles=round(failover_read, 1),
            **{"throughput ops/s": throughput},
        )
    result.note(f"scale 1/{scale}: {n_keys} keys, 2 groups x R replicas "
                "splitting one EPC envelope; cycles are summed across "
                "replicas (total work, so fan-out shows as amplification)")
    return result


def cluster_process_backend(scale: int = 2048, n_ops: int = 2000,
                            n_shards: int = 2,
                            batch_window: int = 32) -> ExperimentResult:
    """Backend equivalence: inline vs real-OS-process shard workers.

    Runs the *same* seeded RD90 stream through ``build_cluster`` twice —
    once with every shard enclave inline in this process, once with each
    one in its own OS worker behind a message pipe — and records, per
    backend: simulated throughput, total enclave cycles, and a digest of
    every wire response.  The simulated columns must be *identical*
    (the pipe carries absolute meter snapshots, so there is no float
    drift); only ``wall_s`` — real host seconds, reported but never
    asserted against the simulation — may differ, and the ratio shows
    what the IPC round-trips cost the host.
    """
    import hashlib
    import time

    from repro.cluster import build_cluster
    from repro.server.protocol import encode_batch_responses

    result = ExperimentResult(
        exp_id="Cluster 4",
        title="Shard backend equivalence: inline vs OS-process workers "
              "(uniform RD90, 16B)",
        columns=["backend", "throughput ops/s", "cycles_sum",
                 "responses_sha256", "wall_s"],
    )
    n_keys = scaled_keys(scale)
    workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.9, value_size=16,
                            distribution="uniform")
    # One materialized stream for both backends: ``operations()`` advances
    # the workload RNG, and equivalence demands the *same* requests.
    requests = _as_requests(workload.operations(n_ops))
    for backend in ("inline", "process"):
        coordinator = build_cluster(n_shards, n_keys=n_keys, scale=scale,
                                    batch_window=batch_window,
                                    backend=backend)
        try:
            coordinator.load(workload.load_items())
            stats = coordinator.stats()
            digest = hashlib.sha256()
            started = time.perf_counter()
            for start in range(0, len(requests), 256):
                responses = coordinator.execute(requests[start:start + 256])
                digest.update(encode_batch_responses(responses))
            wall = time.perf_counter() - started
            report = stats.report()["cluster"]
            result.add_row(
                backend=backend,
                **{"throughput ops/s": report["aggregate_throughput"]},
                cycles_sum=round(report["cycles_sum"], 1),
                responses_sha256=digest.hexdigest()[:16],
                wall_s=round(wall, 3),
            )
        finally:
            coordinator.close()
    result.note(f"scale 1/{scale}: {n_keys} keys, {n_shards} shards, "
                f"batch window {batch_window}; simulated columns must "
                "match exactly across backends, wall_s is host time")
    return result


def cluster_shard_workers(scale: int = 2048, n_ops: int = 4000,
                          n_shards: int = 2,
                          batch_window: int = 256,
                          frame_ops: int = 512) -> ExperimentResult:
    """Intra-shard batch parallelism: simulated scaling, unchanged answers.

    Runs one seeded 95%-read uniform stream through ``build_cluster`` at
    several shard worker counts (and, at 4 workers, under the
    OS-process backend too).  Two claims, one table:

    * **Determinism** — ``cycles_sum`` and the response digest are
      bit-identical in every row: the reserve → execute → commit engine
      (:mod:`repro.server.batchexec`) never lets N leak into answers or
      canonical charges.
    * **Scaling** — ``speedup`` is the engine's honest simulated figure,
      ``serial_cycles / critical_cycles``, with reservation-table traffic
      and phase barriers priced into the critical path.  A 95%-read mix
      rarely conflicts, so 4 workers should clear 3x; the conflict columns
      of :func:`ClusterStats.report` show where the residue goes.

    ``wall_s`` is real host time, reported but never asserted: real
    threads cannot speed up a pure-Python simulation (the GIL), but the
    process backend's prefetch thread overlaps pipe reads with execution,
    which is the only wall-clock effect worth recording.
    """
    import hashlib
    import time

    from repro.cluster import build_cluster
    from repro.server.protocol import encode_batch_responses

    result = ExperimentResult(
        exp_id="Parallel 1",
        title="Intra-shard batch parallelism: worker scaling "
              "(uniform RD95, 16B)",
        columns=["backend", "workers", "throughput ops/s", "cycles_sum",
                 "responses_sha256", "speedup", "wall_s"],
    )
    n_keys = scaled_keys(scale)
    workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95, value_size=16,
                            distribution="uniform")
    requests = _as_requests(workload.operations(n_ops))
    for backend, workers in (("inline", 1), ("inline", 2), ("inline", 4),
                             ("process", 1), ("process", 4)):
        coordinator = build_cluster(n_shards, n_keys=n_keys, scale=scale,
                                    batch_window=batch_window,
                                    backend=backend, workers=workers)
        try:
            coordinator.load(workload.load_items())
            stats = coordinator.stats()
            digest = hashlib.sha256()
            started = time.perf_counter()
            for start in range(0, len(requests), frame_ops):
                responses = coordinator.execute(
                    requests[start:start + frame_ops])
                digest.update(encode_batch_responses(responses))
            wall = time.perf_counter() - started
            report = stats.report()["cluster"]
            batchexec = report.get("batchexec")
            result.add_row(
                backend=backend,
                workers=workers,
                **{"throughput ops/s": report["aggregate_throughput"]},
                cycles_sum=round(report["cycles_sum"], 1),
                responses_sha256=digest.hexdigest()[:16],
                speedup=round(batchexec["speedup"], 2) if batchexec
                else 1.0,
                wall_s=round(wall, 3),
            )
        finally:
            coordinator.close()
    result.note(f"scale 1/{scale}: {n_keys} keys, {n_shards} shards, "
                f"batch window {batch_window}; cycles_sum and the digest "
                "must be identical in every row — only speedup (simulated "
                "critical path) and wall_s (host time) may move")
    return result


def cluster_wire_overhead(scale: int = 2048, n_ops: int = 2000,
                          n_shards: int = 2,
                          batch_window: int = 32,
                          frame_ops: int = 256) -> ExperimentResult:
    """Price of the encrypted front door: v2 sessions vs v1 plaintext.

    Drives the same seeded RD90 stream through a real TCP
    :class:`~repro.cluster.netserver.BackgroundServer` four ways per
    backend — wire ∈ (v2 encrypted, v1 plaintext) × replication R ∈ (1, 2)
    — and accounts three simulated prices separately:

    * ``handshake_cycles`` — the client's one-time attested session setup
      (two 2048-bit exponentiations + quote verification);
    * ``wire_cycles_per_op`` — the gateway enclave's steady-state AEAD work
      (seal + open per frame, measured after the handshake, amortized over
      ``frame_ops``-request frames);
    * ``shard_cycles_per_op`` — the enclaves' own work, which encryption on
      the wire must not change.

    The wire columns are pure byte-length functions of the stream, and the
    gateway meter lives in the front-door process under both shard
    backends, so every simulated column must be identical between
    ``inline`` and ``process`` rows — the benchmark suite asserts it.
    """
    from repro.cluster import build_replicated_cluster
    from repro.cluster.netserver import BackgroundServer, ClusterClient

    result = ExperimentResult(
        exp_id="Cluster 5",
        title="Wire security overhead: encrypted v2 sessions vs v1 "
              "plaintext (uniform RD90, 16B)",
        columns=["backend", "R", "wire", "shard_cycles_per_op",
                 "wire_cycles_per_op", "handshake_cycles",
                 "overhead_pct"],
    )
    n_keys = scaled_keys(scale)
    workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.9, value_size=16,
                            distribution="uniform")
    # One materialized stream for every cell: cross-backend equivalence
    # demands the same requests everywhere.
    requests = _as_requests(workload.operations(n_ops))

    def shard_cycles(coordinator) -> float:
        return sum(replica.shard.meter.cycles
                   for group in coordinator.shard_list()
                   for replica in group.replicas)

    for backend in ("inline", "process"):
        for replication in (1, 2):
            baseline_shard_cpo = None
            for wire in ("v1", "v2"):
                coordinator = build_replicated_cluster(
                    n_shards, replication=replication, n_keys=n_keys,
                    scale=scale, batch_window=batch_window, backend=backend,
                )
                background = BackgroundServer(
                    coordinator,
                    security="plaintext" if wire == "v1" else "required",
                )
                try:
                    coordinator.load(workload.load_items())
                    host, port = background.start()
                    with ClusterClient.connect(host, port,
                                               secure=(wire == "v2")) \
                            as client:
                        info = client.session_info()
                        gateway = background.server.sessions
                        wire_before = (gateway.meter.cycles
                                       if gateway is not None else 0.0)
                        shards_before = shard_cycles(coordinator)
                        for start in range(0, len(requests), frame_ops):
                            client.request_batch(
                                requests[start:start + frame_ops])
                        shard_cpo = (shard_cycles(coordinator)
                                     - shards_before) / n_ops
                        wire_cpo = (
                            (gateway.meter.cycles - wire_before) / n_ops
                            if gateway is not None else 0.0
                        )
                finally:
                    background.close()
                if wire == "v1":
                    baseline_shard_cpo = shard_cpo
                overhead = 100.0 * wire_cpo / (shard_cpo or 1.0)
                result.add_row(
                    backend=backend, R=replication, wire=wire,
                    shard_cycles_per_op=round(shard_cpo, 1),
                    wire_cycles_per_op=round(wire_cpo, 1),
                    handshake_cycles=round(info["handshake_cycles"], 1),
                    overhead_pct=round(overhead, 2),
                )
                # Encryption terminates at the gateway: the shards' own
                # work must be exactly what the plaintext run charged.
                if baseline_shard_cpo is not None and \
                        shard_cpo != baseline_shard_cpo:
                    result.note(f"WARNING: shard cycles drifted between "
                                f"wires at backend={backend} R={replication}")
    result.note(f"scale 1/{scale}: {n_keys} keys, {n_shards} groups x R "
                f"replicas, {frame_ops}-request frames; gateway AEAD is "
                "charged in the front-door process, so simulated columns "
                "are backend-invariant")
    return result


def cluster_socket_backend(scale: int = 2048, n_ops: int = 2000,
                           n_shards: int = 2, n_hosts: int = 2,
                           batch_window: int = 32) -> ExperimentResult:
    """Row S1: what the multi-host shard hop costs — and what it doesn't.

    Runs the *same* seeded RD90 stream through ``build_cluster`` three
    ways — shards inline, shards in OS worker processes behind pipes,
    and shards in shard-host processes reachable only over attested
    AES-CTR+CMAC TCP sessions (the ``socket`` backend) — and prices the
    hop separately from the enclaves:

    * ``hop_handshake_cycles`` — the coordinator's one-time session setup
      per shard link (attested handshake + the sealed spawn RPC), summed
      over links;
    * ``hop_cycles_per_op`` — the handle-side steady-state AEAD work
      (seal request + open reply per RPC), measured over the serving
      phase only and charged to the per-link ``wire_meter``, never the
      shard meter;
    * ``cycles_sum`` / ``throughput ops/s`` / ``responses_sha256`` — the
      enclaves' own simulated work and outputs, which the transport must
      not change: these columns are asserted identical across all three
      backends (absolute meter snapshots cross the wire, so no drift);
    * ``wall_s`` — real host seconds for the serving phase, reported but
      never asserted, showing what TCP round-trips plus AEAD cost the
      host relative to pipes.
    """
    import hashlib
    import time

    from repro.cluster import SocketBackend, build_cluster
    from repro.server.protocol import encode_batch_responses

    result = ExperimentResult(
        exp_id="Cluster S1",
        title="Socket backend overhead: attested multi-host shard hop "
              "vs inline and OS-process workers (uniform RD90, 16B)",
        columns=["backend", "throughput ops/s", "cycles_sum",
                 "hop_handshake_cycles", "hop_cycles_per_op",
                 "responses_sha256", "wall_s"],
    )
    n_keys = scaled_keys(scale)
    workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.9, value_size=16,
                            distribution="uniform")
    # One materialized stream for every backend: equivalence demands the
    # same requests everywhere.
    requests = _as_requests(workload.operations(n_ops))

    def hop_cycles(coordinator) -> float:
        return sum(getattr(shard, "wire_meter").cycles
                   for shard in coordinator.shard_list()
                   if hasattr(shard, "wire_meter"))

    for backend in ("inline", "process", "socket"):
        backend_arg = (SocketBackend(n_hosts=n_hosts, seed=1)
                       if backend == "socket" else backend)
        coordinator = build_cluster(n_shards, n_keys=n_keys, scale=scale,
                                    batch_window=batch_window,
                                    backend=backend_arg)
        try:
            # Everything the hop spent so far is session setup: the
            # attested handshake plus the sealed spawn RPC, per link.
            handshake = hop_cycles(coordinator)
            coordinator.load(workload.load_items())
            stats = coordinator.stats()
            hop_before = hop_cycles(coordinator)
            digest = hashlib.sha256()
            started = time.perf_counter()
            for start in range(0, len(requests), 256):
                responses = coordinator.execute(requests[start:start + 256])
                digest.update(encode_batch_responses(responses))
            wall = time.perf_counter() - started
            hop_cpo = (hop_cycles(coordinator) - hop_before) / n_ops
            report = stats.report()["cluster"]
            result.add_row(
                backend=backend,
                **{"throughput ops/s": report["aggregate_throughput"]},
                cycles_sum=round(report["cycles_sum"], 1),
                hop_handshake_cycles=round(handshake, 1),
                hop_cycles_per_op=round(hop_cpo, 1),
                responses_sha256=digest.hexdigest()[:16],
                wall_s=round(wall, 3),
            )
        finally:
            coordinator.close()
    result.note(f"scale 1/{scale}: {n_keys} keys, {n_shards} shards over "
                f"{n_hosts} shard hosts, batch window {batch_window}; "
                "enclave columns must match exactly across backends, hop "
                "crypto is charged per link off the shard meters, wall_s "
                "is host time")
    return result


def cluster_durability(scale: int = 2048, n_ops: int = 2000,
                       n_shards: int = 2,
                       batch_window: int = 32) -> ExperimentResult:
    """Row D1: what sealed, rollback-protected durability costs — and what
    a whole-partition recovery costs after it pays off.

    Drives the same seeded write-heavy stream (uniform WR50, 16B values)
    through R=2 clusters in three modes — in-memory, durable with a tight
    epoch binding (``epoch_every=8``), durable with the default binding
    (``epoch_every=32``) — then, in the durable modes, kills *every*
    replica of every partition and prices the full verified recovery:

    * ``shard_cycles_per_op`` — the enclaves' own serving work, which the
      sidecar must not change (it commits parent-side, off the enclave
      meters);
    * ``dur_cycles_per_op`` — the group-commit bill per routed op: seal +
      MAC chain + OCALL per batch, plus the amortized multi-million-cycle
      monotonic-counter increments (this is the column ``epoch_every``
      moves);
    * ``log_bytes_per_op`` — bytes appended to the untrusted log per op;
    * ``recovery_cycles`` — counter read + snapshot unseal + chained log
      replay + re-sealed puts to rebuild one replica per partition, summed
      across partitions;
    * ``recovered_keys`` — proof the rebuild was total, not token.

    The sidecar and its meter live in the coordinator process for both
    shard backends, so every simulated column must be identical between
    ``inline`` and ``process`` rows — the benchmark suite asserts it.
    """
    from repro.cluster import HealthMonitor, build_replicated_cluster
    from repro.persist import MemoryDisk, attach_cluster_durability
    from repro.sgx.monotonic import MonotonicCounterService

    result = ExperimentResult(
        exp_id="Cluster D1",
        title="Sealed durability: group-commit overhead and "
              "whole-partition recovery (uniform WR50, 16B)",
        columns=["backend", "mode", "shard_cycles_per_op",
                 "dur_cycles_per_op", "log_bytes_per_op",
                 "recovery_cycles", "recovered_keys"],
    )
    n_keys = scaled_keys(scale)
    workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.5, value_size=16,
                            distribution="uniform")
    requests = _as_requests(workload.operations(n_ops))

    def shard_cycles(coordinator) -> float:
        return sum(replica.shard.meter.cycles
                   for group in coordinator.shard_list()
                   for replica in group.replicas)

    modes = (("in-memory", None), ("durable e=8", 8), ("durable e=32", 32))
    for backend in ("inline", "process"):
        for mode, epoch_every in modes:
            coordinator = build_replicated_cluster(
                n_shards, replication=2, n_keys=n_keys, scale=scale,
                batch_window=batch_window, backend=backend,
            )
            try:
                sidecars = {}
                if epoch_every is not None:
                    sidecars = attach_cluster_durability(
                        coordinator, MemoryDisk(),
                        MonotonicCounterService(),
                        epoch_every=epoch_every)
                coordinator.load(workload.load_items())
                dur_before = sum(d.meter.cycles for d in sidecars.values())
                log_before = sum(d.bytes_appended for d in sidecars.values())
                shards_before = shard_cycles(coordinator)
                _drive_cluster(coordinator, requests)
                shard_cpo = (shard_cycles(coordinator)
                             - shards_before) / n_ops
                dur_cpo = (sum(d.meter.cycles for d in sidecars.values())
                           - dur_before) / n_ops
                log_bpo = (sum(d.bytes_appended for d in sidecars.values())
                           - log_before) / n_ops

                recovery_cycles = 0.0
                recovered = 0
                if epoch_every is not None:
                    for group in coordinator.shard_list():
                        for replica in group.replicas:
                            replica.shard.kill()
                            group.mark_down(replica, "crash")
                    monitor = HealthMonitor(coordinator, check_every=1)
                    monitor.check()
                    assert not monitor.recovery_failures, \
                        monitor.recovery_failures
                    for report in monitor.recoveries:
                        recovery_cycles += report.dur_cycles \
                            + report.dst_cycles
                        recovered += report.keys_restored
                result.add_row(
                    backend=backend, mode=mode,
                    shard_cycles_per_op=round(shard_cpo, 1),
                    dur_cycles_per_op=round(dur_cpo, 1),
                    log_bytes_per_op=round(log_bpo, 1),
                    recovery_cycles=round(recovery_cycles, 1),
                    recovered_keys=recovered,
                )
            finally:
                for group in coordinator.shard_list():
                    group.close()
    result.note(f"scale 1/{scale}: {n_keys} keys, {n_shards} groups x R=2; "
                "the durability sidecar (and its counter bill) is charged "
                "parent-side, so simulated columns are backend-invariant; "
                "recovery rebuilds one replica per partition from the "
                "sealed snapshot + chained log, peers re-sync from it")
    return result


def cluster_overload(scale: int = 2048, n_ops: int = 2000,
                     n_shards: int = 3,
                     batch_window: int = 8) -> ExperimentResult:
    """Row O1: graceful degradation under an adversarial hot-shard storm.

    Drives one seeded zipf(0.99) WR50 stream through an R=2 replicated
    cluster with the overload layer armed, on every shard backend.  The
    first half of the stream is the calm baseline; at halftime the hot
    partition's primary turns SLOW (alive, correct, just stalled — the
    failure crash detectors cannot see) while the skewed workload keeps
    hammering it.  Per backend and phase:

    * ``goodput`` — served-OK fraction of offered requests.  Calm is
      1.0; the storm must *degrade*, not die: the breaker trips after
      ``breaker_failures`` slow flushes, reads fail over to the live
      secondary, only hot-partition writes are shed;
    * ``shed`` / ``breaker_trips`` — the overload layer's own ledger;
    * ``cycles_sum`` / ``responses_sha256`` — the enclaves' simulated
      work and outputs for the phase.  The breaker's trip point is
      sample-count deterministic and the recovery window outlives the
      storm, so these columns — storm included — are asserted identical
      across all three backends (shed responses' ``retry_after`` hints
      are host wall-clock by contract and normalized out of the
      digest): overload decisions are untrusted parent-side work that
      never touches a shard meter;
    * ``wall_s`` — real host seconds, reported but never asserted (the
      two pre-trip stalls dominate it by design).

    The latency threshold (0.25 s) sits two orders of magnitude above a
    healthy flush and two below nothing — only the injected 0.6 s stall
    crosses it, so the trip schedule cannot flake on a loaded host.
    """
    import hashlib
    import time as _time

    from repro.cluster import (
        FaultPlan,
        OverloadConfig,
        build_replicated_cluster,
    )
    from repro.server.protocol import (
        Response,
        Status,
        encode_batch_responses,
    )
    from repro.workloads.ycsb import make_key

    result = ExperimentResult(
        exp_id="Cluster O1",
        title="Overload robustness: goodput under a zipf(0.99) hot-shard "
              "storm with one SLOW shard (WR50, 16B)",
        columns=["backend", "phase", "goodput", "shed", "breaker_trips",
                 "cycles_sum", "responses_sha256", "wall_s"],
    )
    n_keys = scaled_keys(scale)
    workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.5, value_size=16,
                            distribution="zipfian", skew=0.99)
    requests = _as_requests(workload.operations(n_ops))
    half = len(requests) // 2
    stall_seconds = 0.6

    def shard_cycles(coordinator) -> float:
        return sum(replica.shard.meter.cycles
                   for group in coordinator.shard_list()
                   for replica in group.replicas)

    def canonical(responses):
        # A shed response's retry_after hint is the breaker's remaining
        # wall-clock countdown — host time, advisory by contract.  Strip
        # the 4-byte hint (keeping status and reason) so the digest
        # asserts what was *decided and served*, not when the host's
        # clock happened to tick.
        return [Response(r.status, r.value[4:])
                if r.status == Status.OVERLOADED else r
                for r in responses]

    for backend in ("inline", "process", "socket"):
        # Empty plan: every replica is FaultyShard-wrapped so the stall
        # can be applied directly at halftime, backend-independently.
        coordinator = build_replicated_cluster(
            n_shards, replication=2, n_keys=n_keys, scale=scale,
            batch_window=batch_window, backend=backend,
            fault_plan=FaultPlan())
        coordinator.enable_overload(OverloadConfig(
            breaker_failures=2, breaker_latency=0.25,
            breaker_recovery=120.0))
        try:
            coordinator.load(workload.load_items())
            # zipf rank-1 key = the storm's hot spot; its partition is
            # where the stall lands.
            hot_group = coordinator.shards[
                coordinator.ring.route(make_key(0))]
            for phase, frames in (("calm", requests[:half]),
                                  ("storm", requests[half:])):
                if phase == "storm":
                    hot_group.replicas[0].shard.stall(stall_seconds)
                shed_before = coordinator.overload.stats()["shed"]
                cycles_before = shard_cycles(coordinator)
                digest = hashlib.sha256()
                ok = 0
                started = _time.perf_counter()
                for start in range(0, len(frames), 64):
                    responses = coordinator.execute(
                        frames[start:start + 64])
                    ok += sum(1 for r in responses
                              if r.status == Status.OK)
                    digest.update(
                        encode_batch_responses(canonical(responses)))
                wall = _time.perf_counter() - started
                stats = coordinator.overload.stats()
                result.add_row(
                    backend=backend, phase=phase,
                    goodput=round(ok / len(frames), 4),
                    shed=stats["shed"] - shed_before,
                    breaker_trips=stats["breaker_trips"],
                    cycles_sum=round(
                        shard_cycles(coordinator) - cycles_before, 1),
                    responses_sha256=digest.hexdigest()[:16],
                    wall_s=round(wall, 3),
                )
        finally:
            coordinator.close()
    result.note(f"scale 1/{scale}: {n_keys} keys, {n_shards} groups x R=2, "
                f"batch window {batch_window}; storm = hot primary stalled "
                f"{stall_seconds}s/flush, breaker trips after 2 slow "
                "samples then contains it (reads to the secondary, writes "
                "shed with retry_after); simulated columns are asserted "
                "backend-invariant, wall_s is host time")
    return result


def cluster_tenancy(scale: int = 2048, n_ops: int = 2000,
                    n_shards: int = 3,
                    batch_window: int = 8) -> ExperimentResult:
    """Row T1: whale-and-minnows fairness behind the multi-tenant front door.

    One cluster, two principals: a **whale** driving a zipf(0.99) WR50
    stream through its own key namespace, and a **minnow** with a small
    uniform working set.  Per backend, the minnow runs a fixed request
    window three times — solo (the baseline), then again after/while the
    whale floods — under two modes:

    * ``unarmed`` — the roster exists (namespaces route) but carries no
      rate limits and no cache quotas: the whale's flood evicts the
      minnow's Merkle nodes and the minnow's re-run pays swap-ins;
    * ``armed`` — the whale is rate-limited at the front door (sheds are
      typed ``OVERLOADED`` with the *whale's own* bucket refill time as
      the hint) and the minnow holds a Secure-Cache occupancy quota on
      every shard, so the flood cannot displace its nodes.

    ``fairness`` is the minnow's solo cycles-per-op over its contended
    cycles-per-op (1.0 = the whale is invisible); the T1 acceptance bar
    is ``fairness >= 0.8`` armed, and armed > unarmed.  ``typed_shed``
    counts whale sheds whose reason names the whale's own rate limit —
    it must equal ``whale_shed`` (every shed is charged to the offending
    principal; the hint's tenant-correct *value* is pinned by the unit
    and wire suites).  Buckets run on a deterministic stepping clock
    and every tenancy decision is untrusted parent-side work, so all
    simulated columns — sheds, denials, digests — are asserted
    bit-identical across the inline/process/socket backends.
    """
    import hashlib
    import json

    from repro.cluster import ClusterConfig, TenancyConfig, TenantConfig
    from repro.server.protocol import (
        Status,
        encode_batch_responses,
        overload_reason,
        retry_after_hint,
    )

    result = ExperimentResult(
        exp_id="Cluster T1",
        title="Multi-tenant fairness: zipf(0.99) whale vs uniform minnow, "
              "per-tenant admission + Secure-Cache quotas (WR50, 16B)",
        columns=["backend", "mode", "minnow_solo_cpo",
                 "minnow_contended_cpo", "fairness", "whale_shed",
                 "typed_shed", "evict_denied", "responses_sha256"],
    )
    n_keys = scaled_keys(scale)
    minnow_keys = max(64, n_keys // 8)
    whale_load = YcsbWorkload(n_keys=n_keys, read_ratio=0.5, value_size=16,
                              distribution="zipfian", skew=0.99)
    minnow_load = YcsbWorkload(n_keys=minnow_keys, read_ratio=0.5,
                               value_size=16, distribution="uniform")
    whale_requests = _as_requests(whale_load.operations(n_ops))
    minnow_window = _as_requests(minnow_load.operations(max(200, n_ops // 5)))

    def tenancy_for(mode: str) -> "TenancyConfig":
        if mode == "armed":
            return TenancyConfig(tenants=(
                TenantConfig("whale", rate=100.0, burst=50.0,
                             cache_quota=0.2),
                TenantConfig("minnow", cache_quota=0.5),
            ))
        return TenancyConfig(tenants=(TenantConfig("whale"),
                                      TenantConfig("minnow")))

    class SteppingClock:
        """1 ms per reading: bucket refill depends only on call count,
        which depends only on the request stream — backend-invariant."""

        def __init__(self):
            self.now = 0.0

        def __call__(self):
            self.now += 0.001
            return self.now

    def shard_cycles(coordinator) -> float:
        return sum(s.meter.cycles for s in coordinator.shard_list())

    for backend in ("inline", "process", "socket"):
        for mode in ("unarmed", "armed"):
            config = ClusterConfig(
                n_shards=n_shards, n_keys=n_keys, scale=scale,
                batch_window=batch_window, backend=backend,
                tenancy=tenancy_for(mode))
            coordinator = config.build(clock=SteppingClock())
            try:
                coordinator.load(whale_load.load_items(), tenant="whale")
                coordinator.load(minnow_load.load_items(), tenant="minnow")
                digest = hashlib.sha256()
                whale_shed = typed_shed = 0

                def drive(requests, tenant):
                    shed = typed = 0
                    before = shard_cycles(coordinator)
                    for start in range(0, len(requests), 64):
                        responses = coordinator.execute(
                            requests[start:start + 64], tenant=tenant)
                        digest.update(encode_batch_responses(responses))
                        for r in responses:
                            if r.status != Status.OVERLOADED:
                                continue
                            shed += 1
                            # The hint is the whale's own bucket price
                            # (>= 0; exactly 0 only when the stepping
                            # clock's own reading refilled the token).
                            retry_after_hint(r)
                            if overload_reason(r).startswith(
                                    b"tenant rate limit: whale"):
                                typed += 1
                    return shard_cycles(coordinator) - before, shed, typed

                solo_cycles, _, _ = drive(minnow_window, "minnow")
                _, whale_shed, typed_shed = drive(whale_requests, "whale")
                contended_cycles, _, _ = drive(minnow_window, "minnow")

                solo_cpo = solo_cycles / len(minnow_window)
                contended_cpo = contended_cycles / len(minnow_window)
                health = json.loads(
                    coordinator.health_response().value)["tenancy"]
                denied = sum(
                    health.get("cache_evict_denials", {}).values())
                result.add_row(
                    backend=backend, mode=mode,
                    minnow_solo_cpo=round(solo_cpo, 1),
                    minnow_contended_cpo=round(contended_cpo, 1),
                    fairness=round(solo_cpo / contended_cpo, 4),
                    whale_shed=whale_shed,
                    typed_shed=typed_shed,
                    evict_denied=denied,
                    responses_sha256=digest.hexdigest()[:16],
                )
            finally:
                coordinator.close()
    result.note(f"scale 1/{scale}: {n_keys} whale + {minnow_keys} minnow "
                f"keys, {n_shards} shards, batch window {batch_window}; "
                "armed = whale bucket 100 req/s (stepping clock) + cache "
                "quotas 0.2/0.5; fairness = minnow solo cpo / contended "
                "cpo; every tenancy decision is parent-side, so simulated "
                "columns are asserted backend-invariant")
    return result


def cluster_elastic(scale: int = 2048, n_ops: int = 2000,
                    batch_window: int = 8,
                    frame_ops: int = 64) -> ExperimentResult:
    """Row E1: goodput through a live 4→5→4 shard reconfiguration.

    One zipf(0.99) WR50 stream, never paused, drives a 4-shard cluster
    through five windows: steady state, a live shard **add** (4→5), the
    new steady state, a live shard **remove** (5→4), and the final
    steady state.  Each reconfiguration is planner-approved (the
    ``epc_budget`` model checks the cluster envelope covers
    ``max_shards``) and executed by the elastic engine one bounded key
    batch per request frame (the ``after_execute`` hook), so migration
    work is interleaved with serving instead of stopping the world.
    Copy/retire re-seals are charged to the shard meters, so the
    ``during-*`` rows' throughput dip *is* the migration bill as a
    client would observe it — and the same bill is priced explicitly in
    ``migration_cycles`` (keys moved × the spec's per-key
    ``migrate_cost_cycles``).

    The acceptance bar (benchmarks/test_cluster_scaling.py): both
    ``during-*`` windows keep >= 0.7 of the preceding steady window's
    throughput, every response in every window is OK (``ok_share`` 1.0:
    the authoritative side serves until the atomic cutover, so clients
    never see a hole), both migrations complete without aborts, and the
    priced cost is non-zero and consistent with the engine counters.
    """
    from repro.cluster import ClusterConfig
    from repro.server import protocol
    from repro.server.protocol import Status

    result = ExperimentResult(
        exp_id="Cluster E1",
        title="Elastic scale-out: goodput through a live 4→5→4 "
              "reconfiguration (zipf 0.99 WR50, 16B)",
        columns=["phase", "shards", "ops", "throughput ops/s", "ok_share",
                 "keys_moved", "dual_applied", "migration_cycles"],
    )
    n_keys = scaled_keys(scale)
    workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.5, value_size=16,
                            distribution="zipfian", skew=0.99)
    config = ClusterConfig(n_shards=4, n_keys=n_keys, scale=scale,
                           batch_window=batch_window, max_shards=5)
    coordinator = config.build()
    try:
        coordinator.load(workload.load_items())
        engine = coordinator.elastic
        # Bound per-frame migration work so serving latency, not the
        # copy loop, dominates each frame (the interleaving knob).
        engine.batch_keys = max(8, frame_ops // 4)
        ops = iter(workload.operations(1 << 30))

        def next_frame():
            frame = []
            for op in ops:
                frame.append(protocol.get(op.key) if op.kind == "get"
                             else protocol.put(op.key, op.value))
                if len(frame) == frame_ops:
                    break
            return frame

        def window(phase: str, *, until_idle: bool = False) -> None:
            stats = coordinator.stats()
            base = engine.stats()
            ok = total = 0
            while engine.active if until_idle else total < n_ops:
                for response in coordinator.execute(next_frame()):
                    total += 1
                    ok += response.status == Status.OK
            report = stats.report()
            after = engine.stats()
            keys_moved = (
                after["keys_migrated"] + after["keys_retired"]
                - base["keys_migrated"] - base["keys_retired"])
            result.add_row(
                phase=phase, shards=len(coordinator.shards), ops=total,
                **{"throughput ops/s": report["cluster"]
                   ["aggregate_throughput"]},
                ok_share=round(ok / total, 4),
                keys_moved=keys_moved,
                dual_applied=after["dual_applied"] - base["dual_applied"],
                migration_cycles=round(
                    keys_moved * engine.spec.migrate_cost_cycles, 1),
            )

        window("steady-4")
        plan = engine.add_shard()
        joined = plan.delta.add_shards[0]
        window("during-add", until_idle=True)
        window("steady-5")
        engine.remove_shard(joined)
        window("during-remove", until_idle=True)
        window("steady-4'")
        summary = engine.stats()
        assert summary["migrations_completed"] == 2, summary
        assert summary["migrations_aborted"] == 0, summary
    finally:
        coordinator.close()
    result.note(f"scale 1/{scale}: {n_keys} keys, batch window "
                f"{batch_window}, {frame_ops}-op frames, migration batch "
                f"{engine.batch_keys} keys/frame; during-* windows span "
                "exactly one live migration (planner-approved, "
                "interleaved via after_execute); migration_cycles = keys "
                f"x {engine.spec.migrate_cost_cycles:.0f} "
                "migrate_cost_cycles")
    return result


ALL_EXPERIMENTS = {
    "table1": table1_comparison,
    "fig2": fig2_motivation,
    "fig9": fig9_ycsb_hash,
    "fig10": fig10_ycsb_tree,
    "fig11": fig11_etc,
    "fig12": fig12_ablation,
    "fig13": fig13_keyspace,
    "fig14": fig14_cache_size,
    "fig15": fig15_arity,
    "fig16a": fig16a_multitenant,
    "fig16b": fig16b_skewness,
    "ablation_locality": ablation_zipf_locality,
    "ablation_swap": ablation_swap_semantics,
    "ablation_batching": ablation_server_batching,
    "ablation_latency": ablation_latency,
    "ablation_drift": ablation_hotset_drift,
    "ablation_obfuscation": ablation_obfuscation,
    "cluster_scaling": cluster_scaling,
    "cluster_rebalance": cluster_rebalance,
    "cluster_replication": cluster_replication,
    "cluster_process_backend": cluster_process_backend,
    "cluster_shard_workers": cluster_shard_workers,
    "cluster_wire_overhead": cluster_wire_overhead,
    "cluster_socket_backend": cluster_socket_backend,
    "cluster_durability": cluster_durability,
    "cluster_overload": cluster_overload,
    "cluster_tenancy": cluster_tenancy,
    "cluster_elastic": cluster_elastic,
}
