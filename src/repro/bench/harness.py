"""Experiment harness: builds schemes at scale, runs workloads, measures.

**Scaling** (DESIGN.md Section 4.6).  The paper's experiments use a 10 M-key
working set against a 91 MB EPC.  At Python speed we divide the keyspace
*and every EPC byte budget* by one ``scale`` factor (default 512), keeping
the ratios — working set : EPC : Secure Cache : ShieldStore root array —
that drive every figure.  Throughput is simulated cycles converted through
the platform clock, so numbers are directly comparable across schemes and
keyspace points regardless of Python overhead.

**Scheme sizing**, mirroring Section VI:

* Aria's Secure Cache is "as large as possible": the EPC budget minus every
  other trusted structure (computed in :func:`aria_cache_budget`).
* ShieldStore's bucket count is EPC-bound: the paper gives 64 MB of its
  91 MB EPC to MT roots (4 M buckets for 10 M keys); we keep that 64/91
  proportion at every scale.
* Aria's own hash table lives in untrusted memory, so its bucket count
  scales with the keyspace (load factor 2) — the asymmetry behind Fig 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.baselines.aria_nocache import AriaNoCacheStore
from repro.baselines.enclave_baseline import EnclaveBaselineStore
from repro.baselines.plain_kv import PlainKvStore
from repro.baselines.shieldstore import ShieldStore
from repro.core.config import AriaConfig
from repro.core.store import AriaStore
from repro.errors import KeyNotFoundError
from repro.merkle.layout import MerkleLayout
from repro.sgx.costs import SgxPlatform
from repro.sgx.meter import MeterPause
from repro.workloads.ycsb import Operation

#: The paper's platform: 91 MB usable EPC (HeapMaxSize setting, Section VI).
PAPER_EPC_BYTES = 91 * 1024 * 1024
#: EPC bytes ShieldStore dedicates to Merkle roots on the paper's machine.
PAPER_SHIELDSTORE_ROOT_BYTES = 64 * 1024 * 1024
#: The paper's 10 M-key default working set.
PAPER_KEYSPACE = 10_000_000

#: Default scale divisor for experiments (DESIGN.md Section 4.6).
DEFAULT_SCALE = 512

ARIA_LOAD_FACTOR = 2  # keys per hash bucket for Aria-H / baselines


def aria_buckets(n_keys: int, platform: SgxPlatform) -> int:
    """Aria-H's bucket count: load factor 2, capped by an EPC budget.

    The per-bucket entry counts (deletion detection, Section V-C) live in the
    EPC, so past a certain keyspace the bucket count must stop growing —
    we cap its EPC share at an eighth of the budget.  Chains lengthen
    beyond that point, but Aria's key hints keep chain walks cheap (unlike
    ShieldStore, whose whole-bucket MAC fold grows with the chain).
    """
    return max(16, min(n_keys // ARIA_LOAD_FACTOR, platform.epc_bytes // 8))


def scaled_platform(scale: int = DEFAULT_SCALE,
                    epc_bytes: int = PAPER_EPC_BYTES) -> SgxPlatform:
    return SgxPlatform(epc_bytes=max(4096, epc_bytes // scale))


def scaled_keys(scale: int = DEFAULT_SCALE,
                keyspace: int = PAPER_KEYSPACE) -> int:
    return max(64, keyspace // scale)


def auto_pin_levels(layout: MerkleLayout, epc_bytes: int,
                    fraction: float = 0.35) -> int:
    """Pin as many top MT levels as fit in ``fraction`` of the EPC.

    Mirrors the paper's sizing: for its 10 M-key setup Aria pins every
    level except L0 (Section IV-E); when the keyspace outgrows the EPC by 20x
    (Fig 13) the affordable depth shrinks and misses verify further.
    """
    budget = int(epc_bytes * fraction)
    best = 1  # the top level always fits (one node)
    for pin in range(2, layout.n_levels + 1):
        if layout.pinned_bytes(pin) <= budget:
            best = pin
        else:
            break
    return best


def aria_cache_budget(
    platform: SgxPlatform,
    *,
    n_keys: int,
    arity: int = 8,
    pin_levels: int = 3,
    n_buckets: Optional[int] = None,
    est_record_bytes: int = 80,
    margin: float = 0.05,
) -> int:
    """EPC left for the Secure Cache after every other trusted structure.

    Deductions: the counter-occupancy bitmap, the Merkle root, the pinned
    levels, the index's per-bucket counts, and an estimate of the heap
    allocator's chunk bitmaps (roughly 1 bit per 8 block bytes).
    """
    n_counters = int(n_keys * 1.05) + 8
    layout = MerkleLayout(n_counters=n_counters, arity=arity)
    pin_levels = min(pin_levels, layout.n_levels)
    buckets = n_buckets if n_buckets is not None \
        else aria_buckets(n_keys, platform)
    # Allocator chunk bitmaps cost ~1 bit per live block; budget 1.5 blocks
    # per record (size-class churn under variable-size updates).
    alloc_bitmap = (n_keys + n_keys // 2) // 8 + 1024
    reserved = (
        (n_counters + 7) // 8          # counter bitmap
        + 16                           # merkle root
        + layout.pinned_bytes(pin_levels)
        + buckets + 8                  # per-bucket counts + entrance
        + alloc_bitmap
    )
    budget = int((platform.epc_bytes - reserved) * (1.0 - margin))
    return max(0, budget)


def build_aria(
    *,
    n_keys: int,
    platform: SgxPlatform,
    index: str = "hash",
    arity: int = 8,
    pin_levels="auto",
    policy: str = "fifo",
    cache_fraction: float = 1.0,
    stop_swap_enabled: bool = True,
    allocator: str = "heap",
    value_hint: int = 16,
    seed: int = 0,
    **config_overrides,
) -> AriaStore:
    """Aria sized like the paper: Secure Cache as large as possible.

    ``pin_levels="auto"`` pins as many top MT levels as fit in 35 % of the
    EPC — every level except L0 at the paper's 10 M-key operating point.
    """
    n_buckets = aria_buckets(n_keys, platform)
    if pin_levels == "auto":
        layout = MerkleLayout(n_counters=int(n_keys * 1.05) + 8, arity=arity)
        pin_levels = auto_pin_levels(layout, platform.epc_bytes)
    budget = aria_cache_budget(
        platform, n_keys=n_keys, arity=arity, pin_levels=pin_levels,
        n_buckets=n_buckets, est_record_bytes=48 + value_hint,
    )
    # The paper trips stop-swap below a 70 % hit ratio at 10 M keys, where
    # the zipf(0.99) head is thin; scaled-down zipf tails are fatter, so the
    # equivalent skew/uniform separation point is lower, and hysteresis
    # keeps borderline skewed runs from flapping into pinning-only mode.
    config_overrides.setdefault("stop_swap_threshold", 0.40)
    config_overrides.setdefault("stop_swap_patience", 3)
    config = AriaConfig(
        index=index,
        n_buckets=n_buckets,
        merkle_arity=arity,
        secure_cache_bytes=int(budget * cache_fraction),
        eviction_policy=policy,
        pin_levels=pin_levels,
        stop_swap_enabled=stop_swap_enabled,
        initial_counters=int(n_keys * 1.05) + 8,
        allocator=allocator,
        heap_chunk_bytes=max(4096, (4 * 1024 * 1024) // DEFAULT_SCALE),
        seed=seed,
        **config_overrides,
    )
    return AriaStore(config, platform=platform)


def build_shieldstore(*, n_keys: int, platform: SgxPlatform,
                      seed: int = 0) -> ShieldStore:
    """ShieldStore with its EPC-bound root array (64/91 of the budget)."""
    root_bytes = platform.epc_bytes * PAPER_SHIELDSTORE_ROOT_BYTES \
        // PAPER_EPC_BYTES
    n_buckets = max(16, root_bytes // 16)
    return ShieldStore(n_buckets=n_buckets, platform=platform, seed=seed)


def build_aria_nocache(*, n_keys: int, platform: SgxPlatform,
                       index: str = "hash", seed: int = 0) -> AriaNoCacheStore:
    return AriaNoCacheStore(
        initial_counters=int(n_keys * 1.05) + 8,
        index=index,
        n_buckets=max(16, n_keys // ARIA_LOAD_FACTOR),
        platform=platform,
        seed=seed,
    )


def build_baseline(*, n_keys: int, platform: SgxPlatform,
                   seed: int = 0) -> EnclaveBaselineStore:
    return EnclaveBaselineStore(
        n_buckets=max(16, n_keys // ARIA_LOAD_FACTOR),
        platform=platform, seed=seed,
    )


def build_plain(*, n_keys: int, platform: SgxPlatform,
                seed: int = 0) -> PlainKvStore:
    return PlainKvStore(
        n_buckets=max(16, n_keys // ARIA_LOAD_FACTOR),
        platform=platform, seed=seed,
    )


SCHEME_BUILDERS = {
    "aria": build_aria,
    "shieldstore": build_shieldstore,
    "aria_nocache": build_aria_nocache,
    "baseline": build_baseline,
    "plain": build_plain,
}


@dataclass
class RunResult:
    """One measured run of an operation stream against one store."""

    scheme: str
    ops: int
    cycles: float
    throughput: float            # ops/s at the platform clock
    events: dict = field(default_factory=dict)
    hit_ratio: Optional[float] = None
    latencies: Optional[list] = None   # per-op simulated cycles, if collected

    @property
    def cycles_per_op(self) -> float:
        return self.cycles / self.ops if self.ops else 0.0

    def percentile(self, p: float) -> float:
        """Per-op simulated-cycle latency percentile (p in [0, 100]).

        Requires the run to have been measured with
        ``collect_latencies=True``.
        """
        if not self.latencies:
            raise ValueError("run was not measured with collect_latencies")
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, max(0, int(len(ordered) * p / 100.0)))
        return ordered[rank]

    def latency_summary(self) -> dict:
        return {p: self.percentile(p) for p in (50, 90, 99, 99.9)}


def _execute(store, operations: Iterable[Operation]) -> int:
    count = 0
    for op in operations:
        if op.kind == "get":
            try:
                store.get(op.key)
            except KeyNotFoundError:
                pass
        else:
            store.put(op.key, op.value)
        count += 1
    return count


def run_operations(store, operations: Iterable[Operation], scheme: str = "",
                   collect_latencies: bool = False) -> RunResult:
    """Execute a run-phase stream and convert cycles to throughput.

    With ``collect_latencies`` each operation's simulated cycles are
    recorded individually, enabling tail-latency percentiles.
    """
    meter = store.enclave.meter
    before = meter.snapshot()
    latencies: Optional[list] = None
    if collect_latencies:
        latencies = []
        count = 0
        for op in operations:
            start = meter.cycles
            _execute(store, (op,))
            latencies.append(meter.cycles - start)
            count += 1
    else:
        count = _execute(store, operations)
    delta = before.delta(meter.snapshot())
    throughput = (
        store.enclave.platform.cpu_hz * count / delta.cycles
        if delta.cycles > 0 else 0.0
    )
    hit_ratio = None
    if hasattr(store, "cache_stats"):
        stats = store.cache_stats()
        hit_ratio = stats.get("hit_ratio")
    return RunResult(
        scheme=scheme or getattr(store, "name", type(store).__name__),
        ops=count,
        cycles=delta.cycles,
        throughput=throughput,
        events=dict(delta.events),
        hit_ratio=hit_ratio,
        latencies=latencies,
    )


def warm_store(store, workload, n_ops: int = 1500) -> None:
    """Replay a differently-seeded slice of the workload, unmetered."""
    warm = replace(workload, seed=workload.seed + 7919)
    with MeterPause(store.enclave.meter):
        _execute(store, warm.operations(n_ops))


def load_and_run(store, workload, n_ops: int, scheme: str = "",
                 warmup_ops: int = 1500) -> RunResult:
    """Load the workload's dataset, warm the steady state, measure ``n_ops``.

    Load and warmup are unmetered — the paper reports steady-state
    throughput; the warmup replays a differently-seeded slice of the same
    distribution so caches (and paging residency) reflect it.
    """
    store.load(workload.load_items())
    if warmup_ops:
        warm = replace(workload, seed=workload.seed + 7919)
        with MeterPause(store.enclave.meter):
            _execute(store, warm.operations(warmup_ops))
    if hasattr(store, "counters") and hasattr(store.counters, "reset_stats"):
        store.counters.reset_stats()
    return run_operations(store, workload.operations(n_ops), scheme=scheme)
