"""Benchmark harness: scheme builders, workload runner, per-figure experiments."""

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import (
    DEFAULT_SCALE,
    PAPER_EPC_BYTES,
    PAPER_KEYSPACE,
    SCHEME_BUILDERS,
    RunResult,
    aria_cache_budget,
    build_aria,
    build_aria_nocache,
    build_baseline,
    build_plain,
    build_shieldstore,
    load_and_run,
    run_operations,
    scaled_keys,
    scaled_platform,
)
from repro.bench.report import ExperimentResult, format_ops

__all__ = [
    "ALL_EXPERIMENTS",
    "DEFAULT_SCALE",
    "PAPER_EPC_BYTES",
    "PAPER_KEYSPACE",
    "SCHEME_BUILDERS",
    "ExperimentResult",
    "RunResult",
    "aria_cache_budget",
    "build_aria",
    "build_aria_nocache",
    "build_baseline",
    "build_plain",
    "build_shieldstore",
    "format_ops",
    "load_and_run",
    "run_operations",
    "scaled_keys",
    "scaled_platform",
]
