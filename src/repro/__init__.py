"""Reproduction of *Aria: Tolerating Skewed Workloads in Secure In-memory
Key-value Stores* (ICDE 2021).

Public API highlights:

* :class:`repro.core.AriaStore` — the secure KV store (hash or B-tree index)
* :class:`repro.core.AriaConfig` — every knob the paper sweeps or ablates
* :class:`repro.cache.SecureCache` — the paper's core contribution
* :mod:`repro.baselines` — ShieldStore, Aria w/o Cache, EPC Baseline
* :mod:`repro.workloads` — YCSB and Facebook-ETC generators
* :mod:`repro.bench` — one experiment per table/figure in the paper
"""

from repro.core.config import AriaConfig
from repro.core.store import AriaStore
from repro.errors import (
    AriaError,
    CapacityError,
    DeletionError,
    IntegrityError,
    KeyNotFoundError,
    ReplayError,
)
from repro.sgx.costs import CostModel, SgxPlatform

__version__ = "1.0.0"

__all__ = [
    "AriaConfig",
    "AriaError",
    "AriaStore",
    "CapacityError",
    "CostModel",
    "DeletionError",
    "IntegrityError",
    "KeyNotFoundError",
    "ReplayError",
    "SgxPlatform",
    "__version__",
]
