"""Aria-H: chained hash table over sealed records (paper Section V-C).

Layout in untrusted memory::

    bucket array:  n_buckets x 8-byte head pointers
    entry:         next_ptr (8) | key_hint (4) | sealed record (...)

* The **key hint** is a hash of the plaintext key stored per entry, so chain
  traversal skips non-matching entries without decrypting them (the paper
  credits this for the ~10x gap between Aria-H and Aria-T).
* **Index protection**: each record's AdField is the address of the pointer
  slot that points at its entry — the bucket head slot for the first entry,
  the predecessor's ``next`` field otherwise.  Swapping two slot pointers
  (Fig 7) relocates records under foreign AdFields and both MACs fail.
* **Unauthorized-deletion detection**: the enclave keeps a per-bucket entry
  count; a miss whose traversal saw fewer entries than the count recorded in
  the EPC raises :class:`DeletionError` instead of KeyNotFoundError.

Inserts append at the chain tail so existing entries keep their AdFields;
deletes splice and re-bind the successor's record to its new pointer slot.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from repro.alloc.heap import Allocator
from repro.core.record import RecordCodec, record_size
from repro.errors import DeletionError, KeyNotFoundError
from repro.index.base import SecureIndex
from repro.sgx.enclave import Enclave

_ENTRY_PREFIX = struct.Struct("<QI")  # next_ptr, key_hint
_NULL = 0
#: Bytes of EPC charged per bucket for the entry count (Section V-C).
_COUNT_BYTES = 1


class AriaHashIndex(SecureIndex):
    """Chained hashing with key hints and tail insertion."""

    name = "hash"
    EPC_CONSUMER = "hash_index"

    def __init__(
        self,
        enclave: Enclave,
        codec: RecordCodec,
        allocator: Allocator,
        *,
        n_buckets: int,
        fetch_counter: callable,
        free_counter: Optional[callable] = None,
        dummy_bucket_reads: int = 0,
    ):
        self._enclave = enclave
        self._codec = codec
        self._allocator = allocator
        self._n_buckets = n_buckets
        self._fetch_counter = fetch_counter
        self._free_counter = free_counter
        # Section VII mitigation sketch: per operation, also walk this many
        # pseudo-randomly chosen buckets so an observer of untrusted-memory
        # reads cannot attribute request frequency to one bucket.  This
        # blurs frequencies; it is NOT ORAM (orderings and co-access
        # patterns still leak) and is off by default, as in the paper.
        self._dummy_bucket_reads = dummy_bucket_reads
        self._dummy_state = 0x9E3779B97F4A7C15
        # Bucket head array lives in untrusted memory; the array *entrance*
        # (its base address) is EPC state, so the enclave always finds it.
        self._bucket_base = enclave.untrusted.alloc(n_buckets * 8)
        # Per-bucket entry counts: trusted metadata in the EPC.
        self._counts = [0] * n_buckets
        enclave.epc.reserve(self.EPC_CONSUMER, n_buckets * _COUNT_BYTES + 8)
        self._n_entries = 0

    # -- state capture / restore (enclave restart) -------------------------------

    def capture_state(self) -> dict:
        return {
            "kind": self.name,
            "bucket_base": self._bucket_base,
            "counts": list(self._counts),
            "n_entries": self._n_entries,
        }

    def restore_state(self, state: dict) -> None:
        self._bucket_base = state["bucket_base"]
        self._counts = list(state["counts"])
        self._n_entries = state["n_entries"]

    # -- helpers -------------------------------------------------------------------

    def _bucket_slot(self, key: bytes) -> tuple[int, int, int]:
        """Hash a key; returns (bucket index, head slot address, key hint)."""
        digest = self._enclave.hash_key(key)
        bucket = digest % self._n_buckets
        return bucket, self._bucket_base + bucket * 8, digest & 0xFFFFFFFF

    def _read_ptr(self, slot_addr: int) -> int:
        return int.from_bytes(self._enclave.read_untrusted(slot_addr, 8), "little")

    def _write_ptr(self, slot_addr: int, value: int) -> None:
        self._enclave.write_untrusted(slot_addr, value.to_bytes(8, "little"))

    def _read_entry(self, entry_addr: int) -> tuple[int, int, bytes]:
        """Read one entry; returns (next_ptr, hint, record blob)."""
        prefix = self._enclave.read_untrusted(entry_addr, _ENTRY_PREFIX.size + 12)
        next_ptr, hint = _ENTRY_PREFIX.unpack_from(prefix)
        red_ptr, k_len, v_len = self._codec.parse_header(
            prefix[_ENTRY_PREFIX.size :]
        )
        blob = self._enclave.read_untrusted(
            entry_addr + _ENTRY_PREFIX.size, record_size(k_len, v_len)
        )
        return next_ptr, hint, blob

    def _entry_bytes(self, next_ptr: int, hint: int, blob: bytes) -> bytes:
        return _ENTRY_PREFIX.pack(next_ptr, hint) + blob

    # -- chain walk ---------------------------------------------------------------------

    def _walk(self, key: bytes):
        """Yield (slot_addr, entry_addr, next_ptr, hint, blob) along the chain.

        ``slot_addr`` is the address of the pointer that references
        ``entry_addr`` — exactly the entry's AdField.
        """
        _, slot_addr, _ = self._bucket_slot(key)
        entry_addr = self._read_ptr(slot_addr)
        while entry_addr != _NULL:
            next_ptr, hint, blob = self._read_entry(entry_addr)
            yield slot_addr, entry_addr, next_ptr, hint, blob
            slot_addr = entry_addr  # next field sits at offset 0
            entry_addr = next_ptr

    def _find(self, key: bytes, verify_miss: bool = True):
        """Locate a key; returns (slot_addr, entry_addr, next_ptr, blob, opened).

        On a miss with ``verify_miss`` (the Get/Delete path), the whole
        walked chain is verified before concluding the key is absent: each
        entry's MAC binds it to the slot that pointed at it (AdField), so a
        chain redirected to hide a key — the Fig 7 slot swap — raises
        :class:`IntegrityError` instead of lying with KeyNotFoundError.  A
        chain shorter than the enclave-recorded entry count raises
        :class:`DeletionError`.  Put's lookup skips the miss verification:
        an insert does not assert absence to a client, and the entry it adds
        is bound to wherever the chain tail really is.
        """
        bucket, _, want_hint = self._bucket_slot(key)
        walked = []
        for slot_addr, entry_addr, next_ptr, hint, blob in self._walk(key):
            walked.append((slot_addr, blob))
            if hint != want_hint:
                continue
            opened = self._codec.open(blob, ad_field=slot_addr)
            if self._enclave.compare(opened.key, key):
                return slot_addr, entry_addr, next_ptr, blob, opened
        self._enclave.epc_touch(_COUNT_BYTES)
        if len(walked) != self._counts[bucket]:
            raise DeletionError(
                f"bucket {bucket} has {len(walked)} entries but the enclave "
                f"recorded {self._counts[bucket]}: unauthorized deletion "
                "detected"
            )
        if verify_miss:
            for slot_addr, blob in walked:
                self._codec.open(blob, ad_field=slot_addr)
        raise KeyNotFoundError(key)

    def _walk_dummy_buckets(self) -> None:
        """Read the chains of pseudo-random buckets (frequency blurring)."""
        for _ in range(self._dummy_bucket_reads):
            # xorshift PRG inside the enclave; the observer cannot predict
            # or distinguish dummy bucket choices from real ones.
            self._dummy_state ^= (self._dummy_state << 13) & (2**64 - 1)
            self._dummy_state ^= self._dummy_state >> 7
            self._dummy_state ^= (self._dummy_state << 17) & (2**64 - 1)
            bucket = self._dummy_state % self._n_buckets
            entry_addr = self._read_ptr(self._bucket_base + bucket * 8)
            while entry_addr != _NULL:
                prefix = self._enclave.read_untrusted(
                    entry_addr, _ENTRY_PREFIX.size
                )
                entry_addr, _ = _ENTRY_PREFIX.unpack_from(prefix)

    # -- public operations -----------------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        value = self._find(key)[4].value
        self._walk_dummy_buckets()
        return value

    def put(self, key: bytes, value: bytes) -> None:
        try:
            slot_addr, entry_addr, next_ptr, blob, opened = self._find(
                key, verify_miss=False
            )
        except KeyNotFoundError:
            self._insert_new(key, value)
            return
        self._update_existing(key, value, slot_addr, entry_addr, next_ptr,
                              blob, opened.red_ptr)

    def delete(self, key: bytes) -> None:
        slot_addr, entry_addr, next_ptr, blob, opened = self._find(key)
        self._splice_out(key, slot_addr, entry_addr, next_ptr, blob)
        if self._free_counter is not None:
            self._free_counter(opened.red_ptr)
        bucket, _, _ = self._bucket_slot(key)
        self._enclave.epc_touch(_COUNT_BYTES)
        self._counts[bucket] -= 1
        self._n_entries -= 1

    # -- internals -----------------------------------------------------------------------------

    def _tail_slot(self, key: bytes) -> int:
        """Address of the last pointer slot in the key's chain."""
        _, slot_addr, _ = self._bucket_slot(key)
        entry_addr = self._read_ptr(slot_addr)
        while entry_addr != _NULL:
            slot_addr = entry_addr
            entry_addr = self._read_ptr(entry_addr)
        return slot_addr

    def _insert_new(self, key: bytes, value: bytes,
                    red_ptr: Optional[int] = None) -> None:
        if red_ptr is None:
            red_ptr = self._fetch_counter()
        tail_slot = self._tail_slot(key)
        blob = self._codec.seal(key, value, red_ptr, ad_field=tail_slot)
        _, _, hint = self._bucket_slot(key)
        entry = self._entry_bytes(_NULL, hint, blob)
        entry_addr = self._allocator.alloc(len(entry))
        self._enclave.write_untrusted(entry_addr, entry)
        self._write_ptr(tail_slot, entry_addr)
        bucket, _, _ = self._bucket_slot(key)
        self._enclave.epc_touch(_COUNT_BYTES)
        self._counts[bucket] += 1
        self._n_entries += 1

    def _update_existing(self, key: bytes, value: bytes, slot_addr: int,
                         entry_addr: int, next_ptr: int, old_blob: bytes,
                         red_ptr: int) -> None:
        """Re-seal an existing key, reusing its counter (Section V-D step 2)."""
        old_block = self._allocator.block_size_of(_ENTRY_PREFIX.size + len(old_blob))
        new_entry_size = _ENTRY_PREFIX.size + record_size(len(key), len(value))
        if new_entry_size <= old_block:
            # Same block: rewrite in place; AdField (slot_addr) is unchanged.
            new_blob = self._codec.seal(key, value, red_ptr, ad_field=slot_addr)
            _, _, hint = self._bucket_slot(key)
            self._enclave.write_untrusted(
                entry_addr, self._entry_bytes(next_ptr, hint, new_blob)
            )
            return
        # Larger value: splice the old entry out, then re-insert at the tail.
        self._splice_out(key, slot_addr, entry_addr, next_ptr, old_blob)
        tail_slot = self._tail_slot(key)
        resealed = self._codec.seal(key, value, red_ptr, ad_field=tail_slot)
        _, _, hint = self._bucket_slot(key)
        entry = self._entry_bytes(_NULL, hint, resealed)
        new_addr = self._allocator.alloc(len(entry))
        self._enclave.write_untrusted(new_addr, entry)
        self._write_ptr(tail_slot, new_addr)

    def _splice_out(self, key: bytes, slot_addr: int, entry_addr: int,
                    next_ptr: int, blob: bytes) -> None:
        """Unlink an entry; re-bind the successor to its new pointer slot."""
        self._write_ptr(slot_addr, next_ptr)
        if next_ptr != _NULL:
            succ_next, succ_hint, succ_blob = self._read_entry(next_ptr)
            rebound = self._codec.reseal_ad_field(
                succ_blob, old_ad=entry_addr, new_ad=slot_addr
            )
            self._enclave.write_untrusted(
                next_ptr, self._entry_bytes(succ_next, succ_hint, rebound)
            )
        self._allocator.free(entry_addr, _ENTRY_PREFIX.size + len(blob))

    # -- iteration / audit ---------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n_entries

    def keys(self) -> Iterator[bytes]:
        for bucket in range(self._n_buckets):
            slot_addr = self._bucket_base + bucket * 8
            entry_addr = self._read_ptr(slot_addr)
            while entry_addr != _NULL:
                next_ptr, _, blob = self._read_entry(entry_addr)
                opened = self._codec.open(blob, ad_field=slot_addr)
                yield opened.key
                slot_addr = entry_addr
                entry_addr = next_ptr

    def audit(self) -> None:
        """Full verified scan; checks every bucket count (DeletionError on lie)."""
        for bucket in range(self._n_buckets):
            slot_addr = self._bucket_base + bucket * 8
            entry_addr = self._read_ptr(slot_addr)
            seen = 0
            while entry_addr != _NULL:
                next_ptr, _, blob = self._read_entry(entry_addr)
                self._codec.open(blob, ad_field=slot_addr)
                seen += 1
                slot_addr = entry_addr
                entry_addr = next_ptr
            if seen != self._counts[bucket]:
                raise DeletionError(
                    f"bucket {bucket}: {seen} entries, recorded "
                    f"{self._counts[bucket]}"
                )

    def epc_bytes(self) -> int:
        return self._n_buckets * _COUNT_BYTES + 8

    def chain_length(self, key: bytes) -> int:
        """Entries in the key's bucket (tests & ShieldStore comparisons)."""
        bucket, _, _ = self._bucket_slot(key)
        return self._counts[bucket]
