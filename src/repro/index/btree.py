"""Aria-T: B-tree index over sealed records (paper Section V-C).

The tree lives entirely in untrusted memory; only the root pointer, the tree
height, and the entry count are EPC state.  Node layout::

    is_leaf (1) | n_keys (2) | pad (5) | entry_ptrs[max_keys] x 8
                                       | child_ptrs[max_keys + 1] x 8

Entries are pointers to sealed records (:mod:`repro.core.record`), kept in
plaintext-key order.  Every comparison during a descent must verify and
*decrypt* a record — the paper's explanation for Aria-T being an order of
magnitude slower than Aria-H, which skips decryption via key hints.

**Index protection.**  Each record's AdField is the address of the B-tree
node containing its entry pointer.  Swapping two entry pointers between
nodes relocates both records under foreign anchors, so both MACs fail (the
Fig 7 attack for trees).  The paper binds to the parent's child-slot address
instead; we bind to the node address — a documented substitution (DESIGN.md)
that detects the same cross-node pointer-swap and forgery attacks without
resealing entire subtrees whenever a child-slot array shifts.  In-node
reordering is undetected in both designs.  Record replay is caught by the
counter freshness the Merkle tree guarantees.

**Unauthorized-deletion detection.**  The enclave records the tree height
(the paper's "number of tree nodes from the root to each leaf"); a miss
whose descent did not traverse exactly ``height`` nodes raises
:class:`DeletionError`.  Deletion uses the full CLRS algorithm (borrow /
merge) so the tree stays uniformly ``height`` deep at all times.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from repro.alloc.heap import Allocator
from repro.core.record import RecordCodec, record_size
from repro.errors import ConfigurationError, DeletionError, KeyNotFoundError
from repro.index.base import SecureIndex
from repro.sgx.enclave import Enclave

_HEADER = struct.Struct("<B2x5x")  # is_leaf; n_keys packed separately for clarity
_NULL = 0


class _Node:
    """A parsed B-tree node; mutated in memory, written back explicitly."""

    __slots__ = ("addr", "is_leaf", "entries", "children")

    def __init__(self, addr: int, is_leaf: bool, entries: list, children: list):
        self.addr = addr
        self.is_leaf = is_leaf
        self.entries = entries      # record addresses, plaintext-key order
        self.children = children    # child node addresses (len == entries + 1)

    @property
    def n(self) -> int:
        return len(self.entries)


class AriaBTreeIndex(SecureIndex):
    """CLRS B-tree of minimum degree ``t`` over sealed records."""

    name = "btree"
    EPC_CONSUMER = "btree_index"

    def __init__(
        self,
        enclave: Enclave,
        codec: RecordCodec,
        allocator: Allocator,
        *,
        order: int = 15,
        fetch_counter: callable = None,
        free_counter: Optional[callable] = None,
    ):
        if order < 3 or order % 2 == 0:
            raise ConfigurationError(
                f"btree order (max keys) must be odd and >= 3, got {order}"
            )
        self._t = (order + 1) // 2       # minimum degree
        self._max_keys = order           # 2t - 1
        self._enclave = enclave
        self._codec = codec
        self._allocator = allocator
        self._fetch_counter = fetch_counter
        self._free_counter = free_counter
        self._node_size = 8 + self._max_keys * 8 + (self._max_keys + 1) * 8
        # EPC state: root pointer, height, entry count (Section V-C).
        enclave.epc.reserve(self.EPC_CONSUMER, 8 + 4 + 8)
        self._root = self._alloc_node(is_leaf=True).addr
        self._height = 1
        self._n_entries = 0

    # -- node serialization -----------------------------------------------------

    def _alloc_node(self, *, is_leaf: bool) -> _Node:
        addr = self._allocator.alloc(self._node_size)
        node = _Node(addr, is_leaf, [], [])
        self._write_node(node)
        return node

    def _free_node(self, node: _Node) -> None:
        self._allocator.free(node.addr, self._node_size)

    def _read_node(self, addr: int) -> _Node:
        raw = self._enclave.read_untrusted(addr, self._node_size)
        is_leaf = bool(raw[0])
        n_keys = int.from_bytes(raw[1:3], "little")
        if n_keys > self._max_keys:
            raise DeletionError(
                f"B-tree node at {addr:#x} claims {n_keys} keys: corrupted"
            )
        entries = []
        base = 8
        for i in range(n_keys):
            entries.append(int.from_bytes(raw[base + 8 * i : base + 8 * i + 8],
                                          "little"))
        children = []
        cbase = 8 + self._max_keys * 8
        if not is_leaf:
            for i in range(n_keys + 1):
                children.append(
                    int.from_bytes(raw[cbase + 8 * i : cbase + 8 * i + 8],
                                   "little")
                )
        return _Node(addr, is_leaf, entries, children)

    def _write_node(self, node: _Node) -> None:
        raw = bytearray(self._node_size)
        raw[0] = 1 if node.is_leaf else 0
        raw[1:3] = node.n.to_bytes(2, "little")
        base = 8
        for i, ptr in enumerate(node.entries):
            raw[base + 8 * i : base + 8 * i + 8] = ptr.to_bytes(8, "little")
        cbase = 8 + self._max_keys * 8
        for i, ptr in enumerate(node.children):
            raw[cbase + 8 * i : cbase + 8 * i + 8] = ptr.to_bytes(8, "little")
        self._enclave.write_untrusted(node.addr, bytes(raw))

    # -- record access ------------------------------------------------------------

    def _read_record(self, record_addr: int) -> bytes:
        header = self._enclave.read_untrusted(record_addr, 12)
        _, k_len, v_len = self._codec.parse_header(header)
        return self._enclave.read_untrusted(record_addr, record_size(k_len, v_len))

    def _record_key(self, record_addr: int, node_addr: int) -> bytes:
        """Verify + decrypt a record during a descent; returns its key."""
        blob = self._read_record(record_addr)
        return self._codec.open(blob, ad_field=node_addr).key

    def _move_record(self, record_addr: int, old_node: int, new_node: int) -> None:
        """Re-bind a record to a new containing node (split/borrow/merge)."""
        blob = self._read_record(record_addr)
        rebound = self._codec.reseal_ad_field(blob, old_ad=old_node,
                                              new_ad=new_node)
        self._enclave.write_untrusted(record_addr, rebound)

    # -- search helpers ---------------------------------------------------------------

    def _locate_in_node(self, node: _Node, key: bytes) -> tuple[int, bool]:
        """Binary search; returns (index, found).

        ``index`` is the position of the key if found, else the child index
        to descend into.  Each probed entry is verified and decrypted.
        """
        lo, hi = 0, node.n
        while lo < hi:
            mid = (lo + hi) // 2
            probe = self._record_key(node.entries[mid], node.addr)
            if probe == key:
                return mid, True
            if probe < key:
                lo = mid + 1
            else:
                hi = mid
        return lo, False

    def _release_record(self, record_addr: int) -> None:
        """Free a record's heap block and return its counter."""
        blob = self._read_record(record_addr)
        red_ptr, k_len, v_len = self._codec.parse_header(blob)
        self._allocator.free(record_addr, record_size(k_len, v_len))
        if self._free_counter is not None:
            self._free_counter(red_ptr)
        self._enclave.epc_touch(8)
        self._n_entries -= 1

    # -- public operations ---------------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        node = self._read_node(self._root)
        depth = 1
        while True:
            index, found = self._locate_in_node(node, key)
            if found:
                blob = self._read_record(node.entries[index])
                return self._codec.open(blob, ad_field=node.addr).value
            if node.is_leaf:
                self._check_depth(depth)
                raise KeyNotFoundError(key)
            child = node.children[index]
            if child == _NULL:
                raise DeletionError(
                    "B-tree descent hit a null child pointer: index attacked"
                )
            node = self._read_node(child)
            depth += 1

    def _check_depth(self, depth: int) -> None:
        self._enclave.epc_touch(4)
        if depth != self._height:
            raise DeletionError(
                f"descent traversed {depth} nodes but the enclave recorded a "
                f"height of {self._height}: unauthorized deletion detected"
            )

    def put(self, key: bytes, value: bytes) -> None:
        root = self._read_node(self._root)
        if root.n == self._max_keys:
            new_root = self._alloc_node(is_leaf=False)
            new_root.children = [root.addr]
            self._split_child(new_root, 0, root)
            self._root = new_root.addr
            self._enclave.epc_touch(8)
            self._height += 1
            root = new_root
        self._insert_nonfull(root, key, value)

    def _insert_nonfull(self, node: _Node, key: bytes, value: bytes) -> None:
        index, found = self._locate_in_node(node, key)
        if found:
            self._update_in_place(node, index, key, value)
            return
        if node.is_leaf:
            red_ptr = self._fetch_counter()
            blob = self._codec.seal(key, value, red_ptr, ad_field=node.addr)
            record_addr = self._allocator.alloc(len(blob))
            self._enclave.write_untrusted(record_addr, blob)
            node.entries.insert(index, record_addr)
            self._write_node(node)
            self._enclave.epc_touch(8)
            self._n_entries += 1
            return
        child = self._read_node(node.children[index])
        if child.n == self._max_keys:
            self._split_child(node, index, child)
            # The promoted median may change which side the key belongs to.
            median_key = self._record_key(node.entries[index], node.addr)
            if key == median_key:
                self._update_in_place(node, index, key, value)
                return
            if key > median_key:
                index += 1
            child = self._read_node(node.children[index])
        self._insert_nonfull(child, key, value)

    def _update_in_place(self, node: _Node, index: int, key: bytes,
                         value: bytes) -> None:
        """Overwrite an existing key, reusing its counter (Section V-D)."""
        old_addr = node.entries[index]
        old_blob = self._read_record(old_addr)
        red_ptr, k_len, v_len = self._codec.parse_header(old_blob)
        new_blob = self._codec.seal(key, value, red_ptr, ad_field=node.addr)
        old_block = self._allocator.block_size_of(record_size(k_len, v_len))
        if len(new_blob) <= old_block:
            self._enclave.write_untrusted(old_addr, new_blob)
            return
        new_addr = self._allocator.alloc(len(new_blob))
        self._enclave.write_untrusted(new_addr, new_blob)
        node.entries[index] = new_addr
        self._write_node(node)
        self._allocator.free(old_addr, record_size(k_len, v_len))

    def _split_child(self, parent: _Node, index: int, child: _Node) -> None:
        """Split a full child; the median entry rises into the parent."""
        t = self._t
        sibling = self._alloc_node(is_leaf=child.is_leaf)
        # Upper t-1 entries move to the sibling (re-bound to the new node).
        moving = child.entries[t:]
        for record_addr in moving:
            self._move_record(record_addr, child.addr, sibling.addr)
        sibling.entries = moving
        median = child.entries[t - 1]
        self._move_record(median, child.addr, parent.addr)
        child.entries = child.entries[: t - 1]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.entries.insert(index, median)
        parent.children.insert(index + 1, sibling.addr)
        self._write_node(child)
        self._write_node(sibling)
        self._write_node(parent)

    # -- deletion (full CLRS: borrow / merge keeps the height uniform) -------------

    def delete(self, key: bytes) -> None:
        root = self._read_node(self._root)
        removed_addr, _ = self._delete_from(root, key, depth=1)
        self._release_record(removed_addr)
        root = self._read_node(self._root)
        if root.n == 0 and not root.is_leaf:
            # Shrink: the root's only child becomes the new root.
            self._root = root.children[0]
            self._enclave.epc_touch(8)
            self._height -= 1
            self._free_node(root)

    def _delete_from(self, node: _Node, key: bytes,
                     depth: int) -> tuple[int, int]:
        """Unlink ``key``'s entry from the subtree rooted at ``node``.

        Returns (record address, address of the node it was removed from).
        The caller decides whether to release the record — the pred/succ
        replacement path re-binds it into an internal slot instead.
        """
        t = self._t
        index, found = self._locate_in_node(node, key)
        if found:
            if node.is_leaf:
                record_addr = node.entries.pop(index)
                self._write_node(node)
                return record_addr, node.addr
            return self._delete_internal(node, index, depth)
        if node.is_leaf:
            self._check_depth(depth)
            raise KeyNotFoundError(key)
        child = self._read_node(node.children[index])
        if child.n < t:
            child, index = self._fortify_child(node, index, child)
        return self._delete_from(child, key, depth + 1)

    def _delete_internal(self, node: _Node, index: int,
                         depth: int) -> tuple[int, int]:
        """CLRS cases 2a/2b/2c for a key found in an internal node."""
        t = self._t
        victim_addr = node.entries[index]
        left = self._read_node(node.children[index])
        if left.n >= t:
            repl_key = self._extreme_key(left, rightmost=True)
            repl_addr, repl_node = self._delete_from(left, repl_key, depth + 1)
        else:
            right = self._read_node(node.children[index + 1])
            if right.n >= t:
                repl_key = self._extreme_key(right, rightmost=False)
                repl_addr, repl_node = self._delete_from(right, repl_key,
                                                         depth + 1)
            else:
                # Both neighbours minimal: merge around the key, recurse.
                victim_key = self._record_key(victim_addr, node.addr)
                merged = self._merge_children(node, index, left, right)
                return self._delete_from(merged, victim_key, depth + 1)
        # Install the replacement in our slot, bound to this node.
        self._move_record(repl_addr, repl_node, node.addr)
        node = self._read_node(node.addr)  # children may have restructured
        node.entries[index] = repl_addr
        self._write_node(node)
        return victim_addr, node.addr

    def _extreme_key(self, node: _Node, *, rightmost: bool) -> bytes:
        """Plaintext key of a subtree's rightmost/leftmost record."""
        while not node.is_leaf:
            child = node.children[-1 if rightmost else 0]
            node = self._read_node(child)
        if node.n == 0:
            raise DeletionError("empty leaf on extreme path: index corrupted")
        return self._record_key(node.entries[-1 if rightmost else 0], node.addr)

    def _fortify_child(self, parent: _Node, index: int,
                       child: _Node) -> tuple[_Node, int]:
        """Ensure ``child`` has >= t keys by borrowing or merging (CLRS)."""
        t = self._t
        if index > 0:
            left = self._read_node(parent.children[index - 1])
            if left.n >= t:
                self._borrow_from_left(parent, index, child, left)
                return child, index
        if index < parent.n:
            right = self._read_node(parent.children[index + 1])
            if right.n >= t:
                self._borrow_from_right(parent, index, child, right)
                return child, index
        if index > 0:
            left = self._read_node(parent.children[index - 1])
            merged = self._merge_children(parent, index - 1, left, child)
            return merged, index - 1
        right = self._read_node(parent.children[index + 1])
        merged = self._merge_children(parent, index, child, right)
        return merged, index

    def _borrow_from_left(self, parent: _Node, index: int, child: _Node,
                          left: _Node) -> None:
        # parent separator drops into child; left's last entry rises.
        separator = parent.entries[index - 1]
        self._move_record(separator, parent.addr, child.addr)
        child.entries.insert(0, separator)
        rising = left.entries.pop()
        self._move_record(rising, left.addr, parent.addr)
        parent.entries[index - 1] = rising
        if not child.is_leaf:
            child.children.insert(0, left.children.pop())
        self._write_node(left)
        self._write_node(child)
        self._write_node(parent)

    def _borrow_from_right(self, parent: _Node, index: int, child: _Node,
                           right: _Node) -> None:
        separator = parent.entries[index]
        self._move_record(separator, parent.addr, child.addr)
        child.entries.append(separator)
        rising = right.entries.pop(0)
        self._move_record(rising, right.addr, parent.addr)
        parent.entries[index] = rising
        if not child.is_leaf:
            child.children.append(right.children.pop(0))
        self._write_node(right)
        self._write_node(child)
        self._write_node(parent)

    def _merge_children(self, parent: _Node, index: int, left: _Node,
                        right: _Node) -> _Node:
        """Fold parent.entries[index] and the right child into the left."""
        separator = parent.entries.pop(index)
        parent.children.pop(index + 1)
        self._move_record(separator, parent.addr, left.addr)
        left.entries.append(separator)
        for record_addr in right.entries:
            self._move_record(record_addr, right.addr, left.addr)
        left.entries.extend(right.entries)
        if not left.is_leaf:
            left.children.extend(right.children)
        self._write_node(left)
        self._write_node(parent)
        self._free_node(right)
        return left

    # -- iteration / audit -------------------------------------------------------------

    def __len__(self) -> int:
        return self._n_entries

    def keys(self) -> Iterator[bytes]:
        yield from self._iterate(self._read_node(self._root))

    def _iterate(self, node: _Node) -> Iterator[bytes]:
        for i, record_addr in enumerate(node.entries):
            if not node.is_leaf:
                yield from self._iterate(self._read_node(node.children[i]))
            yield self._record_key(record_addr, node.addr)
        if not node.is_leaf and node.children:
            yield from self._iterate(self._read_node(node.children[-1]))

    def range_scan(self, lo: bytes, hi: bytes) -> list[tuple[bytes, bytes]]:
        """All (key, value) pairs with lo <= key < hi, in order.

        Range queries are what the tree index exists for (Section III); the hash
        index cannot serve them.
        """
        results: list[tuple[bytes, bytes]] = []
        self._scan_into(self._read_node(self._root), lo, hi, results)
        return results

    def _scan_into(self, node: _Node, lo: bytes, hi: bytes,
                   out: list) -> None:
        for i, record_addr in enumerate(node.entries):
            blob = self._read_record(record_addr)
            opened = self._codec.open(blob, ad_field=node.addr)
            # Child i holds keys smaller than entry i: visit it only if the
            # range can reach below this entry.
            if not node.is_leaf and opened.key > lo:
                self._scan_into(self._read_node(node.children[i]), lo, hi, out)
            if lo <= opened.key < hi:
                out.append((opened.key, opened.value))
            if opened.key >= hi:
                return  # everything to the right is out of range
        if not node.is_leaf and node.children:
            self._scan_into(self._read_node(node.children[-1]), lo, hi, out)

    def audit(self) -> None:
        """Verified full traversal; checks order, depth uniformity, count."""
        count = self._audit_node(self._read_node(self._root), 1, None, None)
        if count != self._n_entries:
            raise DeletionError(
                f"tree holds {count} entries but the enclave recorded "
                f"{self._n_entries}"
            )

    def _audit_node(self, node: _Node, depth: int, lo: Optional[bytes],
                    hi: Optional[bytes]) -> int:
        if node.is_leaf and depth != self._height:
            raise DeletionError("leaf at wrong depth: height invariant broken")
        keys = [self._record_key(addr, node.addr) for addr in node.entries]
        if keys != sorted(keys):
            raise DeletionError("entries out of order inside a node")
        for probe in keys:
            if (lo is not None and probe <= lo) or (hi is not None and probe >= hi):
                raise DeletionError("entry violates subtree bounds")
        count = len(keys)
        if not node.is_leaf:
            bounds = [lo] + keys + [hi]
            for i, child in enumerate(node.children):
                count += self._audit_node(
                    self._read_node(child), depth + 1, bounds[i], bounds[i + 1]
                )
        return count

    def epc_bytes(self) -> int:
        return 8 + 4 + 8

    # -- state capture / restore (enclave restart) ----------------------------

    def capture_state(self) -> dict:
        return {"kind": self.name, "root": self._root,
                "height": self._height, "n_entries": self._n_entries}

    def restore_state(self, state: dict) -> None:
        self._root = state["root"]
        self._height = state["height"]
        self._n_entries = state["n_entries"]

    @property
    def height(self) -> int:
        return self._height
