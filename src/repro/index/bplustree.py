"""Aria-B+: the B+-tree index the paper leaves as future work (Section VII).

    "Aria can also support B+-tree-based index by encrypting key and value
    respectively.  We leave it our future work to incorporate B+-tree into
    Aria."

This module incorporates it.  The difference from Aria-T (:mod:`btree`):

* **Leaves** hold the sealed KV records; **internal nodes** hold *separator
  records* that seal only a key — so a descent decrypts short separators
  instead of full KV records (the "encrypting key and value respectively"
  idea), and all data sits at one uniform depth.
* **Leaf chaining**: each leaf carries a next-leaf pointer, so range scans
  walk the leaf level without re-descending.  The chain pointer is
  untrusted; scans defend it by verifying every returned record against its
  containing leaf (AdField) and enforcing ascending key order across hops —
  a redirected pointer either fails a MAC or breaks the order.

Separator records use the same counter + CMAC machinery as KV records (a
separator owns its own RedPtr), so the Merkle tree/Secure Cache protect them
identically.  Separators are *copies* of keys (classic B+-tree): deleting a
KV pair does not need to touch separators.

Deletion is leaf-local (lazy): entries leave their leaf, but the tree skeleton
only shrinks when the root empties.  The enclave-held height therefore stays
an exact invariant for the truncated-descent check, and the audit verifies
global counts.  (Production B+-trees routinely defer structural shrink the
same way.)
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from repro.alloc.heap import Allocator
from repro.core.record import RecordCodec, record_size
from repro.errors import ConfigurationError, DeletionError, KeyNotFoundError
from repro.index.base import SecureIndex
from repro.sgx.enclave import Enclave

_NULL = 0


class _Node:
    __slots__ = ("addr", "is_leaf", "entries", "children", "next_leaf")

    def __init__(self, addr: int, is_leaf: bool, entries: list,
                 children: list, next_leaf: int = _NULL):
        self.addr = addr
        self.is_leaf = is_leaf
        # Leaves: entries = KV record addrs.  Internal: entries = separator
        # record addrs; children has len(entries) + 1 node addrs.
        self.entries = entries
        self.children = children
        self.next_leaf = next_leaf

    @property
    def n(self) -> int:
        return len(self.entries)


class AriaBPlusTreeIndex(SecureIndex):
    """B+-tree over sealed records with sealed separators and leaf links."""

    name = "bplustree"
    EPC_CONSUMER = "bplustree_index"

    def __init__(
        self,
        enclave: Enclave,
        codec: RecordCodec,
        allocator: Allocator,
        *,
        order: int = 16,
        fetch_counter: callable = None,
        free_counter: Optional[callable] = None,
    ):
        if order < 4:
            raise ConfigurationError(f"b+tree order must be >= 4, got {order}")
        self._order = order              # max entries per node
        self._enclave = enclave
        self._codec = codec
        self._allocator = allocator
        self._fetch_counter = fetch_counter
        self._free_counter = free_counter
        # Layout: is_leaf(1) n(2) pad(5) next_leaf(8) entries[order]*8
        #         children[order+1]*8 (internal only; space always reserved)
        self._node_size = 16 + order * 8 + (order + 1) * 8
        enclave.epc.reserve(self.EPC_CONSUMER, 8 + 4 + 8)
        self._root = self._alloc_node(is_leaf=True).addr
        self._height = 1
        self._n_entries = 0

    # -- node serialization ------------------------------------------------------

    def _alloc_node(self, *, is_leaf: bool) -> _Node:
        addr = self._allocator.alloc(self._node_size)
        node = _Node(addr, is_leaf, [], [])
        self._write_node(node)
        return node

    def _read_node(self, addr: int) -> _Node:
        raw = self._enclave.read_untrusted(addr, self._node_size)
        is_leaf = bool(raw[0])
        n = int.from_bytes(raw[1:3], "little")
        if n > self._order:
            raise DeletionError(f"b+tree node at {addr:#x} corrupted")
        next_leaf = int.from_bytes(raw[8:16], "little")
        base = 16
        entries = [
            int.from_bytes(raw[base + 8 * i : base + 8 * i + 8], "little")
            for i in range(n)
        ]
        children = []
        if not is_leaf:
            cbase = 16 + self._order * 8
            children = [
                int.from_bytes(raw[cbase + 8 * i : cbase + 8 * i + 8],
                               "little")
                for i in range(n + 1)
            ]
        return _Node(addr, is_leaf, entries, children, next_leaf)

    def _write_node(self, node: _Node) -> None:
        raw = bytearray(self._node_size)
        raw[0] = 1 if node.is_leaf else 0
        raw[1:3] = node.n.to_bytes(2, "little")
        raw[8:16] = node.next_leaf.to_bytes(8, "little")
        base = 16
        for i, ptr in enumerate(node.entries):
            raw[base + 8 * i : base + 8 * i + 8] = ptr.to_bytes(8, "little")
        cbase = 16 + self._order * 8
        for i, ptr in enumerate(node.children):
            raw[cbase + 8 * i : cbase + 8 * i + 8] = ptr.to_bytes(8, "little")
        self._enclave.write_untrusted(node.addr, bytes(raw))

    # -- sealed record helpers ------------------------------------------------------

    def _read_record(self, record_addr: int) -> bytes:
        header = self._enclave.read_untrusted(record_addr, 12)
        _, k_len, v_len = self._codec.parse_header(header)
        return self._enclave.read_untrusted(record_addr,
                                            record_size(k_len, v_len))

    def _open(self, record_addr: int, node_addr: int):
        return self._codec.open(self._read_record(record_addr),
                                ad_field=node_addr)

    def _key_of(self, record_addr: int, node_addr: int) -> bytes:
        return self._open(record_addr, node_addr).key

    def _seal_separator(self, key: bytes, node_addr: int) -> int:
        """Create a separator record: a sealed key copy with its own counter."""
        red_ptr = self._fetch_counter()
        blob = self._codec.seal(key, b"", red_ptr, ad_field=node_addr)
        addr = self._allocator.alloc(len(blob))
        self._enclave.write_untrusted(addr, blob)
        return addr

    def _release(self, record_addr: int) -> None:
        blob = self._read_record(record_addr)
        red_ptr, k_len, v_len = self._codec.parse_header(blob)
        self._allocator.free(record_addr, record_size(k_len, v_len))
        if self._free_counter is not None:
            self._free_counter(red_ptr)

    def _move_record(self, record_addr: int, old_node: int,
                     new_node: int) -> None:
        blob = self._read_record(record_addr)
        rebound = self._codec.reseal_ad_field(blob, old_ad=old_node,
                                              new_ad=new_node)
        self._enclave.write_untrusted(record_addr, rebound)

    # -- search -------------------------------------------------------------------------

    def _child_index(self, node: _Node, key: bytes) -> int:
        """Binary search over separators: index of the child to descend."""
        lo, hi = 0, node.n
        while lo < hi:
            mid = (lo + hi) // 2
            separator = self._key_of(node.entries[mid], node.addr)
            if key < separator:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _descend_to_leaf(self, key: bytes) -> tuple[_Node, int]:
        """Walk to the leaf responsible for ``key``; returns (leaf, depth)."""
        node = self._read_node(self._root)
        depth = 1
        while not node.is_leaf:
            child = node.children[self._child_index(node, key)]
            if child == _NULL:
                raise DeletionError(
                    "b+tree descent hit a null child pointer: index attacked"
                )
            node = self._read_node(child)
            depth += 1
        return node, depth

    def _position_in_leaf(self, leaf: _Node, key: bytes) -> tuple[int, bool]:
        lo, hi = 0, leaf.n
        while lo < hi:
            mid = (lo + hi) // 2
            probe = self._key_of(leaf.entries[mid], leaf.addr)
            if probe == key:
                return mid, True
            if probe < key:
                lo = mid + 1
            else:
                hi = mid
        return lo, False

    def get(self, key: bytes) -> bytes:
        leaf, depth = self._descend_to_leaf(key)
        index, found = self._position_in_leaf(leaf, key)
        if not found:
            self._check_depth(depth)
            raise KeyNotFoundError(key)
        return self._open(leaf.entries[index], leaf.addr).value

    def _check_depth(self, depth: int) -> None:
        self._enclave.epc_touch(4)
        if depth != self._height:
            raise DeletionError(
                f"descent traversed {depth} nodes but the enclave recorded "
                f"a height of {self._height}: unauthorized deletion detected"
            )

    # -- insertion ----------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        path = self._path_to_leaf(key)
        leaf = path[-1]
        index, found = self._position_in_leaf(leaf, key)
        if found:
            self._update_in_place(leaf, index, key, value)
            return
        red_ptr = self._fetch_counter()
        blob = self._codec.seal(key, value, red_ptr, ad_field=leaf.addr)
        record_addr = self._allocator.alloc(len(blob))
        self._enclave.write_untrusted(record_addr, blob)
        leaf.entries.insert(index, record_addr)
        self._write_node(leaf)
        self._enclave.epc_touch(8)
        self._n_entries += 1
        if leaf.n > self._order:
            self._split_up(path)

    def _path_to_leaf(self, key: bytes) -> list:
        path = [self._read_node(self._root)]
        while not path[-1].is_leaf:
            child = path[-1].children[self._child_index(path[-1], key)]
            if child == _NULL:
                raise DeletionError("b+tree descent hit a null child pointer")
            path.append(self._read_node(child))
        return path

    def _update_in_place(self, leaf: _Node, index: int, key: bytes,
                         value: bytes) -> None:
        old_addr = leaf.entries[index]
        old_blob = self._read_record(old_addr)
        red_ptr, k_len, v_len = self._codec.parse_header(old_blob)
        new_blob = self._codec.seal(key, value, red_ptr, ad_field=leaf.addr)
        if len(new_blob) <= self._allocator.block_size_of(
                record_size(k_len, v_len)):
            self._enclave.write_untrusted(old_addr, new_blob)
            return
        new_addr = self._allocator.alloc(len(new_blob))
        self._enclave.write_untrusted(new_addr, new_blob)
        leaf.entries[index] = new_addr
        self._write_node(leaf)
        self._allocator.free(old_addr, record_size(k_len, v_len))

    def _split_up(self, path: list) -> None:
        """Split overfull nodes along the insertion path, bottom-up."""
        for level in range(len(path) - 1, -1, -1):
            node = path[level]
            if node.n <= self._order:
                break
            separator_key, new_node = self._split_node(node)
            if level == 0:
                new_root = self._alloc_node(is_leaf=False)
                new_root.children = [node.addr, new_node.addr]
                new_root.entries = [
                    self._seal_separator(separator_key, new_root.addr)
                ]
                self._write_node(new_root)
                self._root = new_root.addr
                self._enclave.epc_touch(8)
                self._height += 1
            else:
                parent = path[level - 1]
                index = parent.children.index(node.addr)
                parent.children.insert(index + 1, new_node.addr)
                parent.entries.insert(
                    index, self._seal_separator(separator_key, parent.addr)
                )
                self._write_node(parent)

    def _split_node(self, node: _Node) -> tuple[bytes, _Node]:
        """Split one overfull node; returns (separator key, right sibling)."""
        half = node.n // 2
        right = self._alloc_node(is_leaf=node.is_leaf)
        if node.is_leaf:
            # Copy-up: the separator is a *copy* of the right half's first key.
            moving = node.entries[half:]
            for record_addr in moving:
                self._move_record(record_addr, node.addr, right.addr)
            right.entries = moving
            node.entries = node.entries[:half]
            right.next_leaf = node.next_leaf
            node.next_leaf = right.addr
            separator_key = self._key_of(right.entries[0], right.addr)
        else:
            # Move-up: the median separator leaves this level entirely.
            median = node.entries[half]
            separator_key = self._key_of(median, node.addr)
            moving = node.entries[half + 1 :]
            for sep_addr in moving:
                self._move_record(sep_addr, node.addr, right.addr)
            right.entries = moving
            right.children = node.children[half + 1 :]
            node.entries = node.entries[:half]
            node.children = node.children[: half + 1]
            self._release(median)  # the key text moved up as a fresh copy
        self._write_node(node)
        self._write_node(right)
        return separator_key, right

    # -- deletion (leaf-local) -------------------------------------------------------------

    def delete(self, key: bytes) -> None:
        leaf, depth = self._descend_to_leaf(key)
        index, found = self._position_in_leaf(leaf, key)
        if not found:
            self._check_depth(depth)
            raise KeyNotFoundError(key)
        record_addr = leaf.entries.pop(index)
        self._write_node(leaf)
        self._release(record_addr)
        self._enclave.epc_touch(8)
        self._n_entries -= 1
        if self._n_entries == 0 and self._height > 1:
            self._collapse_empty_tree()

    def _collapse_empty_tree(self) -> None:
        """Reset the skeleton once every entry is gone."""
        self._free_subtree(self._read_node(self._root))
        self._root = self._alloc_node(is_leaf=True).addr
        self._enclave.epc_touch(8)
        self._height = 1

    def _free_subtree(self, node: _Node) -> None:
        if not node.is_leaf:
            for sep_addr in node.entries:
                self._release(sep_addr)
            for child in node.children:
                self._free_subtree(self._read_node(child))
        self._allocator.free(node.addr, self._node_size)

    # -- range scan via the leaf chain -------------------------------------------------------

    def range_scan(self, lo: bytes, hi: bytes) -> list:
        """All (key, value) with lo <= key < hi, walking the leaf chain.

        Every record is verified against its leaf, and keys must ascend
        across the whole walk — a redirected next-leaf pointer either fails
        a MAC or violates the order and raises.
        """
        leaf, _ = self._descend_to_leaf(lo)
        results: list = []
        previous_key: Optional[bytes] = None
        addr = leaf.addr
        while addr != _NULL:
            leaf = self._read_node(addr)
            for record_addr in leaf.entries:
                opened = self._open(record_addr, leaf.addr)
                if previous_key is not None and opened.key <= previous_key:
                    raise DeletionError(
                        "leaf chain out of order: next-leaf pointer attacked"
                    )
                previous_key = opened.key
                if opened.key >= hi:
                    return results
                if opened.key >= lo:
                    results.append((opened.key, opened.value))
            addr = leaf.next_leaf
        return results

    # -- iteration / audit --------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n_entries

    def keys(self) -> Iterator[bytes]:
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for record_addr in leaf.entries:
                yield self._key_of(record_addr, leaf.addr)
            leaf = (self._read_node(leaf.next_leaf)
                    if leaf.next_leaf != _NULL else None)

    def _leftmost_leaf(self) -> _Node:
        node = self._read_node(self._root)
        while not node.is_leaf:
            node = self._read_node(node.children[0])
        return node

    def audit(self) -> None:
        """Verified structural audit: depth, order, counts, chain coverage."""
        leaves: list = []
        self._audit_node(self._read_node(self._root), 1, None, None, leaves)
        # The leaf chain must visit exactly the audited leaves, in order.
        chained = []
        leaf = self._leftmost_leaf()
        while True:
            chained.append(leaf.addr)
            if leaf.next_leaf == _NULL:
                break
            leaf = self._read_node(leaf.next_leaf)
        if chained != leaves:
            raise DeletionError("leaf chain does not match the tree structure")
        total = 0
        keys: list = []
        for addr in leaves:
            leaf = self._read_node(addr)
            total += leaf.n
            keys.extend(self._key_of(r, leaf.addr) for r in leaf.entries)
        if total != self._n_entries:
            raise DeletionError(
                f"tree holds {total} entries but the enclave recorded "
                f"{self._n_entries}"
            )
        if keys != sorted(keys):
            raise DeletionError("leaf entries out of global order")

    def _audit_node(self, node: _Node, depth: int, lo, hi, leaves: list) -> None:
        if node.is_leaf:
            if depth != self._height:
                raise DeletionError("leaf at wrong depth")
            leaves.append(node.addr)
            return
        separators = [self._key_of(s, node.addr) for s in node.entries]
        if separators != sorted(separators):
            raise DeletionError("separators out of order")
        bounds = [lo] + separators + [hi]
        for i, child in enumerate(node.children):
            self._audit_node(self._read_node(child), depth + 1,
                             bounds[i], bounds[i + 1], leaves)

    def epc_bytes(self) -> int:
        return 8 + 4 + 8

    # -- state capture / restore (enclave restart) ----------------------------

    def capture_state(self) -> dict:
        return {"kind": self.name, "root": self._root,
                "height": self._height, "n_entries": self._n_entries}

    def restore_state(self, state: dict) -> None:
        self._root = state["root"]
        self._height = state["height"]
        self._n_entries = state["n_entries"]

    @property
    def height(self) -> int:
        return self._height
