"""The index interface Aria's decoupled design targets (paper Section V-C).

Security metadata (counters + Merkle tree + Secure Cache) is built over KV
pairs only; any index that can store 8-byte record pointers in untrusted
memory and route operations through the :class:`repro.core.record.RecordCodec`
plugs in.  Two are provided: chained hashing (Aria-H) and a B-tree (Aria-T).
"""

from __future__ import annotations

from typing import Iterator


class SecureIndex:
    """Interface: keyed access to sealed records in untrusted memory."""

    name = "abstract"

    def get(self, key: bytes) -> bytes:
        """Return the value for ``key``; raises KeyNotFoundError / DeletionError."""
        raise NotImplementedError

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key``."""
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        """Remove ``key``; raises KeyNotFoundError if absent."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self) -> Iterator[bytes]:
        """Iterate all keys (verified full scan; used by audits and tests)."""
        raise NotImplementedError

    def epc_bytes(self) -> int:
        """EPC bytes this index's trusted metadata occupies."""
        raise NotImplementedError
