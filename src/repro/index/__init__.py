"""Index schemes for Aria's decoupled design: hash table and B-tree."""

from repro.index.base import SecureIndex
from repro.index.bplustree import AriaBPlusTreeIndex
from repro.index.btree import AriaBTreeIndex
from repro.index.hashtable import AriaHashIndex

__all__ = [
    "AriaBPlusTreeIndex",
    "AriaBTreeIndex",
    "AriaHashIndex",
    "SecureIndex",
]
