"""Exception hierarchy for the Aria reproduction.

Every failure mode the paper discusses maps to a distinct exception so tests
and the attack suite can assert on the *kind* of detection that fired.
"""

from __future__ import annotations


class AriaError(Exception):
    """Base class for all errors raised by this library."""


class IntegrityError(AriaError):
    """A MAC comparison failed: data in untrusted memory was modified.

    Raised whenever a computed MAC does not match the stored MAC — for KV
    records, Merkle-tree nodes, or index connections (AdField mismatch).
    """


class ReplayError(IntegrityError):
    """A replay attack was detected.

    Stale-but-valid (data, counter, MAC) triples are caught by the Merkle
    tree over the encryption counters: the replayed counter no longer matches
    the MAC path up to the in-enclave root (or first cached ancestor).
    """


class CounterReuseError(IntegrityError):
    """The counter-area bitmap says a 'free' counter is already in use.

    The paper (SectionV-C, counter area management) treats this as evidence of
    an attack on the untrusted free-counter circular buffer.
    """


class DeletionError(IntegrityError):
    """Unauthorized deletion detected.

    A key was not found in the index although the in-enclave entry/path count
    says it must exist (SectionV-C, index protection).
    """


class KeyNotFoundError(AriaError, KeyError):
    """A Get/Delete referenced a key that is not in the store."""


class CapacityError(AriaError):
    """A fixed-size resource (EPC budget, counter area, chunk) is exhausted."""


class AllocationError(AriaError):
    """The user-space heap allocator could not satisfy a request."""


class ConfigurationError(AriaError):
    """An AriaConfig combination is invalid (e.g. arity < 2)."""


class EnclaveViolationError(AriaError):
    """Simulator misuse: untrusted code touched trusted state directly."""


class ShardCrashedError(AriaError):
    """The target enclave has been killed (fault injection / host crash).

    A crash is a *loss of the enclave*, not of untrusted memory: EPC
    contents and trust anchors are gone, and a restarted enclave comes back
    empty until it re-syncs from a live replica through the trusted path.
    """


class ReplicaUnavailableError(AriaError):
    """No live replica could serve the request (the whole group is down)."""


class ClusterTimeoutError(AriaError):
    """A cluster client timed out waiting for the server.

    Raised instead of the raw ``socket.timeout`` so callers can distinguish
    "the server hung" (retryable for idempotent reads) from protocol or
    integrity failures (never blindly retryable).
    """
