"""Exception hierarchy for the Aria reproduction.

Every failure mode the paper discusses maps to a distinct exception so tests
and the attack suite can assert on the *kind* of detection that fired.
"""

from __future__ import annotations


class AriaError(Exception):
    """Base class for all errors raised by this library."""


class IntegrityError(AriaError):
    """A MAC comparison failed: data in untrusted memory was modified.

    Raised whenever a computed MAC does not match the stored MAC — for KV
    records, Merkle-tree nodes, or index connections (AdField mismatch).
    """


class ReplayError(IntegrityError):
    """A replay attack was detected.

    Stale-but-valid (data, counter, MAC) triples are caught by the Merkle
    tree over the encryption counters: the replayed counter no longer matches
    the MAC path up to the in-enclave root (or first cached ancestor).

    The wire layer raises the same alarm for replayed session frames: a v2
    frame whose sequence number does not advance past the last one seen
    (see :mod:`repro.cluster.session`) is a recorded-and-resent frame, even
    though its MAC verifies.
    """


class CounterReuseError(IntegrityError):
    """The counter-area bitmap says a 'free' counter is already in use.

    The paper (SectionV-C, counter area management) treats this as evidence of
    an attack on the untrusted free-counter circular buffer.
    """


class DeletionError(IntegrityError):
    """Unauthorized deletion detected.

    A key was not found in the index although the in-enclave entry/path count
    says it must exist (SectionV-C, index protection).
    """


class KeyNotFoundError(AriaError, KeyError):
    """A Get/Delete referenced a key that is not in the store."""


class CapacityError(AriaError):
    """A fixed-size resource (EPC budget, counter area, chunk) is exhausted."""


class AllocationError(AriaError):
    """The user-space heap allocator could not satisfy a request."""


class ConfigurationError(AriaError):
    """An AriaConfig combination is invalid (e.g. arity < 2)."""


class UnknownFaultKindError(ConfigurationError, ValueError):
    """A FaultPlan/FaultEvent named a fault kind that does not exist.

    A typo'd kind used to build an event that silently never fires; it is
    rejected at construction instead.  Inherits ``ValueError`` for callers
    that predate the typed :class:`AriaError` tree.
    """


class PlanRejectedError(ConfigurationError):
    """A proposed topology change violated a reconfiguration constraint.

    Raised by the :class:`~repro.cluster.elastic.ReconfigPlanner` when a
    proposed delta (shard add/remove, replication change, vnode moves)
    fails one of its cross-layer constraint models *before* anything is
    applied — the model-checked half of elastic scale-out.  ``constraint``
    names the violated model (``"epc_budget"``, ``"replication_floor"``,
    ``"durability_continuity"``, ``"tenant_quota"``, ``"migration_cost"``,
    or ``"topology"`` for structurally invalid deltas), so operators and
    tests can assert on *which* model refused, not just that one did.
    """

    def __init__(self, message: str, *, constraint: str = "topology"):
        super().__init__(message)
        #: The violated constraint model's name.
        self.constraint = constraint


class UnknownBackendError(ConfigurationError, ValueError):
    """A shard-backend name did not resolve to a registered backend.

    Inherits ``ValueError`` so pre-existing ``except ValueError`` handlers
    around :func:`repro.cluster.backend.resolve_backend` keep working.
    """


class EnclaveViolationError(AriaError):
    """Simulator misuse: untrusted code touched trusted state directly."""


class ShardCrashedError(AriaError):
    """The target enclave has been killed (fault injection / host crash).

    A crash is a *loss of the enclave*, not of untrusted memory: EPC
    contents and trust anchors are gone, and a restarted enclave comes back
    empty until it re-syncs from a live replica through the trusted path.
    """


class ShardUnreachableError(ShardCrashedError):
    """The shard's host is alive but unreachable (network partition).

    Distinct from a crash: the enclave, its keys and its state are
    presumed intact on the far side of the partition — frames are merely
    black-holed (or connects time out) until the link heals.  Inherits
    :class:`ShardCrashedError` so the replication layer's existing
    failover treats an unreachable replica exactly like a dead one for
    serving purposes; the health monitor, however, *reconnects* to a
    healed partition instead of rebuilding an empty enclave.
    """


class ReplicaUnavailableError(AriaError):
    """No live replica could serve the request (the whole group is down)."""


class OverloadedError(AriaError):
    """The server shed this request to protect itself (admission control).

    Overload shedding is a *policy* outcome, not a failure of the shed
    request: nothing was executed, nothing was lost, and the server is
    telling the client exactly when to come back via ``retry_after``
    (seconds).  Raised client-side when a response carries
    ``STATUS_OVERLOADED`` and the client's retry budget (or deadline) does
    not allow another attempt.
    """

    def __init__(self, message: str = "server overloaded",
                 *, retry_after: float = 0.0):
        super().__init__(message)
        #: Server hint: seconds to wait before retrying (0.0 = no hint).
        self.retry_after = float(retry_after)


class DeadlineExceededError(OverloadedError):
    """The caller's deadline budget ran out before the work could finish.

    Inherits :class:`OverloadedError` because a blown deadline is shed the
    same way server-side (``STATUS_OVERLOADED`` with a ``retry_after``
    hint), and client-side both mean "this attempt did not execute".
    Distinct type so callers can tell "the cluster refused" from "my own
    budget expired" — e.g. when a retry sleep would overrun the deadline.
    """


class ClusterTimeoutError(AriaError):
    """A cluster client timed out waiting for the server.

    Raised instead of the raw ``socket.timeout`` so callers can distinguish
    "the server hung" (retryable for idempotent reads) from protocol or
    integrity failures (never blindly retryable).
    """


class ProtocolError(AriaError, ValueError):
    """A malformed wire frame (attacker-supplied bytes are never trusted).

    Inherits ``ValueError`` for backward compatibility with callers that
    predate the unified :class:`AriaError` tree.
    """


class BatchRejectedError(ProtocolError):
    """The server rejected the whole batch; none of its requests executed."""


class HandshakeError(AriaError):
    """The attested session handshake failed.

    Covers every way the v2 handshake can go wrong: truncated or malformed
    hellos, a quote that fails attestation verification, a quote bound to a
    different handshake transcript, an enclave measurement that does not
    match the client's expectation, and a server (or on-path attacker)
    answering a v2 hello with a plaintext downgrade.  A client configured
    for an encrypted session never falls back to plaintext on this error.
    """


class TamperedFrameError(IntegrityError):
    """A v2 wire frame failed AEAD authentication.

    The ciphertext, the frame header, or the tag was modified in flight;
    nothing of the payload is released to the caller.
    """


class StaleSessionError(ReplayError):
    """A frame arrived under a session id that is not live on this channel.

    Recording an encrypted frame and replaying it on a later connection
    (after a rekey) presents a valid-looking frame under a retired session
    id; it is rejected before any decryption output is produced.
    """


class ClusterConnectionError(AriaError, ConnectionError):
    """The cluster connection was closed or could not be established.

    The typed replacement for bare ``ConnectionError``/``OSError`` escaping
    :class:`~repro.cluster.netserver.ClusterClient`; inherits
    ``ConnectionError`` so existing ``except ConnectionError`` handlers keep
    working.
    """


class DurabilityError(AriaError):
    """The sealed persistence layer failed: commit, verification, recovery.

    Root of the durability branch (:mod:`repro.persist`).  A commit-time
    ``DurabilityError`` means the batch was *not* made durable and must not
    be acknowledged; a recovery-time one means the on-disk state could not
    be turned back into a partition.
    """


class RollbackDetectedError(DurabilityError, IntegrityError):
    """Recovered state is not fresh: the monotonic-counter binding failed.

    The classic SGX persistence attack — replaying a stale-but-validly
    sealed snapshot/log pair, truncating the log past an epoch boundary, or
    resetting the counter service itself — leaves the recovered epoch out
    of step with the non-volatile monotonic counter.  Inherits
    :class:`IntegrityError` because rollback *is* an integrity violation on
    the time axis, so existing ``except IntegrityError`` alarm handlers
    catch it too.
    """


class TornLogError(DurabilityError):
    """The write-ahead log ends in a partial record (crash mid-append).

    Raised only when recovery is asked to be strict about the tail;
    by default the torn suffix — which was never acknowledged, because
    acks happen only after a complete group commit — is discarded and
    recovery proceeds to the last complete record.
    """


class RecoveryError(DurabilityError):
    """Whole-partition recovery could not complete (no usable sealed state)."""


class DiskIOError(DurabilityError, OSError):
    """The untrusted storage backend failed an I/O operation mid-commit.

    Inherits ``OSError`` so callers treating storage failures generically
    keep working; the batch being committed is not acknowledged.
    """
