"""End-to-end attack scenarios against an AriaStore.

Each scenario stages exactly the attack the paper discusses and reports
whether Aria detected it.  The attacker only ever writes untrusted memory
(via :class:`UntrustedAttacker`); locating the bytes to corrupt uses
white-box knowledge of the layout, which a real adversary obtains by
watching access patterns — the paper itself concedes key-access frequencies
and hashed-key distributions leak (Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.primitives import UntrustedAttacker
from repro.core.store import AriaStore
from repro.errors import AriaError, DeletionError, IntegrityError
from repro.index.hashtable import AriaHashIndex


@dataclass
class AttackOutcome:
    """What happened when the victim next touched the corrupted state."""

    detected: bool
    error: str = ""

    @classmethod
    def run(cls, operation) -> "AttackOutcome":
        try:
            operation()
        except (IntegrityError, DeletionError) as exc:
            # A genuine alarm: the store noticed tampering.
            return cls(detected=True, error=f"{type(exc).__name__}: {exc}")
        except AriaError as exc:
            # Any other error (e.g. KeyNotFoundError) is NOT detection: the
            # store silently gave a wrong answer about its own contents.
            return cls(detected=False, error=f"{type(exc).__name__}: {exc}")
        return cls(detected=False)


def _hash_index(store: AriaStore) -> AriaHashIndex:
    if not isinstance(store.index, AriaHashIndex):
        raise TypeError("this scenario targets the hash index (Aria-H)")
    return store.index


def _entry_addr(store: AriaStore, key: bytes) -> int:
    index = _hash_index(store)
    _, entry_addr, _, _, _ = index._find(key)
    return entry_addr


def corrupt_record_in_place(store: AriaStore, key: bytes) -> None:
    """Flip a ciphertext bit of ``key``'s record — and stop there.

    The positioning (index walk to find the entry) runs unmetered: it is
    the *attacker's* work, not the victim's.  Unlike the scenario
    functions this does not drive the victim operation; the cluster fault
    injector uses it to plant corruption that a later, ordinary request
    trips over (surfacing as ``STATUS_INTEGRITY_FAILURE``).

    Accepts a process-backed shard's store proxy as well: the tampering
    has to happen where the untrusted memory actually lives, so the proxy
    forwards the call into the worker, which re-enters here with the real
    store.
    """
    from repro.sgx.meter import MeterPause

    remote = getattr(store, "corrupt_record_in_place", None)
    if remote is not None:
        return remote(key)
    with MeterPause(store.enclave.meter):
        entry_addr = _entry_addr(store, key)
    attacker = UntrustedAttacker(store.enclave.untrusted)
    attacker.flip_bit(entry_addr + 12 + 8)  # inside the ciphertext


def tamper_record_body(store: AriaStore, key: bytes) -> AttackOutcome:
    """Flip one ciphertext bit of a record; the next Get must detect it."""
    entry_addr = _entry_addr(store, key)
    attacker = UntrustedAttacker(store.enclave.untrusted)
    attacker.flip_bit(entry_addr + 12 + 8)  # inside the ciphertext
    return AttackOutcome.run(lambda: store.get(key))


def replay_stale_record(store: AriaStore, key: bytes,
                        new_value: bytes) -> AttackOutcome:
    """Capture a record, let the owner update it, then restore the old bytes.

    Without the Merkle tree over the counters this would succeed: the stale
    record carries a valid MAC for its stale counter.  Freshness (Section II-C)
    is exactly what the replayed state violates.
    """
    index = _hash_index(store)
    entry_addr = _entry_addr(store, key)
    _, _, _, blob, _ = index._find(key)
    attacker = UntrustedAttacker(store.enclave.untrusted)
    stale = attacker.snapshot(entry_addr, 12 + len(blob))
    store.put(key, new_value)  # legitimate update (same size -> in place)
    attacker.replay(entry_addr, stale)
    return AttackOutcome.run(lambda: store.get(key))


def swap_slot_pointers(store: AriaStore, key_a: bytes,
                       key_b: bytes) -> AttackOutcome:
    """Fig 7: exchange two bucket head pointers without touching records."""
    index = _hash_index(store)
    bucket_a, slot_a, _ = index._bucket_slot(key_a)
    bucket_b, slot_b, _ = index._bucket_slot(key_b)
    if bucket_a == bucket_b:
        raise ValueError("pick keys that land in different buckets")
    attacker = UntrustedAttacker(store.enclave.untrusted)
    attacker.swap(slot_a, slot_b, 8)
    return AttackOutcome.run(lambda: store.get(key_a))


def unauthorized_delete(store: AriaStore, key: bytes) -> AttackOutcome:
    """Clear the slot pointing at a key's entry, hiding it from lookups.

    The per-bucket entry count in the EPC (Section V-C) notices that the chain is
    shorter than it should be.
    """
    index = _hash_index(store)
    _, slot_addr, _ = index._bucket_slot(key)
    attacker = UntrustedAttacker(store.enclave.untrusted)
    attacker.write(slot_addr, (0).to_bytes(8, "little"))
    return AttackOutcome.run(lambda: store.get(key))


def tamper_merkle_node(store: AriaStore, counter_id: int = 0) -> AttackOutcome:
    """Corrupt a Merkle leaf in untrusted memory; verification must fail.

    Only meaningful for counters that are not currently cached or pinned —
    EPC-resident copies are authoritative and never re-read from untrusted
    memory.
    """
    area = store.counters.areas[0]
    leaf_index, _ = area.tree.layout.counter_slot(counter_id)
    attacker = UntrustedAttacker(store.enclave.untrusted)
    attacker.flip_bit(area.tree.node_addr(0, leaf_index))
    return AttackOutcome.run(
        lambda: area.cache._verified_node_bytes(0, leaf_index)
    )


def snoop_learns_only_ciphertext(store: AriaStore, key: bytes,
                                 value: bytes) -> bool:
    """Confidentiality check: plaintext never appears in untrusted memory."""
    entry_addr = _entry_addr(store, key)
    attacker = UntrustedAttacker(store.enclave.untrusted)
    observed = attacker.read(entry_addr, 12 + 12 + len(key) + len(value) + 16)
    return key not in observed and value not in observed
