"""Attack suite: the adversary of the paper's threat model, made executable."""

from repro.attacks.primitives import UntrustedAttacker
from repro.attacks.scenarios import (
    AttackOutcome,
    replay_stale_record,
    snoop_learns_only_ciphertext,
    swap_slot_pointers,
    tamper_merkle_node,
    tamper_record_body,
    unauthorized_delete,
)

__all__ = [
    "AttackOutcome",
    "UntrustedAttacker",
    "replay_stale_record",
    "snoop_learns_only_ciphertext",
    "swap_slot_pointers",
    "tamper_merkle_node",
    "tamper_record_body",
    "unauthorized_delete",
]
