"""Attacker primitives: what a malicious OS/hypervisor can do.

The threat model (paper Section II-B): everything outside the enclave — the OS,
VMM, BIOS, devices — is adversarial.  The attacker has unrestricted read and
write access to untrusted memory but cannot touch EPC contents or enclave
registers.  These primitives operate directly on the
:class:`repro.sgx.memory.UntrustedMemory` space, with no cycle charges and no
enclave involvement.
"""

from __future__ import annotations

from repro.sgx.memory import UntrustedMemory


class UntrustedAttacker:
    """A malicious privileged adversary outside the enclave."""

    def __init__(self, untrusted: UntrustedMemory):
        self._mem = untrusted

    def read(self, addr: int, size: int) -> bytes:
        """Observe untrusted bytes (ciphertext and metadata are visible)."""
        return self._mem.snoop(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        """Overwrite untrusted bytes arbitrarily."""
        self._mem.tamper(addr, data)

    def flip_bit(self, addr: int, bit: int = 0) -> None:
        """Flip one bit — the minimal integrity violation."""
        byte = self._mem.snoop(addr, 1)[0]
        self._mem.tamper(addr, bytes([byte ^ (1 << bit)]))

    def snapshot(self, addr: int, size: int) -> bytes:
        """Record bytes for a later replay."""
        return self._mem.snoop(addr, size)

    def replay(self, addr: int, snapshot: bytes) -> None:
        """Restore previously captured (stale but once-valid) bytes."""
        self._mem.tamper(addr, snapshot)

    def swap(self, addr_a: int, addr_b: int, size: int) -> None:
        """Exchange two equal-sized untrusted regions (Fig 7's move)."""
        a = self._mem.snoop(addr_a, size)
        b = self._mem.snoop(addr_b, size)
        self._mem.tamper(addr_a, b)
        self._mem.tamper(addr_b, a)
