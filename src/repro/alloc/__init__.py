"""User-space heap allocation for untrusted memory."""

from repro.alloc.heap import Allocator, HeapAllocator, OcallAllocator

__all__ = ["Allocator", "HeapAllocator", "OcallAllocator"]
