"""User-space heap allocator for untrusted memory (paper Section V-B).

Calling ``malloc``/``free`` from inside an enclave needs an OCALL per call —
about 10 000 cycles.  Aria instead manages untrusted memory itself:

* The untrusted pool is cut into 4 MB **chunks**; each chunk is cut into
  equal-size **blocks** (one size class per chunk).
* A **bitmap** per chunk lives in the EPC (it is allocator metadata an
  attacker must not corrupt) and tracks used/free blocks.
* The **free list** lives in untrusted memory to save EPC: we thread it
  through the free blocks themselves (the first 8 bytes of a free block hold
  the address of the next free block), with only the per-class head pointer
  in the EPC.  Because the list is untrusted, every pop is cross-checked
  against the bitmap; a mismatch means the free list was attacked.
* Chunks are 4 MB-aligned in spirit: block offsets are computed directly
  from ``addr - chunk_base``, so the bitmap update is O(1).
* Requests larger than a chunk get dedicated contiguous chunks.

``OcallAllocator`` provides the naive alternative (one OCALL per allocation)
used by the AriaBase configuration in the Fig 12 ablation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import AllocationError, IntegrityError
from repro.sgx.enclave import Enclave

DEFAULT_CHUNK_SIZE = 4 * 1024 * 1024
_MIN_BLOCK = 32
_PTR_SIZE = 8
_NULL = 0


def _size_class(size: int) -> int:
    """Round a request up to the next power-of-two block size (>= 32 B)."""
    block = _MIN_BLOCK
    while block < size:
        block <<= 1
    return block


@dataclass
class _Chunk:
    """One chunk: a run of equal-size blocks plus its EPC-resident bitmap."""

    base: int
    block_size: int
    n_blocks: int
    bitmap: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.bitmap:
            self.bitmap = bytearray((self.n_blocks + 7) // 8)

    def block_index(self, addr: int) -> int:
        offset = addr - self.base
        index, remainder = divmod(offset, self.block_size)
        if remainder or not 0 <= index < self.n_blocks:
            raise AllocationError(f"address {addr:#x} is not a block boundary")
        return index

    def test_bit(self, index: int) -> bool:
        return bool(self.bitmap[index >> 3] & (1 << (index & 7)))

    def set_bit(self, index: int) -> None:
        self.bitmap[index >> 3] |= 1 << (index & 7)

    def clear_bit(self, index: int) -> None:
        self.bitmap[index >> 3] &= ~(1 << (index & 7))


class Allocator:
    """Common interface for the two allocation strategies."""

    def alloc(self, size: int) -> int:
        raise NotImplementedError

    def free(self, addr: int, size: int) -> None:
        raise NotImplementedError

    def block_size_of(self, size: int) -> int:
        """Usable bytes of the block a request of ``size`` receives."""
        return size

    def capture_state(self) -> dict:
        """Trusted state for sealing (stateless allocators return {})."""
        return {}

    def restore_state(self, state: dict) -> None:
        """Adopt sealed state (no-op for stateless allocators)."""


class HeapAllocator(Allocator):
    """Aria's OCALL-free user-space allocator over untrusted memory."""

    EPC_CONSUMER = "heap_allocator"

    def __init__(self, enclave: Enclave, chunk_size: int = DEFAULT_CHUNK_SIZE):
        if chunk_size < _MIN_BLOCK:
            raise AllocationError(f"chunk size {chunk_size} too small")
        self._enclave = enclave
        self._chunk_size = chunk_size
        # Per-size-class free list head (EPC-resident pointer).
        self._free_heads: dict[int, int] = {}
        # Chunks sorted by base address, for O(log n) address->chunk lookup.
        self._chunk_bases: list[int] = []
        self._chunks: list[_Chunk] = []

    # -- internals ------------------------------------------------------------

    def _grow_class(self, block_size: int) -> None:
        """Carve a fresh chunk into ``block_size`` blocks and free-list them."""
        n_blocks = self._chunk_size // block_size
        base = self._enclave.untrusted.alloc(n_blocks * block_size)
        chunk = _Chunk(base=base, block_size=block_size, n_blocks=n_blocks)
        # The bitmap is allocator metadata stored in the EPC.
        self._enclave.epc.reserve(self.EPC_CONSUMER, len(chunk.bitmap))
        index = bisect_right(self._chunk_bases, base)
        self._chunk_bases.insert(index, base)
        self._chunks.insert(index, chunk)
        # Thread all blocks onto the class free list (last block points at the
        # previous head).  This is a bulk write; charge it as one stream.
        head = self._free_heads.get(block_size, _NULL)
        for i in range(n_blocks - 1, -1, -1):
            addr = base + i * block_size
            self._enclave.untrusted.write(addr, head.to_bytes(_PTR_SIZE, "little"))
            head = addr
        self._enclave.meter.charge_event(
            "untrusted_access",
            self._enclave.costs.access_cost(n_blocks * _PTR_SIZE, in_epc=False),
        )
        self._free_heads[block_size] = head

    def _chunk_for(self, addr: int) -> _Chunk:
        index = bisect_right(self._chunk_bases, addr) - 1
        if index < 0:
            raise AllocationError(f"address {addr:#x} not owned by the allocator")
        chunk = self._chunks[index]
        if addr >= chunk.base + chunk.n_blocks * chunk.block_size:
            raise AllocationError(f"address {addr:#x} not owned by the allocator")
        return chunk

    # -- public API -------------------------------------------------------------

    def alloc(self, size: int) -> int:
        """Allocate a block that fits ``size`` bytes; no OCALL involved."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        if size > self._chunk_size:
            # Large allocation: dedicated contiguous region (paper Section V-B).
            return self._enclave.untrusted.alloc(size)
        block_size = _size_class(size)
        if self._free_heads.get(block_size, _NULL) == _NULL:
            self._grow_class(block_size)
        head = self._free_heads[block_size]
        # Pop from the untrusted free list: read the next pointer.
        next_ptr = int.from_bytes(
            self._enclave.read_untrusted(head, _PTR_SIZE), "little"
        )
        # Cross-check with the trusted bitmap before handing the block out.
        chunk = self._chunk_for(head)
        index = chunk.block_index(head)
        self._enclave.epc_touch(1)  # bitmap bit test+set
        if chunk.test_bit(index):
            raise IntegrityError(
                "heap free list returned an in-use block: allocator under attack"
            )
        chunk.set_bit(index)
        self._free_heads[block_size] = next_ptr
        self._enclave.meter.count("heap_alloc")
        return head

    def free(self, addr: int, size: int) -> None:
        """Return a block to its size-class free list."""
        if size > self._chunk_size:
            # Dedicated regions are not recycled in this reproduction.
            return
        chunk = self._chunk_for(addr)
        index = chunk.block_index(addr)
        self._enclave.epc_touch(1)
        if not chunk.test_bit(index):
            raise IntegrityError(f"double free of block {addr:#x}")
        chunk.clear_bit(index)
        head = self._free_heads.get(chunk.block_size, _NULL)
        self._enclave.write_untrusted(addr, head.to_bytes(_PTR_SIZE, "little"))
        self._free_heads[chunk.block_size] = addr
        self._enclave.meter.count("heap_free")

    def block_size_of(self, size: int) -> int:
        """The size class a request of ``size`` bytes lands in (for tests)."""
        return _size_class(size)

    # -- state capture / restore (enclave restart, repro.core.persistence) ----

    def capture_state(self) -> dict:
        """Trusted allocator state for sealing: chunks, bitmaps, free heads."""
        return {
            "chunk_size": self._chunk_size,
            "free_heads": {str(k): v for k, v in self._free_heads.items()},
            "chunks": [
                {
                    "base": chunk.base,
                    "block_size": chunk.block_size,
                    "n_blocks": chunk.n_blocks,
                    "bitmap": chunk.bitmap.hex(),
                }
                for chunk in self._chunks
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Adopt sealed allocator state over surviving untrusted memory."""
        self._chunk_size = state["chunk_size"]
        self._free_heads = {int(k): v for k, v in state["free_heads"].items()}
        self._chunk_bases = []
        self._chunks = []
        for entry in state["chunks"]:
            chunk = _Chunk(
                base=entry["base"],
                block_size=entry["block_size"],
                n_blocks=entry["n_blocks"],
                bitmap=bytearray.fromhex(entry["bitmap"]),
            )
            self._enclave.epc.reserve(self.EPC_CONSUMER, len(chunk.bitmap))
            index = bisect_right(self._chunk_bases, chunk.base)
            self._chunk_bases.insert(index, chunk.base)
            self._chunks.insert(index, chunk)


class OcallAllocator(Allocator):
    """Naive allocator: one OCALL per malloc/free (AriaBase in Fig 12).

    The untrusted side services the allocation; the enclave pays the boundary
    crossing every time.  Used only to quantify the HeapAlloc optimization.
    """

    def __init__(self, enclave: Enclave):
        self._enclave = enclave

    def alloc(self, size: int) -> int:
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        self._enclave.ocall()
        return self._enclave.untrusted.alloc(size)

    def free(self, addr: int, size: int) -> None:
        self._enclave.ocall()
