"""The sealed, MAC-chained write-ahead log format.

Every group-committed batch becomes one *record* on the untrusted disk:

``u32 LE length | sealed blob``

where the sealed blob (:func:`repro.sgx.sealing.seal`: nonce + AES-CTR
ciphertext + CMAC) protects a payload of

``b"ALOG" | kind(1) | epoch(u64) | seq(u64) | prev_mac(16) | body``

* ``kind`` — :data:`RECORD_BATCH` (body = ``protocol.encode_batch`` of the
  acked write requests) or :data:`RECORD_EPOCH` (body empty; the record
  marks a monotonic-counter increment);
* ``seq`` — dense per-log sequence number, so a record removed from the
  middle is noticed even before the MAC chain is checked;
* ``prev_mac`` — the CMAC (last 16 bytes) of the *previous* record's sealed
  blob; the first record after a log reset chains to an anchor MAC derived
  from the sealing key and the snapshot's epoch.  Records therefore form a
  hash chain rooted in the snapshot: reordering, splicing a record from a
  different log (or a different epoch of the same log), or editing any
  middle record breaks the chain.

What the chain alone cannot give is *freshness of the tail*: cutting the
log at a record boundary leaves a perfectly valid prefix.  That is the
monotonic counter's job — :class:`~repro.persist.durability
.PartitionDurability` increments the counter and appends a
``RECORD_EPOCH`` every ``epoch_every`` commits, so a cut that crosses an
epoch boundary makes the recovered epoch fall behind the counter and fails
with :class:`~repro.errors.RollbackDetectedError`.  A cut *mid-record* — a
torn tail from a host crash — is detected structurally and trimmed: it was
never acknowledged, because acks happen only after a complete append.

This module is a pure codec: no I/O, no metering.  The durability layer
owns the disk, the counter, and the cycle charges.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import List

from repro.crypto.backend import CryptoBackend
from repro.errors import IntegrityError, TornLogError
from repro.sgx.sealing import seal, unseal

RECORD_BATCH = 1
RECORD_EPOCH = 2

_MAGIC = b"ALOG"
_LEN = struct.Struct("<I")
_HEADER = struct.Struct("<4sBQQ16s")  # magic, kind, epoch, seq, prev_mac
_MAC_SIZE = 16

#: Sealed-payload bytes beyond the body (the record header).
PAYLOAD_OVERHEAD = _HEADER.size
#: On-disk bytes beyond the body: length prefix + seal framing + header.
FRAMED_OVERHEAD = _LEN.size + 4 + 16 + _HEADER.size + _MAC_SIZE


def anchor_mac(sealing_key: bytes, epoch: int) -> bytes:
    """The chain anchor a log reset at ``epoch`` starts from.

    Keyed by the sealing key so an attacker cannot forge a plausible
    anchor, and bound to the epoch so a log cannot be grafted onto a
    snapshot from a different epoch.
    """
    return hashlib.blake2b(
        b"aria-log-anchor" + epoch.to_bytes(8, "little"),
        key=sealing_key,
        digest_size=_MAC_SIZE,
    ).digest()


@dataclass(frozen=True)
class LogRecord:
    """One verified record out of a replay."""

    kind: int
    epoch: int
    seq: int
    body: bytes


@dataclass
class LogReplay:
    """The outcome of scanning a log blob: verified prefix + tail triage."""

    records: List[LogRecord]
    valid_bytes: int     # byte length of the verified prefix
    torn_bytes: int      # trailing bytes that do not form a complete record
    last_epoch: int      # epoch after applying every EPOCH record
    next_seq: int        # the seq the next appended record must carry
    tail_mac: bytes      # chain state for resuming appends after recovery


class SealedLog:
    """Writer-side chain state plus the record codec for one log."""

    def __init__(self, backend: CryptoBackend, sealing_key: bytes):
        self._backend = backend
        self._key = sealing_key
        self.seq = 0
        self.prev_mac = anchor_mac(sealing_key, 0)

    def reset(self, epoch: int) -> None:
        """Start a fresh chain anchored at ``epoch`` (after a snapshot)."""
        self.seq = 0
        self.prev_mac = anchor_mac(self._key, epoch)

    def resume(self, replay: LogReplay) -> None:
        """Adopt the chain state a recovery scan ended at."""
        self.seq = replay.next_seq
        self.prev_mac = replay.tail_mac

    def encode_record(self, kind: int, epoch: int, body: bytes) -> bytes:
        """Seal and frame one record using the current chain state.

        Does **not** advance the chain — call :meth:`advance` with the
        returned bytes once (and only once) the append has landed, so a
        failed disk write leaves the writer consistent with the disk.
        """
        payload = _HEADER.pack(_MAGIC, kind, epoch, self.seq, self.prev_mac) \
            + body
        sealed = seal(self._backend, self._key, payload)
        return _LEN.pack(len(sealed)) + sealed

    def advance(self, framed: bytes) -> None:
        self.seq += 1
        self.prev_mac = framed[-_MAC_SIZE:]


def replay(backend: CryptoBackend, sealing_key: bytes, blob: bytes,
           anchor_epoch: int, *, strict_tail: bool = False) -> LogReplay:
    """Scan a log blob, verifying the seal + chain of every record.

    Raises :class:`~repro.errors.IntegrityError` on any *complete* record
    that fails its MAC, chain link, sequence, or epoch discipline — that is
    tampering, not a crash artifact.  A trailing partial record is a torn
    tail: trimmed and reported by default, a
    :class:`~repro.errors.TornLogError` under ``strict_tail``.
    """
    records: List[LogRecord] = []
    prev_mac = anchor_mac(sealing_key, anchor_epoch)
    epoch = anchor_epoch
    seq = 0
    offset = 0
    valid = 0
    while True:
        remaining = len(blob) - offset
        if remaining == 0:
            break
        if remaining < _LEN.size:
            break  # torn: not even a length prefix
        (length,) = _LEN.unpack_from(blob, offset)
        if remaining - _LEN.size < length:
            break  # torn: the record's bytes end mid-air
        sealed = blob[offset + _LEN.size : offset + _LEN.size + length]
        payload = unseal(backend, sealing_key, sealed)  # IntegrityError on MAC
        if len(payload) < _HEADER.size:
            raise IntegrityError("log record payload too short")
        magic, kind, rec_epoch, rec_seq, rec_prev = \
            _HEADER.unpack_from(payload, 0)
        if magic != _MAGIC:
            raise IntegrityError("log record magic mismatch")
        if kind not in (RECORD_BATCH, RECORD_EPOCH):
            raise IntegrityError(f"unknown log record kind {kind}")
        if rec_seq != seq:
            raise IntegrityError(
                f"log sequence broken: expected {seq}, found {rec_seq}")
        if rec_prev != prev_mac:
            raise IntegrityError(
                "log chain broken: record does not extend its predecessor")
        if kind == RECORD_EPOCH:
            if rec_epoch <= epoch:
                raise IntegrityError(
                    f"epoch record did not advance ({epoch} -> {rec_epoch})")
            epoch = rec_epoch
        elif rec_epoch != epoch:
            raise IntegrityError(
                f"batch record carries epoch {rec_epoch}, log is at {epoch}")
        records.append(LogRecord(kind=kind, epoch=rec_epoch, seq=rec_seq,
                                 body=payload[_HEADER.size:]))
        prev_mac = sealed[-_MAC_SIZE:]
        seq += 1
        offset += _LEN.size + length
        valid = offset
    torn = len(blob) - valid
    if torn and strict_tail:
        raise TornLogError(
            f"log ends in {torn} torn byte(s) past the last complete record")
    return LogReplay(records=records, valid_bytes=valid, torn_bytes=torn,
                     last_epoch=epoch, next_seq=seq, tail_mac=prev_mac)
