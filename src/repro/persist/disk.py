"""Untrusted storage backends for the durability layer.

The disk is *outside* the trust boundary — exactly like untrusted memory in
the paper's threat model, but persistent.  Everything written here is sealed
first (:mod:`repro.persist.wal`); the disk's job is only to hold bytes and
to model the failure repertoire of real storage faithfully:

* :class:`MemoryDisk` — an in-process dict of named byte blobs.  The
  default for tests: it survives enclave kills (it lives in the parent,
  like any host filesystem would) but not process exit, and it supports
  whole-state capture/restore so fault schedules can stage the classic
  stale-state rollback attack deterministically.
* :class:`FileDisk` — real files under a directory, for
  ``python -m repro serve --durable --data-dir``.  Blob writes are atomic
  (write-to-temp + ``os.replace``), appends are plain appends — the torn
  tails a host crash can leave are the durability layer's problem to
  detect, not the disk's to prevent.

Both expose the same six-verb contract (read/write/append/size/truncate/
delete) plus capture/restore, so every fault-injection and recovery test
runs identically against either.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.errors import DiskIOError


class UntrustedDisk:
    """Interface: named byte blobs with append and truncate."""

    name = "abstract"

    def read_blob(self, name: str) -> Optional[bytes]:
        """The blob's bytes, or None if it does not exist."""
        raise NotImplementedError

    def write_blob(self, name: str, data: bytes) -> None:
        """Atomically replace the blob's contents."""
        raise NotImplementedError

    def append(self, name: str, data: bytes) -> None:
        """Append bytes to the blob (created empty if missing)."""
        raise NotImplementedError

    def size(self, name: str) -> int:
        """Current byte length of the blob (0 if missing)."""
        raise NotImplementedError

    def truncate(self, name: str, length: int) -> None:
        """Cut the blob down to ``length`` bytes (no-op if already shorter)."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove the blob if present."""
        raise NotImplementedError

    # -- the attacker's verbs -----------------------------------------------------

    def capture(self) -> object:
        """Snapshot the disk's entire state (the rollback attack, step 1)."""
        raise NotImplementedError

    def restore(self, token: object) -> None:
        """Restore a captured state wholesale (the rollback attack, step 2)."""
        raise NotImplementedError


class MemoryDisk(UntrustedDisk):
    """Untrusted storage as a dict of bytearrays (test default)."""

    name = "memory"

    def __init__(self):
        self._blobs: Dict[str, bytearray] = {}

    def read_blob(self, name: str) -> Optional[bytes]:
        blob = self._blobs.get(name)
        return None if blob is None else bytes(blob)

    def write_blob(self, name: str, data: bytes) -> None:
        self._blobs[name] = bytearray(data)

    def append(self, name: str, data: bytes) -> None:
        self._blobs.setdefault(name, bytearray()).extend(data)

    def size(self, name: str) -> int:
        blob = self._blobs.get(name)
        return 0 if blob is None else len(blob)

    def truncate(self, name: str, length: int) -> None:
        blob = self._blobs.get(name)
        if blob is not None and len(blob) > length:
            del blob[length:]

    def delete(self, name: str) -> None:
        self._blobs.pop(name, None)

    def capture(self) -> object:
        return {name: bytes(blob) for name, blob in self._blobs.items()}

    def restore(self, token: object) -> None:
        self._blobs = {name: bytearray(blob)
                       for name, blob in dict(token).items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(len(b) for b in self._blobs.values())
        return f"MemoryDisk({len(self._blobs)} blobs, {total} B)"


class FileDisk(UntrustedDisk):
    """Untrusted storage as real files under one directory."""

    name = "file"

    def __init__(self, root: str):
        self.root = root
        try:
            os.makedirs(root, exist_ok=True)
        except OSError as exc:  # pragma: no cover - host permission issue
            raise DiskIOError(f"cannot create data dir {root!r}: {exc}") \
                from exc

    def _path(self, name: str) -> str:
        # Blob names are internal (partition ids + fixed suffixes), but
        # keep path traversal impossible anyway: flatten separators.
        return os.path.join(self.root, name.replace("/", "_"))

    def read_blob(self, name: str) -> Optional[bytes]:
        try:
            with open(self._path(name), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise DiskIOError(f"read {name!r} failed: {exc}") from exc

    def write_blob(self, name: str, data: bytes) -> None:
        path = self._path(name)
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            raise DiskIOError(f"write {name!r} failed: {exc}") from exc

    def append(self, name: str, data: bytes) -> None:
        try:
            with open(self._path(name), "ab") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            raise DiskIOError(f"append {name!r} failed: {exc}") from exc

    def size(self, name: str) -> int:
        try:
            return os.path.getsize(self._path(name))
        except FileNotFoundError:
            return 0
        except OSError as exc:
            raise DiskIOError(f"stat {name!r} failed: {exc}") from exc

    def truncate(self, name: str, length: int) -> None:
        path = self._path(name)
        try:
            if os.path.getsize(path) > length:
                with open(path, "r+b") as fh:
                    fh.truncate(length)
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise DiskIOError(f"truncate {name!r} failed: {exc}") from exc

    def delete(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise DiskIOError(f"delete {name!r} failed: {exc}") from exc

    def capture(self) -> object:
        state = {}
        for entry in os.listdir(self.root):
            if entry.endswith(".tmp"):
                continue
            with open(os.path.join(self.root, entry), "rb") as fh:
                state[entry] = fh.read()
        return state

    def restore(self, token: object) -> None:
        state = dict(token)
        for entry in os.listdir(self.root):
            if entry not in state and not entry.endswith(".tmp"):
                os.remove(os.path.join(self.root, entry))
        for entry, data in state.items():
            with open(os.path.join(self.root, entry), "wb") as fh:
                fh.write(data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileDisk({self.root!r})"
