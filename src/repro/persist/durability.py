"""Rollback-protected sealed durability for one partition (replica group).

The missing piece of the fault-tolerance story: PRs 2-4 made a partition
survive anything short of *every* replica dying — this module makes acked
writes survive even that, against the paper's adversarial host.  Harnik et
al. establish sealed data-at-rest as how production enclaves survive
restarts; Tang et al. fold freshness of recovered state into the integrity
contract.  Both are implemented here:

**Commit protocol.**  One :class:`PartitionDurability` owns a sealed
snapshot blob and a sealed, MAC-chained write-ahead log
(:mod:`repro.persist.wal`) on an untrusted disk
(:mod:`repro.persist.disk`).  The :class:`~repro.cluster.replication
.ReplicaGroup` *group-commits* on its existing batch boundary: after a
batch executes, exactly the write requests that are about to be positively
acknowledged are sealed into one log record and appended — the client sees
an ack only once its write is durable.  A commit that fails (disk error,
torn write, or the log changing length underneath us — someone else's
hand on the disk) is not acked: the group converts those responses to
``UNAVAILABLE``, then repairs durability from its own live state, which is
still authoritative while any replica breathes.

**Freshness.**  Sealing alone cannot stop the host replaying yesterday's
perfectly-sealed state.  Every ``epoch_every`` commits (and at every
snapshot) the partition increments its non-volatile monotonic counter
(:mod:`repro.sgx.monotonic`) and writes an epoch record into the chain.
Recovery reads the counter and replays the log: a recovered epoch *behind*
the counter means stale state — a rolled-back snapshot/log pair, or a log
cut across an epoch boundary; a recovered epoch *ahead* of the counter
means the counter itself was rewound.  Both fail with
:class:`~repro.errors.RollbackDetectedError`.  Counter operations cost
millions of cycles (see :mod:`repro.sgx.costs`), which is exactly why they
are bound at epoch boundaries and not per write; the window this buys the
attacker — silently truncating *complete, acked* records of the current
epoch while every replica is down — shrinks with ``epoch_every`` and is
priced by the benchmark.  (While the partition is alive there is no window
at all: the group tracks the log's expected length and detects any
interference at the next commit.)

**Crash atomicity.**  A record append is the only non-atomic disk write in
the protocol (snapshot writes are atomic-replace, counter increments are
durable before they return, and epoch advances are modeled as atomic with
their counter bump — fault injections land *between* commits, never inside
one).  A crash mid-append leaves a torn tail; recovery trims it to the
last complete record.  Nothing is lost: the torn record's batch was never
acked, because the ack happens only after the append returns.

Metering follows the gateway idiom of :class:`~repro.cluster.session
.SessionManager`: the durability layer owns its *own*
:class:`~repro.sgx.meter.CycleMeter` and charges every seal/unseal, OCALL,
byte streamed, and counter operation there.  It runs in the coordinator
process for both shard backends, so durable-mode cycle accounting is
backend-invariant by construction.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.faults import (
    CAPTURE,
    CTR_RESET,
    DURABILITY_KINDS,
    IO_ERROR,
    ROLLBACK,
    TORN,
    TRUNCATE,
    FaultEvent,
    FaultPlan,
    dur_target,
)
from repro.crypto.backend import FastCryptoBackend
from repro.crypto.keys import KeyMaterial
from repro.errors import (
    DiskIOError,
    DurabilityError,
    RecoveryError,
    RollbackDetectedError,
)
from repro.persist import wal
from repro.persist.disk import UntrustedDisk
from repro.server.protocol import (
    MAX_BATCH_COUNT,
    OpCode,
    Request,
    decode_batch,
    encode_batch,
)
from repro.sgx.costs import CostModel, DEFAULT_COSTS
from repro.sgx.meter import CycleMeter
from repro.sgx.monotonic import MonotonicCounterService
from repro.sgx.sealing import derive_sealing_key, seal, unseal

#: Commits between monotonic-counter bindings.  Lower = smaller offline
#: truncation window, higher amortized counter cost per write.
DEFAULT_EPOCH_EVERY = 32

_SNAP_MAGIC = b"ASNP"
_SNAP_HEADER = struct.Struct("<4sQI")   # magic, epoch, pair count
_SNAP_PAIR = struct.Struct("<HI")       # key length, value length
_SEAL_OVERHEAD = 20                     # magic(4) + nonce(16) under the MAC


@dataclass
class RecoveredState:
    """What a successful :meth:`PartitionDurability.recover` yields."""

    pairs: Dict[bytes, bytes]
    epoch: int
    counter: int
    snapshot_keys: int
    batches_replayed: int
    records_replayed: int
    torn_bytes_trimmed: int

    @property
    def repaired_tail(self) -> bool:
        return self.torn_bytes_trimmed > 0


class PartitionDurability:
    """Sealed snapshot + chained WAL + counter binding for one partition.

    The sealing key is derived from the partition id and the operator's
    seed — the same "identity supplied out of band" fiction
    :mod:`repro.core.persistence` uses — so a successor enclave built for
    the same partition can unseal what its predecessors wrote, while a
    different partition (or operator) cannot.
    """

    def __init__(
        self,
        partition_id: str,
        disk: UntrustedDisk,
        counters: MonotonicCounterService,
        *,
        seed: int = 0,
        epoch_every: int = DEFAULT_EPOCH_EVERY,
        fault_plan: Optional[FaultPlan] = None,
        costs: CostModel = DEFAULT_COSTS,
    ):
        if epoch_every < 1:
            raise ValueError("epoch_every must be >= 1")
        self.partition_id = partition_id
        self.disk = disk
        self.counters = counters
        self.epoch_every = epoch_every
        self.plan = fault_plan or FaultPlan()
        self.costs = costs
        self.meter = CycleMeter()

        digest = hashlib.blake2b(
            partition_id.encode() + (seed & (1 << 64) - 1).to_bytes(8, "little"),
            key=b"aria-durability-key",
            digest_size=16,
        ).digest()
        self._keys = KeyMaterial.from_seed(int.from_bytes(digest, "little"))
        self._sealing_key = derive_sealing_key(self._keys)
        self._backend = FastCryptoBackend()
        self._log = wal.SealedLog(self._backend, self._sealing_key)

        self._snap_name = f"{partition_id}.snap"
        self._log_name = f"{partition_id}.log"
        self._counter_id = f"{partition_id}.epoch"
        self.fault_target = dur_target(partition_id)

        self.epoch = 0
        self._expected_log_bytes = 0
        self._batches_since_epoch = 0
        self._ready = False
        self._captured: Optional[object] = None
        self._pending_torn = False
        self._pending_io_error = False

        self.commit_attempts = 0
        self.commits = 0
        self.epoch_advances = 0
        self.snapshots = 0
        self.recoveries = 0
        self.bytes_appended = 0

    # -- lifecycle ----------------------------------------------------------------

    def initialize(self) -> bool:
        """Create the counter; start a fresh chain iff no prior state exists.

        Returns True when durable state (or counter evidence of it) already
        exists — the caller must then :meth:`recover` before committing.
        On a genuinely fresh partition, writes the epoch-1 empty snapshot
        and is immediately ready.
        """
        self.counters.create(self._counter_id)
        existing = (
            self.disk.read_blob(self._snap_name) is not None
            or self.disk.size(self._log_name) > 0
            or self.counters.peek(self._counter_id) > 0
        )
        if existing:
            self._ready = False
            return True
        self.snapshot([])
        return False

    # -- the group-commit path ----------------------------------------------------

    def commit(self, requests: List[Request]) -> None:
        """Seal the acked writes of one batch into a single log record.

        Raises a :class:`~repro.errors.DurabilityError` subclass when the
        batch did **not** become durable — the caller must not acknowledge
        it.  The log's on-disk length is checked against the expected value
        first, so truncation, rollback, or a torn previous append is caught
        at the very next commit while the partition is alive.
        """
        requests = list(requests)
        if not requests:
            return
        self._fire_commit_faults()
        if not self._ready:
            raise RecoveryError(
                f"{self.partition_id}: durability has prior state; "
                "recover() before committing")
        actual = self.disk.size(self._log_name)
        if actual != self._expected_log_bytes:
            raise DurabilityError(
                f"{self.partition_id}: log is {actual} B on disk, expected "
                f"{self._expected_log_bytes} B — the untrusted disk was "
                "modified underneath the partition")
        body = encode_batch(requests)
        framed = self._log.encode_record(wal.RECORD_BATCH, self.epoch, body)
        if self._pending_torn:
            self._pending_torn = False
            self.disk.append(self._log_name, framed[: len(framed) // 2])
            raise DiskIOError(
                f"{self.partition_id}: torn write — host crashed mid-append")
        self.disk.append(self._log_name, framed)
        self._log.advance(framed)
        self._expected_log_bytes += len(framed)
        self.bytes_appended += len(framed)
        self.commits += 1
        self._charge_seal(len(body), len(framed))
        self.meter.count("dur_commit")
        self._batches_since_epoch += 1
        if self._batches_since_epoch >= self.epoch_every:
            self._advance_epoch()

    def commit_load(self, pairs) -> None:
        """Make a bulk load durable (chunked to the protocol's batch cap)."""
        pairs = list(pairs)
        for start in range(0, len(pairs), MAX_BATCH_COUNT):
            chunk = pairs[start : start + MAX_BATCH_COUNT]
            self.commit([Request(OpCode.PUT, key, value)
                         for key, value in chunk])

    def snapshot(self, pairs) -> int:
        """Compact: bind a new epoch, write the full state, reset the log.

        The counter increment, the atomic snapshot replace, and the log
        reset are modeled as one atomic step (fault injections land between
        commits, never inside this sequence).  Returns the new epoch.
        """
        pairs = list(pairs)
        epoch = self.counters.increment(self._counter_id, meter=self.meter)
        chunks = [_SNAP_HEADER.pack(_SNAP_MAGIC, epoch, len(pairs))]
        for key, value in pairs:
            chunks.append(_SNAP_PAIR.pack(len(key), len(value)))
            chunks.append(key)
            chunks.append(value)
        payload = b"".join(chunks)
        sealed = seal(self._backend, self._sealing_key, payload)
        self.disk.write_blob(self._snap_name, sealed)
        self.disk.delete(self._log_name)
        self._log.reset(epoch)
        self.epoch = epoch
        self._expected_log_bytes = 0
        self._batches_since_epoch = 0
        self._ready = True
        self.snapshots += 1
        self.epoch_advances += 1
        self._charge_seal(len(payload), len(sealed))
        self.meter.count("dur_snapshot")
        return epoch

    def _advance_epoch(self) -> None:
        """Counter bump + epoch record: the periodic freshness binding."""
        epoch = self.counters.increment(self._counter_id, meter=self.meter)
        framed = self._log.encode_record(wal.RECORD_EPOCH, epoch, b"")
        self.disk.append(self._log_name, framed)
        self._log.advance(framed)
        self._expected_log_bytes += len(framed)
        self.bytes_appended += len(framed)
        self.epoch = epoch
        self._batches_since_epoch = 0
        self.epoch_advances += 1
        self._charge_seal(0, len(framed))
        self.meter.count("dur_epoch")

    # -- recovery -----------------------------------------------------------------

    def recover(self, *, strict_tail: bool = False) -> RecoveredState:
        """Verify counter + snapshot + log and rebuild the partition's pairs.

        The full freshness check described in the module docstring; on
        success the writer chain resumes where the log ends (after trimming
        a torn tail on disk), so commits can continue immediately.
        """
        self._fire_downtime_faults()
        counter = self.counters.read(self._counter_id, meter=self.meter)
        snap_blob = self.disk.read_blob(self._snap_name)
        log_blob = self.disk.read_blob(self._log_name) or b""
        if snap_blob is None:
            if counter == 0 and not log_blob:
                raise RecoveryError(
                    f"{self.partition_id}: no durable state to recover")
            raise RollbackDetectedError(
                f"{self.partition_id}: sealed snapshot missing but the "
                f"monotonic counter stands at {counter} — durable state "
                "was wiped or replaced")
        payload = unseal(self._backend, self._sealing_key, snap_blob)
        self._charge_unseal(len(payload), len(snap_blob))
        snap_epoch, pairs = self._parse_snapshot(payload)
        snapshot_keys = len(pairs)

        replayed = wal.replay(self._backend, self._sealing_key, log_blob,
                              snap_epoch, strict_tail=strict_tail)
        batches = 0
        since_epoch = 0
        for record in replayed.records:
            self._charge_unseal(len(record.body) + wal.PAYLOAD_OVERHEAD,
                                len(record.body) + wal.FRAMED_OVERHEAD)
            if record.kind == wal.RECORD_EPOCH:
                since_epoch = 0
                continue
            for request in decode_batch(record.body):
                if request.opcode == OpCode.DELETE:
                    pairs.pop(request.key, None)
                else:
                    pairs[request.key] = request.value
            batches += 1
            since_epoch += 1

        if counter > replayed.last_epoch:
            raise RollbackDetectedError(
                f"{self.partition_id}: stale durable state — the monotonic "
                f"counter stands at {counter} but the recovered epoch is "
                f"{replayed.last_epoch}: a rolled-back snapshot/log pair, "
                "or a log truncated across an epoch boundary")
        if counter < replayed.last_epoch:
            raise RollbackDetectedError(
                f"{self.partition_id}: monotonic counter rewound — the "
                f"recovered epoch is {replayed.last_epoch} but the counter "
                f"reads {counter}: the counter service was reset")

        if replayed.torn_bytes:
            self.disk.truncate(self._log_name, replayed.valid_bytes)
        self._log.resume(replayed)
        self.epoch = replayed.last_epoch
        self._expected_log_bytes = replayed.valid_bytes
        self._batches_since_epoch = since_epoch
        self._ready = True
        self.recoveries += 1
        self.meter.count("dur_recover")
        return RecoveredState(
            pairs=pairs,
            epoch=replayed.last_epoch,
            counter=counter,
            snapshot_keys=snapshot_keys,
            batches_replayed=batches,
            records_replayed=len(replayed.records),
            torn_bytes_trimmed=replayed.torn_bytes,
        )

    @staticmethod
    def _parse_snapshot(payload: bytes) -> Tuple[int, Dict[bytes, bytes]]:
        if len(payload) < _SNAP_HEADER.size:
            raise RecoveryError("snapshot payload too short")
        magic, epoch, count = _SNAP_HEADER.unpack_from(payload, 0)
        if magic != _SNAP_MAGIC:
            raise RecoveryError("snapshot magic mismatch")
        pairs: Dict[bytes, bytes] = {}
        offset = _SNAP_HEADER.size
        for _ in range(count):
            if len(payload) - offset < _SNAP_PAIR.size:
                raise RecoveryError("snapshot truncated inside a pair")
            k_len, v_len = _SNAP_PAIR.unpack_from(payload, offset)
            offset += _SNAP_PAIR.size
            if len(payload) - offset < k_len + v_len:
                raise RecoveryError("snapshot truncated inside a pair")
            key = payload[offset : offset + k_len]
            pairs[key] = payload[offset + k_len : offset + k_len + v_len]
            offset += k_len + v_len
        return epoch, pairs

    # -- fault injection ----------------------------------------------------------

    def _fire_commit_faults(self) -> None:
        self.commit_attempts += 1
        for event in self.plan.pop_due(self.fault_target,
                                       self.commit_attempts,
                                       kinds=DURABILITY_KINDS):
            self.apply_fault(event)
        if self._pending_io_error:
            self._pending_io_error = False
            raise DiskIOError(
                f"{self.partition_id}: injected I/O error — commit write "
                "failed")

    def _fire_downtime_faults(self) -> None:
        """The attacker's move while the partition is down: due CAPTURE /
        ROLLBACK / CTR_RESET / TRUNCATE events fire at recovery start."""
        for event in self.plan.pop_due(
                self.fault_target, self.commit_attempts,
                kinds=(CAPTURE, ROLLBACK, CTR_RESET, TRUNCATE)):
            self.apply_fault(event)

    def apply_fault(self, event: FaultEvent) -> None:
        """Apply one durability fault (also callable directly from tests)."""
        if event.kind == CAPTURE:
            self._captured = self.disk.capture()
        elif event.kind == ROLLBACK:
            if self._captured is not None:
                self.disk.restore(self._captured)
        elif event.kind == CTR_RESET:
            self.counters.reset(self._counter_id)
        elif event.kind == TRUNCATE:
            size = self.disk.size(self._log_name)
            self.disk.truncate(self._log_name, size // 2)
        elif event.kind == IO_ERROR:
            self._pending_io_error = True
        elif event.kind == TORN:
            self._pending_torn = True
        else:
            raise ValueError(
                f"durability cannot apply fault {event.kind!r}")

    # -- attack-surface helpers (tests drive these directly too) -------------------

    def capture_state(self) -> object:
        """Attacker snapshot of the whole untrusted disk."""
        self._captured = self.disk.capture()
        return self._captured

    def restore_state(self, token: Optional[object] = None) -> None:
        """Attacker rollback: restore a captured disk state wholesale."""
        state = token if token is not None else self._captured
        if state is None:
            raise ValueError("nothing captured to restore")
        self.disk.restore(state)

    # -- metering -----------------------------------------------------------------

    def _charge_seal(self, payload_bytes: int, framed_bytes: int) -> None:
        costs = self.costs
        self.meter.charge_event("ocall", costs.ocall)
        self.meter.charge_event("enc_bytes", costs.enc_cost(payload_bytes),
                                n=payload_bytes)
        self.meter.charge_event(
            "mac_bytes", costs.mac_cost(payload_bytes + _SEAL_OVERHEAD),
            n=payload_bytes + _SEAL_OVERHEAD)
        self.meter.charge(framed_bytes * costs.mem_per_byte)
        self.meter.count("dur_bytes", framed_bytes)

    def _charge_unseal(self, payload_bytes: int, blob_bytes: int) -> None:
        costs = self.costs
        self.meter.charge_event("ocall", costs.ocall)
        self.meter.charge_event(
            "mac_bytes", costs.mac_cost(payload_bytes + _SEAL_OVERHEAD),
            n=payload_bytes + _SEAL_OVERHEAD)
        self.meter.charge_event("enc_bytes", costs.enc_cost(payload_bytes),
                                n=payload_bytes)
        self.meter.charge(blob_bytes * costs.mem_per_byte)
        self.meter.count("dur_bytes", blob_bytes)

    # -- reporting ----------------------------------------------------------------

    @property
    def ready(self) -> bool:
        return self._ready

    @property
    def log_bytes(self) -> int:
        return self._expected_log_bytes

    def stats(self) -> dict:
        return {
            "partition": self.partition_id,
            "epoch": self.epoch,
            "counter": self.counters.peek(self._counter_id),
            "commits": self.commits,
            "commit_attempts": self.commit_attempts,
            "epoch_advances": self.epoch_advances,
            "snapshots": self.snapshots,
            "recoveries": self.recoveries,
            "log_bytes": self._expected_log_bytes,
            "bytes_appended": self.bytes_appended,
            "cycles": self.meter.cycles,
        }


# -- wiring helpers ---------------------------------------------------------------


def attach_partition_durability(
    group,
    disk: UntrustedDisk,
    counters: MonotonicCounterService,
    *,
    seed: int = 0,
    epoch_every: int = DEFAULT_EPOCH_EVERY,
    fault_plan: Optional[FaultPlan] = None,
    costs: CostModel = DEFAULT_COSTS,
) -> PartitionDurability:
    """Give one replica group a durability sidecar; returns it.

    The group starts committing on its batch boundary immediately.  If the
    disk already holds state for this partition, call
    :func:`restore_group_from_storage` (or let the
    :class:`~repro.cluster.health.HealthMonitor` recover) before serving.
    """
    if not hasattr(group, "replicas"):
        raise ValueError(
            "durability attaches to replica groups (the group commit rides "
            "their batch boundary); build the cluster with "
            "build_replicated_cluster — replication=1 is fine")
    dur = PartitionDurability(
        group.shard_id, disk, counters, seed=seed, epoch_every=epoch_every,
        fault_plan=fault_plan, costs=costs)
    dur.initialize()
    group.durability = dur
    return dur


def attach_cluster_durability(
    coordinator,
    disk: UntrustedDisk,
    counters: Optional[MonotonicCounterService] = None,
    *,
    seed: int = 0,
    epoch_every: int = DEFAULT_EPOCH_EVERY,
    fault_plan: Optional[FaultPlan] = None,
    costs: CostModel = DEFAULT_COSTS,
) -> Dict[str, PartitionDurability]:
    """Attach a durability sidecar to every partition of a cluster."""
    if counters is None:
        counters = MonotonicCounterService(costs=costs)
    sidecars: Dict[str, PartitionDurability] = {}
    for group in coordinator.shard_list():
        sidecars[group.shard_id] = attach_partition_durability(
            group, disk, counters, seed=seed, epoch_every=epoch_every,
            fault_plan=fault_plan, costs=costs)
    return sidecars


def restore_group_from_storage(group) -> Optional[RecoveredState]:
    """Cold-start restore: verified recovery loaded into every replica.

    For process startup (``serve --durable`` over an existing data dir):
    the group's fresh, empty replicas are bulk-loaded with the recovered
    pairs directly (not through the group store, which would re-commit the
    restored writes to the very log they came from).  Returns None when the
    partition has no prior durable state.
    """
    dur = getattr(group, "durability", None)
    if dur is None:
        raise RecoveryError(
            f"{group.shard_id}: no durability attached; nothing to restore")
    if dur.ready and dur.recoveries == 0 and dur.commits == 0:
        return None  # initialize() found a fresh partition: nothing stored
    state = dur.recover()
    pairs = list(state.pairs.items())
    for replica in group.replicas:
        replica.shard.store.load(pairs)
    return state


def restore_cluster_from_storage(coordinator) -> Dict[str, RecoveredState]:
    """Cold-start restore for every partition that has prior durable state."""
    restored: Dict[str, RecoveredState] = {}
    for group in coordinator.shard_list():
        if getattr(group, "durability", None) is None:
            continue
        state = restore_group_from_storage(group)
        if state is not None:
            restored[group.shard_id] = state
    return restored
