"""``repro.persist``: rollback-protected sealed durability.

Acked writes survive the death of an entire replica group, and stale-state
replay is *detected*, not assumed away:

* :mod:`~repro.persist.disk` — untrusted storage backends: an in-memory
  disk for tests, real files for ``python -m repro serve --durable``;
* :mod:`~repro.persist.wal` — the sealed, MAC-chained write-ahead log
  record format and its verifying replay;
* :mod:`~repro.persist.durability` — :class:`PartitionDurability`: the
  group-commit protocol, snapshot compaction, monotonic-counter epoch
  binding (:mod:`repro.sgx.monotonic`), verified recovery, and the
  durability fault surface (torn tails, truncation, rollback, counter
  reset, I/O errors).

See ARCHITECTURE §12 for the format, the commit protocol, and the
recovery state machine.
"""

from repro.persist.disk import FileDisk, MemoryDisk, UntrustedDisk
from repro.persist.durability import (
    DEFAULT_EPOCH_EVERY,
    PartitionDurability,
    RecoveredState,
    attach_cluster_durability,
    attach_partition_durability,
    restore_cluster_from_storage,
    restore_group_from_storage,
)
from repro.persist.wal import (
    LogRecord,
    LogReplay,
    RECORD_BATCH,
    RECORD_EPOCH,
    SealedLog,
    anchor_mac,
    replay,
)

__all__ = [
    "DEFAULT_EPOCH_EVERY",
    "FileDisk",
    "LogRecord",
    "LogReplay",
    "MemoryDisk",
    "PartitionDurability",
    "RECORD_BATCH",
    "RECORD_EPOCH",
    "RecoveredState",
    "SealedLog",
    "UntrustedDisk",
    "anchor_mac",
    "attach_cluster_durability",
    "attach_partition_durability",
    "replay",
    "restore_cluster_from_storage",
    "restore_group_from_storage",
]
