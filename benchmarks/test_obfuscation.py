"""Extension bench: the price of blurring key-access frequencies (Section VII).

See :func:`repro.bench.experiments.ablation_obfuscation` for the experiment.
Expected shape: linear-ish throughput decay in the padding degree d; even
d=4 (which spreads reads over dozens of buckets per request) keeps Aria
within striking distance of ShieldStore's unpadded baseline.
"""

from repro.bench.experiments import ablation_obfuscation

from conftest import bench_scale

DUMMIES = (0, 1, 2, 4, 8)


def test_obfuscation_price(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_obfuscation(scale=bench_scale(512)),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())

    def tp(d):
        return result.throughput(scheme="aria", dummy_reads=d)

    # Monotone decay in the padding degree.
    curve = [tp(d) for d in DUMMIES]
    for faster, slower in zip(curve, curve[1:]):
        assert faster >= slower * 0.98
    # The decay is material but not catastrophic at d=4.
    assert tp(4) > tp(0) * 0.5
    assert tp(8) < tp(0)
