"""Fig 16(a): multi-tenant — EPC split across 2 / 4 enclaves.

Expected shape (paper Section VI-D5):
* Aria outperforms ShieldStore at every (tenants, keyspace) point.
* The gap widens as tenants and keyspace grow (paper: +24/26 % at 10 M,
  +44/67 % at 50 M) — shrinking per-tenant EPC hurts ShieldStore's bucket
  count linearly while Aria's cache degrades gracefully.
"""

from repro.bench.experiments import fig16a_multitenant


def test_fig16a(run_experiment):
    result = run_experiment(fig16a_multitenant, scale=1024, n_ops=2000)

    def tp(scheme, tenants, keyspace):
        return result.throughput(scheme=scheme, tenants=tenants,
                                 keyspace=keyspace)

    for tenants in (2, 4):
        for keyspace in ("10M", "30M", "50M"):
            assert tp("aria", tenants, keyspace) > \
                tp("shieldstore", tenants, keyspace), (tenants, keyspace)

    # The advantage grows with the keyspace at fixed tenancy.
    for tenants in (2, 4):
        gain_small = tp("aria", tenants, "10M") / \
            tp("shieldstore", tenants, "10M")
        gain_large = tp("aria", tenants, "50M") / \
            tp("shieldstore", tenants, "50M")
        assert gain_large > gain_small, tenants
