"""Fig 14: Secure Cache size sensitivity (100 % -> 16 % of the EPC grant).

Expected shape (paper Section VI-D2):
* Throughput falls as the cache shrinks, but the curve flattens — the
  paper loses only ~9 % at 50 % cache and ~18 % at 16 % (10 M keyspace),
  because the zipf head still fits.
* Aria at a 16 % cache still beats ShieldStore with its full 64 MB root
  array — the headline "15 MB Aria > 64 MB ShieldStore" claim.
"""

from repro.bench.experiments import fig14_cache_size

from conftest import bench_scale


def test_fig14(run_experiment):
    result = run_experiment(fig14_cache_size, scale=bench_scale(512),
                            n_ops=2500)

    for keyspace in ("10M", "30M"):
        full = result.throughput(keyspace=keyspace, scheme="aria",
                                 cache_fraction=1.00)
        half = result.throughput(keyspace=keyspace, scheme="aria",
                                 cache_fraction=0.50)
        third = result.throughput(keyspace=keyspace, scheme="aria",
                                  cache_fraction=0.33)
        smallest = result.throughput(keyspace=keyspace, scheme="aria",
                                     cache_fraction=0.16)
        shield = result.throughput(keyspace=keyspace, scheme="shieldstore",
                                   cache_fraction="n/a")
        # Monotone-ish decline (5 % noise band) that flattens rather than
        # collapses.
        assert full >= half * 0.95 >= smallest * 0.90
        assert half > full * 0.70   # paper: ~9 % loss at 50 %
        assert smallest > full * 0.50  # paper: ~18 % loss at 16 %
        # The headline claim, at bench scale: a third of the EPC grant
        # still beats ShieldStore's full 64 MB-equivalent root array.  (The
        # paper's 16 % point also wins at 10 M keys; at bench scale the
        # fatter zipf tail trips the stop-swap threshold there, so the 16 %
        # point is asserted to stay within 25 % — see EXPERIMENTS.md.)
        assert third > shield, keyspace
        assert smallest > shield * 0.75, keyspace
