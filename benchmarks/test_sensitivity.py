"""Extension bench: robustness of the headline result to the cost model.

The simulator's unit costs come from the paper and the SGX literature, but
they are estimates.  This sweep perturbs the most influential constants —
MAC cost, memory-access latency, EPC premium — by 2x in both directions and
checks that the paper's headline ordering (Aria > ShieldStore under skew at
the 10 M-key point) holds at every corner, i.e. the reproduction's
conclusions do not hinge on one lucky constant.
"""

from repro.bench.harness import (
    build_aria,
    build_shieldstore,
    load_and_run,
    scaled_keys,
    scaled_platform,
)
from repro.bench.report import ExperimentResult
from repro.sgx.costs import SgxPlatform
from repro.workloads.ycsb import YcsbWorkload

from conftest import bench_scale

PERTURBATIONS = {
    "baseline": {},
    "mac_x2": {"mac_base": 1600.0, "mac_per_byte": 8.0},
    "mac_half": {"mac_base": 400.0, "mac_per_byte": 2.0},
    "mem_x2": {"untrusted_access": 200.0},
    "mem_half": {"untrusted_access": 50.0},
    "epc_x2": {"epc_access": 400.0},
    "epc_half": {"epc_access": 100.0},
}


def sensitivity_experiment(scale: int) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="Ablation A4",
        title="Cost-model sensitivity: Aria/ShieldStore ratio (skew RD95)",
        columns=["perturbation", "aria ops/s", "shieldstore ops/s", "ratio"],
    )
    n_keys = scaled_keys(scale)
    for name, overrides in PERTURBATIONS.items():
        base = scaled_platform(scale)
        platform = SgxPlatform(epc_bytes=base.epc_bytes,
                               costs=base.costs.scaled(**overrides))
        runs = {}
        for scheme, builder in (("aria", build_aria),
                                ("shieldstore", build_shieldstore)):
            store = builder(n_keys=n_keys, platform=platform)
            workload = YcsbWorkload(n_keys=n_keys, read_ratio=0.95,
                                    value_size=16, distribution="zipfian")
            runs[scheme] = load_and_run(store, workload, 3000, scheme=scheme)
        ratio = runs["aria"].throughput / runs["shieldstore"].throughput
        result.add_row(
            perturbation=name,
            **{"aria ops/s": runs["aria"].throughput,
               "shieldstore ops/s": runs["shieldstore"].throughput},
            ratio=round(ratio, 3),
        )
    return result


def test_sensitivity(benchmark):
    result = benchmark.pedantic(
        lambda: sensitivity_experiment(bench_scale(512)),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    for row in result.rows:
        # Aria wins under skew at every corner of the cost-model box, and
        # by a plausible (not wild) margin.
        assert 1.05 < row["ratio"] < 3.0, row["perturbation"]
