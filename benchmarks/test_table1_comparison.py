"""Table I: qualitative comparison + measured EPC occupation."""

from repro.bench.experiments import table1_comparison

from conftest import bench_scale


def test_table1(run_experiment):
    result = run_experiment(table1_comparison, scale=bench_scale(512))
    schemes = {row["scheme"]: row for row in result.rows}
    assert set(schemes) == {"ShieldStore", "Aria w/o Cache", "Aria"}
    # Qualitative columns, as printed in the paper.
    assert schemes["ShieldStore"]["hotness"] == "unaware"
    assert schemes["Aria"]["granularity"] == "KV pair"
    assert schemes["Aria"]["indexes"] == "hash/tree"
    # ShieldStore's root array matches its published 64 MB budget.
    assert 50 <= schemes["ShieldStore"]["epc_bytes_paper_equiv_MB"] <= 70
    # Every scheme fits the paper's 91 MB EPC.
    for row in schemes.values():
        assert row["epc_bytes_paper_equiv_MB"] <= 91
