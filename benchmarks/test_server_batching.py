"""Extension bench: ECALL amortization in client-server mode (Section II-A).

See :func:`repro.bench.experiments.ablation_server_batching`.  Expected
shape: throughput rises steeply from batch size 1 and saturates once the
per-request share of the ~10 K-cycle ECALL is small against the KV
operation itself.
"""

from repro.bench.experiments import ablation_server_batching

from conftest import bench_scale

N_REQUESTS = 4096


def test_server_batching(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_server_batching(scale=bench_scale(512),
                                         n_requests=N_REQUESTS),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())

    def tp(batch):
        return result.throughput(batch_size=batch)

    # ECALL counts amortize exactly.
    assert result.where(batch_size=1)[0]["ecalls"] == N_REQUESTS
    assert result.where(batch_size=64)[0]["ecalls"] == N_REQUESTS // 64

    # Throughput rises steeply then saturates.
    assert tp(8) > tp(1) * 1.8
    assert tp(64) > tp(8)
    assert tp(64) < tp(8) * 1.6  # diminishing returns
