"""Cluster serving layer: scaling with shard count + hot-shard rebalancing.

Extends Fig 16a from isolated per-tenant stores to a routed cluster.
Expected shape (all simulated cycles, never wall-clock):

* the serving layer is cheap: routed-cluster aggregate throughput stays
  within 10 % of N independent stores at every shard count (the ring is
  untrusted front-end work; only partial batches cost enclave cycles);
* sharding scales: 4 shards beat 1 shard substantially on one EPC budget;
* a deliberately skewed ring under zipf 0.99 craters aggregate throughput
  (the hot shard is the straggler), and enabling the balancer recovers
  >= 20 % of the loss via key-range migration through the trusted path;
* elastic reconfiguration is cheap while it runs: goodput through a live
  4→5→4 shard add/remove stays >= 0.7 of steady state, with zero non-OK
  responses and the migration bill priced in cycles.
"""

import pytest

from repro.bench.experiments import (
    cluster_durability,
    cluster_elastic,
    cluster_overload,
    cluster_process_backend,
    cluster_rebalance,
    cluster_replication,
    cluster_scaling,
    cluster_shard_workers,
    cluster_socket_backend,
    cluster_wire_overhead,
)

from conftest import bench_scale


def test_cluster_scaling(run_experiment):
    result = run_experiment(cluster_scaling, scale=bench_scale(2048),
                            n_ops=3000)

    def tp(mode, shards):
        return result.throughput(mode=mode, shards=shards)

    # (a) Routing overhead is small: within 10% of N independent stores.
    for n_shards in (1, 2, 4):
        assert tp("cluster", n_shards) >= 0.9 * tp("independent", n_shards), \
            n_shards

    # Sharding one EPC budget scales aggregate throughput.
    assert tp("cluster", 4) > 1.5 * tp("cluster", 1)
    assert tp("cluster", 2) > tp("cluster", 1)

    # The batched front door amortizes: far fewer ECALLs than requests.
    for row in result.rows:
        assert row["ecalls"] < 3000 / 8


def test_cluster_rebalance(run_experiment):
    result = run_experiment(cluster_rebalance, scale=bench_scale(2048),
                            n_ops=3000)

    tp_balanced = result.throughput(config="balanced")
    tp_skewed = result.throughput(config="skewed")
    tp_rebalanced = result.throughput(config="skewed+balancer")

    # The deliberately skewed ring concentrates the zipf head: the hot
    # shard serves the overwhelming majority of ops and drags the cluster.
    (skewed_row,) = result.where(config="skewed")
    assert skewed_row["hot_share"] > 0.6
    assert tp_skewed < 0.7 * tp_balanced

    # (b) The balancer must claw back >= 20% of what the hot shard cost.
    lost = tp_balanced - tp_skewed
    recovered = tp_rebalanced - tp_skewed
    assert recovered >= 0.2 * lost, (tp_balanced, tp_skewed, tp_rebalanced)

    # And it did so by actually migrating key ranges, not by luck.
    (rebalanced_row,) = result.where(config="skewed+balancer")
    assert rebalanced_row["keys_moved"] > 0
    assert rebalanced_row["rounds"] >= 1
    assert rebalanced_row["hot_share"] < skewed_row["hot_share"]


def test_cluster_replication(run_experiment):
    result = run_experiment(cluster_replication, scale=bench_scale(2048),
                            n_ops=2000)
    (r1,) = result.where(replication=1)
    (r2,) = result.where(replication=2)

    # (c) Write amplification is honest: each replica re-seals every write
    # under its own keys, so R=2 writes cost ~2x the total cycles (a bit
    # more, since R=2 also halves each enclave's EPC share).
    write_amp = r2["write_cycles"] / r1["write_cycles"]
    assert 1.7 < write_amp < 3.2, write_amp

    # Reads only touch the primary: near parity, and nowhere near the
    # write amplification.
    read_amp = r2["read_cycles"] / r1["read_cycles"]
    assert read_amp < 1.5, read_amp
    assert read_amp < write_amp

    # A failover read pays for the alarmed attempt plus the peer's
    # re-execution: strictly dearer than a clean read, but bounded — it
    # must stay a constant factor, not a resync.
    assert r2["failover_read_cycles"] > r2["clean_read_cycles"]
    assert r2["failover_read_cycles"] < 5 * r2["clean_read_cycles"]
    # R=1 has nowhere to fail over to.
    assert r1["failover_read_cycles"] == 0.0

    for row in (r1, r2):
        assert row["throughput ops/s"] > 0


@pytest.mark.procs
def test_process_backend_speedup(run_experiment):
    result = run_experiment(cluster_process_backend,
                            scale=bench_scale(2048), n_ops=2000)
    (inline,) = result.where(backend="inline")
    (process,) = result.where(backend="process")

    # (d) The simulation is backend-invariant: same responses byte for
    # byte, same enclave cycles to the last float — process isolation
    # changes where the enclave runs, not what it computes or charges.
    assert inline["responses_sha256"] == process["responses_sha256"]
    assert inline["cycles_sum"] == process["cycles_sum"]
    assert inline["throughput ops/s"] == process["throughput ops/s"]

    # Wall-clock is host-dependent and never asserted; surface the ratio
    # so EXPERIMENTS.md can record what the IPC round-trips cost.
    ratio = process["wall_s"] / inline["wall_s"]
    result.note(f"wall-clock process/inline ratio: {ratio:.2f}x "
                "(informational, host-dependent)")
    assert inline["wall_s"] > 0 and process["wall_s"] > 0


@pytest.mark.parallel
@pytest.mark.procs
def test_shard_worker_speedup(run_experiment):
    result = run_experiment(cluster_shard_workers,
                            scale=bench_scale(2048), n_ops=4000)
    (serial,) = result.where(backend="inline", workers=1)

    # (g) Worker count is invisible to the simulation: every row — any N,
    # inline or OS-process shards — returns the same response bytes and
    # charges the same enclave cycles to the last float.  This is the
    # determinism contract of the reserve → execute → commit engine.
    for row in result.rows:
        assert row["responses_sha256"] == serial["responses_sha256"], row
        assert row["cycles_sum"] == serial["cycles_sum"], row
        assert row["throughput ops/s"] == serial["throughput ops/s"], row

    # The simulated critical path scales: reservation traffic and phase
    # barriers are priced in, and the 95%-read mix leaves enough
    # conflict-free work for 4 workers to clear 3x.  The figure is a pure
    # function of the seeded stream and the cost model — deterministic,
    # not a flaky wall-clock measurement.
    (two,) = result.where(backend="inline", workers=2)
    (four,) = result.where(backend="inline", workers=4)
    assert serial["speedup"] == 1.0
    assert two["speedup"] > 1.4
    assert four["speedup"] >= 3.0, four["speedup"]
    assert four["speedup"] > two["speedup"]

    # The process rows report the same engine figures off the mirrored
    # meter snapshots — the timing model crosses the pipe intact.
    (proc4,) = result.where(backend="process", workers=4)
    assert proc4["speedup"] == four["speedup"]

    # Wall-clock is host-dependent and never asserted; surface the ratio
    # so EXPERIMENTS.md can record what the prefetch overlap buys.
    (proc1,) = result.where(backend="process", workers=1)
    ratio = proc1["wall_s"] / proc4["wall_s"]
    result.note(f"wall-clock process w1/w4 ratio: {ratio:.2f}x "
                "(informational, host-dependent)")
    for row in result.rows:
        assert row["wall_s"] > 0


@pytest.mark.wire
def test_cluster_wire_overhead(run_experiment):
    result = run_experiment(cluster_wire_overhead, scale=bench_scale(2048),
                            n_ops=2000)

    for backend in ("inline", "process"):
        for replication in (1, 2):
            (v1,) = result.where(backend=backend, R=replication, wire="v1")
            (v2,) = result.where(backend=backend, R=replication, wire="v2")

            # (e) Encryption terminates at the gateway: the shards' own
            # enclave work is byte-for-byte what the plaintext run charged.
            assert v1["shard_cycles_per_op"] == v2["shard_cycles_per_op"]

            # v1 frames are free on the wire; v2 frames pay AEAD both ways,
            # and the handshake pays two 2048-bit exponentiations plus a
            # quote verification up front.
            assert v1["wire_cycles_per_op"] == 0.0
            assert v1["handshake_cycles"] == 0.0
            assert v2["wire_cycles_per_op"] > 0.0
            assert v2["handshake_cycles"] > 2_000_000  # 2x kex + quote

            # Amortized over 256-request frames, the AEAD toll must stay a
            # modest fraction of the shard work the frame triggers.
            assert v2["overhead_pct"] < 50.0, v2["overhead_pct"]

    # The gateway meter lives in the front-door process under both shard
    # backends, and AEAD charges are pure byte-length functions, so every
    # simulated column is backend-invariant.
    for replication in (1, 2):
        for wire in ("v1", "v2"):
            (inline,) = result.where(backend="inline", R=replication,
                                     wire=wire)
            (process,) = result.where(backend="process", R=replication,
                                      wire=wire)
            for column in ("shard_cycles_per_op", "wire_cycles_per_op",
                           "handshake_cycles", "overhead_pct"):
                assert inline[column] == process[column], (column, wire,
                                                           replication)


@pytest.mark.dist
def test_socket_backend_overhead(run_experiment):
    result = run_experiment(cluster_socket_backend, scale=bench_scale(2048),
                            n_ops=2000)
    (inline,) = result.where(backend="inline")
    (process,) = result.where(backend="process")
    (sock,) = result.where(backend="socket")

    # (f) The simulation is backend-invariant across all THREE backends:
    # same responses byte for byte, same enclave cycles to the last
    # float — the attested TCP hop changes where the enclave runs and
    # what the link costs, never what the enclave computes or charges.
    assert inline["responses_sha256"] == sock["responses_sha256"]
    assert inline["responses_sha256"] == process["responses_sha256"]
    assert inline["cycles_sum"] == sock["cycles_sum"]
    assert inline["cycles_sum"] == process["cycles_sum"]
    assert inline["throughput ops/s"] == sock["throughput ops/s"]

    # The hop itself is priced off the shard meters: session setup pays
    # the attested handshake (two 2048-bit exponentiations + quote
    # verification) per link, steady state pays AEAD per RPC; inline and
    # process links are hop-free.
    assert inline["hop_handshake_cycles"] == 0.0
    assert process["hop_handshake_cycles"] == 0.0
    assert inline["hop_cycles_per_op"] == 0.0
    assert sock["hop_handshake_cycles"] > 2_000_000  # 2x kex + quote/link
    assert sock["hop_cycles_per_op"] > 0.0

    # Wall-clock is host-dependent and never asserted; surface the ratio
    # so EXPERIMENTS.md can record what TCP + AEAD cost the host.
    ratio = sock["wall_s"] / inline["wall_s"]
    result.note(f"wall-clock socket/inline ratio: {ratio:.2f}x "
                "(informational, host-dependent)")
    assert sock["wall_s"] > 0


@pytest.mark.overload
@pytest.mark.dist
def test_overload_storm_goodput(run_experiment):
    result = run_experiment(cluster_overload, scale=bench_scale(2048),
                            n_ops=2000)

    for backend in ("inline", "process", "socket"):
        (calm,) = result.where(backend=backend, phase="calm")
        (storm,) = result.where(backend=backend, phase="storm")

        # Calm: the armed layer is invisible — nothing shed, no trips,
        # full goodput.
        assert calm["goodput"] == 1.0
        assert calm["shed"] == 0
        assert calm["breaker_trips"] == 0

        # Storm: the breaker tripped and contained the slow shard — the
        # layer shed hot-partition writes (typed, with retry_after) but
        # goodput degraded gracefully instead of collapsing.
        assert storm["breaker_trips"] >= 1
        assert storm["shed"] > 0
        assert storm["goodput"] >= 0.6 * calm["goodput"], (
            backend, storm["goodput"])

    # Overload decisions are untrusted parent-side work: the enclaves'
    # simulated cycles and outputs — storm phase included — are
    # byte-for-byte identical across all three backends.
    for phase in ("calm", "storm"):
        (inline,) = result.where(backend="inline", phase=phase)
        (process,) = result.where(backend="process", phase=phase)
        (sock,) = result.where(backend="socket", phase=phase)
        for column in ("responses_sha256", "cycles_sum", "goodput",
                       "shed", "breaker_trips"):
            assert inline[column] == process[column], (column, phase)
            assert inline[column] == sock[column], (column, phase)


def test_durability_overhead(run_experiment):
    result = run_experiment(cluster_durability, scale=bench_scale(2048),
                            n_ops=2000)

    for backend in ("inline", "process"):
        (memory,) = result.where(backend=backend, mode="in-memory")
        (tight,) = result.where(backend=backend, mode="durable e=8")
        (loose,) = result.where(backend=backend, mode="durable e=32")

        # The sidecar commits parent-side: the enclaves' own serving work
        # is byte-for-byte what the in-memory run charged.
        assert memory["shard_cycles_per_op"] == tight["shard_cycles_per_op"]
        assert memory["shard_cycles_per_op"] == loose["shard_cycles_per_op"]

        # In-memory mode writes no log and pays no durability cycles;
        # durable mode pays seal + chain + OCALL per group commit.
        assert memory["dur_cycles_per_op"] == 0.0
        assert memory["log_bytes_per_op"] == 0.0
        assert tight["dur_cycles_per_op"] > 0.0
        assert loose["log_bytes_per_op"] > 0.0

        # The epoch knob prices freshness: binding the counter every 8
        # commits costs strictly more than every 32, because each binding
        # is a multi-million-cycle monotonic-counter increment.
        assert tight["dur_cycles_per_op"] > loose["dur_cycles_per_op"]

        # Recovery actually ran after total partition death, rebuilt a
        # non-trivial store, and was priced.
        for row in (tight, loose):
            assert row["recovery_cycles"] > 0.0
            assert row["recovered_keys"] > 0
        assert memory["recovery_cycles"] == 0.0

    # The sidecar and its meter live in the coordinator process for both
    # shard backends, so every simulated column is backend-invariant.
    for mode in ("in-memory", "durable e=8", "durable e=32"):
        (inline,) = result.where(backend="inline", mode=mode)
        (process,) = result.where(backend="process", mode=mode)
        for column in ("shard_cycles_per_op", "dur_cycles_per_op",
                       "log_bytes_per_op", "recovery_cycles",
                       "recovered_keys"):
            assert inline[column] == process[column], (column, mode)


@pytest.mark.elastic
def test_elastic_reconfiguration_goodput(run_experiment):
    result = run_experiment(cluster_elastic, scale=bench_scale(2048),
                            n_ops=2000)

    def row(phase):
        (r,) = result.where(phase=phase)
        return r

    steady4, steady5 = row("steady-4"), row("steady-5")
    during_add, during_remove = row("during-add"), row("during-remove")

    # (h) Goodput through a live 4→5→4 reconfiguration stays >= 0.7 of
    # the preceding steady window: migration is interleaved one bounded
    # key batch per frame, never stop-the-world.
    tp = "throughput ops/s"
    assert during_add[tp] >= 0.7 * steady4[tp], (during_add[tp],
                                                 steady4[tp])
    assert during_remove[tp] >= 0.7 * steady5[tp], (during_remove[tp],
                                                    steady5[tp])

    # Zero acked-write loss, in the client's terms: every response in
    # every window — migration windows included — is OK.  The
    # authoritative side serves until the atomic cutover.
    for r in result.rows:
        assert r["ok_share"] == 1.0, r

    # The migration bill is priced, not hidden: both during-* windows
    # moved a non-trivial key population, charged keys x
    # migrate_cost_cycles, and dual-applied racing writes; steady
    # windows moved nothing and cost nothing.
    for r in (during_add, during_remove):
        assert r["keys_moved"] > 0, r
        assert r["migration_cycles"] > 0, r
        assert r["dual_applied"] > 0, r
    for r in (steady4, steady5, row("steady-4'")):
        assert r["keys_moved"] == 0 and r["migration_cycles"] == 0, r

    # The topology actually changed and came back: 4 → 5 → 4.
    assert steady4["shards"] == 4
    assert steady5["shards"] == 5
    assert row("steady-4'")["shards"] == 4
