"""Row T1: multi-tenant fairness under a zipf(0.99) whale.

Drives :func:`repro.bench.experiments.cluster_tenancy` — a whale
hammering its namespace with a skewed WR50 stream while a minnow with a
small uniform working set re-runs a fixed window — and asserts the
acceptance bar from ARCHITECTURE §16: with the front door armed
(per-tenant admission + Secure-Cache quotas) the minnow keeps >= 0.8 of
its solo goodput, every whale shed is typed and charged to the whale,
and the simulated columns are bit-identical across all three shard
backends.
"""

import pytest

from repro.bench.experiments import cluster_tenancy

from conftest import bench_scale


@pytest.mark.tenant
@pytest.mark.dist
def test_tenant_fairness_whale_and_minnow(run_experiment):
    result = run_experiment(cluster_tenancy, scale=bench_scale(2048),
                            n_ops=2000)

    for backend in ("inline", "process", "socket"):
        (unarmed,) = result.where(backend=backend, mode="unarmed")
        (armed,) = result.where(backend=backend, mode="armed")

        # Unarmed: nothing is shed and the whale's flood taxes the
        # minnow's re-run (the motivation row).
        assert unarmed["whale_shed"] == 0
        assert unarmed["fairness"] < 1.0

        # Armed: the T1 acceptance bar — the minnow keeps >= 0.8 of its
        # solo goodput, and arming strictly improves on unarmed.
        assert armed["fairness"] >= 0.8, (backend, armed["fairness"])
        assert armed["fairness"] > unarmed["fairness"]

        # The whale was shed, and every shed names the whale's own rate
        # limit — charged to the offending principal, never to a global
        # gate (the hint's value is pinned by the unit/wire suites).
        assert armed["whale_shed"] > 0
        assert armed["typed_shed"] == armed["whale_shed"]

    # Tenancy decisions are untrusted parent-side work on an injected
    # clock: the enclaves' simulated work and outputs are byte-for-byte
    # identical across the inline, process, and socket backends.
    for mode in ("unarmed", "armed"):
        (inline,) = result.where(backend="inline", mode=mode)
        (process,) = result.where(backend="process", mode=mode)
        (sock,) = result.where(backend="socket", mode=mode)
        for column in ("responses_sha256", "minnow_solo_cpo",
                       "minnow_contended_cpo", "fairness", "whale_shed",
                       "typed_shed", "evict_denied"):
            assert inline[column] == process[column], (column, mode)
            assert inline[column] == sock[column], (column, mode)
