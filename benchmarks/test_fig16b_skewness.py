"""Fig 16(b): skewness sweep 0.8 -> 1.2.

Expected shape (paper Section VI-D6):
* Higher skew raises the Secure Cache hit ratio, so Aria's advantage over
  ShieldStore grows with skewness (paper: up to +96 % at 1.2).
* ShieldStore is essentially skew-insensitive (hotness-unaware).
"""

from repro.bench.experiments import fig16b_skewness

from conftest import bench_scale

SKEWS = (0.8, 0.99, 1.2)


def test_fig16b(run_experiment):
    result = run_experiment(fig16b_skewness, scale=bench_scale(512),
                            n_ops=2500, skews=SKEWS)

    def tp(scheme, skew):
        return result.throughput(scheme=scheme, skewness=round(skew, 4))

    # Aria's hit ratio and throughput rise with skew.
    hit_low = result.where(scheme="aria", skewness=0.8)[0]["hit_ratio"]
    hit_high = result.where(scheme="aria", skewness=1.2)[0]["hit_ratio"]
    assert hit_high > hit_low
    assert tp("aria", 1.2) > tp("aria", 0.8)

    # The Aria-vs-ShieldStore gap widens with skew and is large at 1.2.
    gain_low = tp("aria", 0.8) / tp("shieldstore", 0.8)
    gain_high = tp("aria", 1.2) / tp("shieldstore", 1.2)
    assert gain_high > gain_low
    assert gain_high > 1.2

    # ShieldStore barely cares about skew (within 25 %).
    shield = [tp("shieldstore", s) for s in SKEWS]
    assert max(shield) < min(shield) * 1.25
