"""Fig 15: Merkle-tree branch factor sweep (2..16), uniform and skew.

Expected shape (paper Section VI-D3):
* Under skew, throughput first rises with arity (bigger nodes amortize
  per-entry cache metadata -> more counters cached -> higher hit ratio)
  and falls once MAC input length and copy costs dominate.
* Under uniform (stop-swap, pinning only), bigger nodes only make the
  single per-op verification more expensive: throughput declines in arity.
"""

from repro.bench.experiments import fig15_arity

from conftest import bench_scale

ARITIES = (2, 4, 8, 12, 16)


def test_fig15(run_experiment):
    result = run_experiment(fig15_arity, scale=bench_scale(512), n_ops=2500,
                            arities=ARITIES)

    def tp(dist, arity):
        return result.throughput(distribution=dist, arity=arity)

    # Skew: the best arity is strictly inside the sweep (rise then fall).
    skew_curve = [tp("zipfian", a) for a in ARITIES]
    best = max(range(len(ARITIES)), key=lambda i: skew_curve[i])
    assert 0 < best, "throughput should first rise with arity"
    assert skew_curve[best] > skew_curve[0]

    # Hit ratio grows with arity under skew (space-utilization effect).
    hits = [result.where(distribution="zipfian", arity=a)[0]["hit_ratio"]
            for a in ARITIES]
    assert hits[-1] > hits[0]

    # Uniform: once the tree is shallow enough for the pinning budget to
    # cover all inner levels (arity >= 4 here), bigger nodes only make the
    # one per-op verification longer: throughput declines.  (Arity 2 is
    # additionally penalized by tree depth itself — the flattening argument
    # of Section IV-D — so it sits below the arity-4 peak, not above it.)
    uniform_curve = [tp("uniform", a) for a in ARITIES]
    assert tp("uniform", 4) > tp("uniform", 8) > tp("uniform", 16)
    assert max(uniform_curve) != tp("uniform", 16)
