"""Fig 2: the motivation experiment — three design schemes vs keyspace size.

Expected shape (paper Section III):
* Baseline is fastest while the store fits the EPC, then collapses once
  secure paging starts (paper: ~24 MB keyspace size).
* Aria w/o Cache stays flat until the counters outgrow the EPC (~119 MB),
  then degrades — but stays above ShieldStore at small keyspaces.
* ShieldStore never pages but pays bucket-granularity verification.
"""

from repro.bench.experiments import fig2_motivation

SIZES = [4, 16, 24, 64, 119, 128]


def test_fig2(run_experiment):
    result = run_experiment(
        fig2_motivation, scale=256, n_ops=2500, keyspace_mb=SIZES
    )

    def tp(scheme, mb):
        return result.throughput(scheme=scheme, keyspace_mb=mb)

    def swaps(scheme, mb):
        return result.where(scheme=scheme, keyspace_mb=mb)[0]["page_swaps"]

    # Baseline wins while everything fits ...
    assert tp("baseline", 4) > tp("shieldstore", 4)
    assert tp("baseline", 4) > tp("aria_nocache", 4)
    assert swaps("baseline", 4) == 0
    # ... then collapses under secure paging at large keyspaces.
    assert swaps("baseline", 128) > 1000
    assert tp("baseline", 128) < tp("shieldstore", 128) / 3
    assert tp("baseline", 128) < tp("baseline", 4) / 10

    # Aria w/o Cache: flat and above ShieldStore until counters outgrow EPC.
    assert tp("aria_nocache", 4) > tp("shieldstore", 4)
    assert swaps("aria_nocache", 64) == 0
    assert swaps("aria_nocache", 128) > 0
    assert tp("aria_nocache", 128) < tp("aria_nocache", 64)

    # ShieldStore degrades smoothly as buckets lengthen, and never pages.
    assert tp("shieldstore", 128) < tp("shieldstore", 4)
    assert swaps("shieldstore", 128) == 0
