"""Fig 9: YCSB grid with the hash-table index (Aria-H).

Expected shape (paper Section VI-A):
* Aria-H beats ShieldStore under every skewed cell (paper: +28..40 % by
  value size) thanks to the Secure Cache absorbing MT verification.
* ShieldStore is at least competitive with Aria under uniform at the
  10 M-key point (paper: slightly better; Aria stops swapping and pays one
  MT verification per op).
* Aria w/o Cache sits between: hotness-aware paging helps under skew and
  hurts badly under uniform.
* Baseline is an order of magnitude below everything (paging on all data).
"""

from repro.bench.experiments import fig9_ycsb_hash

from conftest import bench_scale


def test_fig9(run_experiment):
    result = run_experiment(fig9_ycsb_hash, scale=bench_scale(512), n_ops=2500)

    def tp(scheme, dist, rd, size):
        return result.throughput(scheme=scheme, distribution=dist,
                                 read_ratio=rd, value_size=size)

    for size in (16, 128, 512):
        for rd in ("RD50", "RD95", "RD100"):
            # Aria wins every skewed cell.
            assert tp("aria", "zipfian", rd, size) > \
                tp("shieldstore", "zipfian", rd, size), (rd, size)
            assert tp("aria", "zipfian", rd, size) > \
                tp("aria_nocache", "zipfian", rd, size), (rd, size)
            # Baseline is far below Aria everywhere.
            assert tp("baseline", "zipfian", rd, size) < \
                tp("aria", "zipfian", rd, size) / 5

    # ShieldStore is competitive under uniform at this keyspace (within the
    # paper's 'slightly better' band: it must not lose by more than ~15 %,
    # and should win at least one uniform cell).
    uniform_wins = 0
    for size in (16, 128, 512):
        for rd in ("RD50", "RD95", "RD100"):
            aria = tp("aria", "uniform", rd, size)
            shield = tp("shieldstore", "uniform", rd, size)
            assert shield > aria * 0.85, (rd, size)
            if shield > aria:
                uniform_wins += 1
    assert uniform_wins >= 3

    # Aria w/o Cache collapses under uniform (page thrash on counters).
    assert tp("aria_nocache", "uniform", "RD95", 16) < \
        tp("aria_nocache", "zipfian", "RD95", 16) / 2

    # Throughput falls as values grow, for every scheme.
    for scheme in ("aria", "shieldstore"):
        assert tp(scheme, "zipfian", "RD95", 16) > \
            tp(scheme, "zipfian", "RD95", 512)
