"""Wall-clock micro-benchmarks of the hot code paths (pytest-benchmark).

These time the *Python implementation itself* (not simulated cycles):
useful for tracking regressions in the reproduction's own hot paths.
"""

import random

from repro.bench.harness import build_aria, build_shieldstore, scaled_platform
from repro.cache.secure_cache import ENTRY_METADATA_BYTES, SecureCache
from repro.merkle.layout import MerkleLayout
from repro.merkle.tree import MerkleTree
from repro.sgx.costs import SgxPlatform
from repro.sgx.enclave import Enclave
from repro.sgx.meter import MeterPause

N_KEYS = 4096


def _loaded_aria():
    store = build_aria(n_keys=N_KEYS, platform=scaled_platform(2048))
    store.load((b"u%015d" % i, b"v" * 16) for i in range(N_KEYS))
    return store


def test_aria_get_hot_key(benchmark):
    store = _loaded_aria()
    store.get(b"u%015d" % 7)  # warm the cache
    benchmark(store.get, b"u%015d" % 7)


def test_aria_put_hot_key(benchmark):
    store = _loaded_aria()
    benchmark(store.put, b"u%015d" % 7, b"w" * 16)


def test_shieldstore_get(benchmark):
    store = build_shieldstore(n_keys=N_KEYS, platform=scaled_platform(2048))
    store.load((b"u%015d" % i, b"v" * 16) for i in range(N_KEYS))
    benchmark(store.get, b"u%015d" % 7)


def test_secure_cache_hit(benchmark):
    enclave = Enclave(SgxPlatform(epc_bytes=16 << 20))
    layout = MerkleLayout(n_counters=4096, arity=8)
    with MeterPause(enclave.meter):
        tree = MerkleTree(enclave, layout, rng=random.Random(0))
        cache = SecureCache(
            enclave, tree,
            capacity_bytes=64 * (layout.node_size + ENTRY_METADATA_BYTES),
            pin_levels=1, stop_swap_enabled=False,
        )
    cache.read_counter(5)
    benchmark(cache.read_counter, 5)


def test_secure_cache_miss_with_eviction(benchmark):
    enclave = Enclave(SgxPlatform(epc_bytes=16 << 20))
    layout = MerkleLayout(n_counters=4096, arity=8)
    with MeterPause(enclave.meter):
        tree = MerkleTree(enclave, layout, rng=random.Random(0))
        cache = SecureCache(
            enclave, tree,
            capacity_bytes=8 * (layout.node_size + ENTRY_METADATA_BYTES),
            pin_levels=1, stop_swap_enabled=False,
        )
    rng = random.Random(1)
    benchmark(lambda: cache.read_counter(rng.randrange(4096)))
