"""Fig 11: Facebook ETC workload, hash and tree panels, RD 0/50/95/100.

Expected shape (paper Section VI-B):
* Aria is best in every cell of both panels (paper: +32 % vs ShieldStore
  on average; +205 % vs the naive tree baseline).
* Aria w/o Cache beats ShieldStore at RD0 — ShieldStore's Put path pays
  the extra root update — and loses as the read ratio rises.
"""

from repro.bench.experiments import fig11_etc

from conftest import bench_scale


def test_fig11(run_experiment):
    result = run_experiment(fig11_etc, scale=bench_scale(512), n_ops=2500)

    def tp(panel, scheme, rd):
        return result.throughput(panel=panel, scheme=scheme, read_ratio=rd)

    ratios = ("RD0", "RD50", "RD95", "RD100")

    # Aria wins every hash cell and every tree cell.
    gains = []
    for rd in ratios:
        assert tp("hashtable", "aria", rd) > tp("hashtable", "shieldstore", rd)
        assert tp("hashtable", "aria", rd) > tp("hashtable", "aria_nocache", rd)
        gains.append(tp("hashtable", "aria", rd)
                     / tp("hashtable", "shieldstore", rd) - 1.0)
        assert tp("tree", "aria", rd) > tp("tree", "aria_nocache", rd)
        assert tp("tree", "aria", rd) > tp("tree", "baseline", rd)
    # Average gain over ShieldStore is material (paper: ~32 %).
    assert sum(gains) / len(gains) > 0.10

    # Aria w/o Cache vs ShieldStore: its relative standing is best at RD0
    # (ShieldStore's Put path pays the extra root update) and worst at
    # RD100.  The paper sees an absolute crossover at RD0; at bench scale
    # the zipf tail is fatter, so we assert the direction (EXPERIMENTS.md
    # records the scale artifact).
    standing_rd0 = tp("hashtable", "aria_nocache", "RD0") / \
        tp("hashtable", "shieldstore", "RD0")
    standing_rd100 = tp("hashtable", "aria_nocache", "RD100") / \
        tp("hashtable", "shieldstore", "RD100")
    assert standing_rd0 > standing_rd100
    assert standing_rd100 < 1.0

    # Tree panel sits far below the hash panel.
    assert tp("tree", "aria", "RD95") < tp("hashtable", "aria", "RD95") / 3
