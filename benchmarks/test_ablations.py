"""Extension ablations beyond the paper's figures (DESIGN.md Section 3 extras).

A1 — hot-key locality: the address-ordered MT layout (Section IV) benefits from
contiguous hot keys; scattering them (YCSB's scrambled zipfian) hurts the
4 KB-granularity scheme far more than the node-granularity Secure Cache.

A2 — semantic-aware swap: re-adding the costs SGX's EWB forces (encrypt on
swap-out, write back clean pages) must only ever slow Aria down.
"""

from repro.bench.experiments import ablation_swap_semantics, ablation_zipf_locality

from conftest import bench_scale


def test_ablation_locality(run_experiment):
    result = run_experiment(ablation_zipf_locality, scale=bench_scale(512),
                            n_ops=2500)

    def tp(scheme, dist):
        return result.throughput(scheme=scheme, distribution=dist)

    # Scattering hot keys hurts both schemes ...
    assert tp("aria", "scrambled") <= tp("aria", "zipfian") * 1.02
    assert tp("aria_nocache", "scrambled") < tp("aria_nocache", "zipfian")
    # ... but the 4 KB-page scheme suffers far more than node-granularity.
    loss_aria = tp("aria", "zipfian") / max(tp("aria", "scrambled"), 1.0)
    loss_nocache = tp("aria_nocache", "zipfian") / \
        max(tp("aria_nocache", "scrambled"), 1.0)
    print(f"\nscramble slowdown: aria {loss_aria:.2f}x, "
          f"nocache {loss_nocache:.2f}x")
    assert loss_nocache > loss_aria


def test_ablation_swap_semantics(run_experiment):
    result = run_experiment(ablation_swap_semantics, scale=bench_scale(512),
                            n_ops=2500)

    def tp(variant):
        return result.throughput(variant=variant)

    base = tp("aria")
    assert tp("+encrypt_on_swap") <= base
    assert tp("+writeback_clean") <= base
    assert tp("+both (EWB-like)") <= min(tp("+encrypt_on_swap"),
                                         tp("+writeback_clean")) * 1.02
    # Clean discards actually happen, so the write-back ablation has teeth.
    row = result.where(variant="aria")[0]
    assert row["clean_discards"] > 0
